"""Semi-naive Datalog evaluation on the shared saturation runner.

The generic oblivious chase re-enumerates all triggers at every level; for
the Datalog saturations that Section 5 performs on top of ``Ch(R_∃)``
(Lemma 33) a semi-naive evaluator is substantially faster: each round only
considers rule-body matches that use at least one atom derived in the
previous round.

The evaluator used to carry its own copy of the saturation loop (and,
before that, of the pivot decomposition); it is now a *derivation-mode
policy* over :class:`repro.engine.runner.ChaseRunner` — the same loop the
chase variants run on, minus trigger identity and provenance (a
saturation only needs the atom set) — and selects how rounds execute
through the engine registry:

* ``"parallel"`` (the default runs it inline at one worker, see
  :data:`DEFAULT_CLOSURE_ENGINE`): the sharded round scheduler's batched
  *derivation mode* — heads of a whole round are instantiated in one
  amortized pass straight from the delta homomorphisms, with no trigger
  identity or canonical ordering.
* ``"delta"``: the sequential trigger-mode inner loop shared with the
  chase — canonical per-rule trigger streams, one head instantiation per
  trigger.  The reference the parallel engine is benchmarked against
  (``benchmarks/bench_exp13_parallel.py``).
* ``"naive"``: classic naive Datalog evaluation — every round re-derives
  from the whole instance.
* ``"persistent"``: the parallel derivation mode on persistent delta-fed
  process workers — replicas seeded once, each round ships only the new
  atoms (for closures whose per-round matching is heavy enough to beat
  the IPC on multicore builds).

All engines produce the identical closure (a saturation is a set
fixpoint); used by the analysis module and available as a public API for
downstream users who only need Datalog.
"""

from __future__ import annotations

from repro.engine.config import EngineConfig
from repro.engine.runner import ChaseRunner, VariantPolicy
from repro.obs.trace import RunTrace
from repro.errors import NotARuleClassError
from repro.logic.instances import Instance
from repro.rules.ruleset import RuleSet


#: The closure's default: the parallel engine's batched derivation mode
#: run inline (no pool).  The measured win over ``"delta"`` comes from
#: batching, not thread fan-out (see benchmarks/results/exp13_parallel.txt:
#: workers=1 is the fastest configuration on a single-core GIL build), so
#: the default skips pool spin-up; pass ``engine="parallel"`` or an
#: explicit :class:`EngineConfig` to fan out on multicore builds.
DEFAULT_CLOSURE_ENGINE = EngineConfig("parallel", workers=1)


class ClosurePolicy(VariantPolicy):
    """Derivation-mode saturation: atom sets, no triggers, no provenance.

    Runs through :meth:`ChaseRunner.saturate`: each round derives the head
    atoms whose body uses at least one delta atom and folds the new ones
    in; the fixpoint is a round that derives nothing new, and budget
    violations always raise (Datalog closures are finite, so the round
    budget only guards against pathological inputs).
    """

    variant = "Datalog closure"
    derivation = True
    step_noun = "rounds"

    def atom_budget_message(self, max_atoms, step):
        return f"Datalog closure exceeded {max_atoms} atoms"

    def step_budget_message(self, max_steps):
        return f"Datalog closure did not converge in {max_steps} rounds"


def semi_naive_closure(
    instance: Instance,
    rules: RuleSet,
    max_rounds: int = 100,
    max_atoms: int = 500_000,
    engine: str | EngineConfig = DEFAULT_CLOSURE_ENGINE,
    trace: RunTrace | None = None,
) -> Instance:
    """Compute the Datalog closure of ``instance`` under ``rules``.

    Raises :class:`NotARuleClassError` when a rule has existential
    variables and :class:`ChaseBudgetExceeded` when budgets are exceeded
    (Datalog closures are finite, so the round budget only guards against
    pathological inputs).  ``trace`` optionally receives one
    ``plan="derive"`` record per round (see :mod:`repro.obs`).
    """
    non_datalog = [r for r in rules if not r.is_datalog]
    if non_datalog:
        raise NotARuleClassError(
            f"semi-naive evaluation requires Datalog rules; offending: "
            f"{non_datalog[0]}"
        )
    runner = ChaseRunner(
        ClosurePolicy(),
        engine,
        max_steps=max_rounds,
        max_atoms=max_atoms,
        trace=trace,
    )
    return runner.saturate(instance, rules)
