"""Semi-naive Datalog evaluation.

The generic oblivious chase re-enumerates all triggers at every level; for
the Datalog saturations that Section 5 performs on top of ``Ch(R_∃)``
(Lemma 33) a semi-naive evaluator is substantially faster: each round only
considers rule-body matches that use at least one atom derived in the
previous round.

Produces exactly the same closure as the chase restricted to Datalog rules
(tested against it); used by the analysis module and available as a public
API for downstream users who only need Datalog.
"""

from __future__ import annotations

from repro.errors import ChaseBudgetExceeded, NotARuleClassError
from repro.logic.atoms import Atom
from repro.logic.homomorphisms import homomorphisms
from repro.logic.instances import Instance
from repro.rules.rule import Rule
from repro.rules.ruleset import RuleSet


def _matches_using_delta(
    rule: Rule, total: Instance, delta: Instance
) -> set[Atom]:
    """Head instantiations of ``rule`` whose body uses ≥ 1 delta atom.

    Semi-naive trick: for each body atom position, pin that atom to the
    delta and match the remaining atoms against the full instance.
    """
    derived: set[Atom] = set()
    body_atoms = sorted(rule.body)
    for pivot_index, pivot in enumerate(body_atoms):
        for pivot_match in sorted(delta.with_predicate(pivot.predicate)):
            seed: dict = {}
            feasible = True
            for source, target in zip(pivot.args, pivot_match.args):
                if source.is_constant:
                    if source != target:
                        feasible = False
                        break
                elif source in seed:
                    if seed[source] != target:
                        feasible = False
                        break
                else:
                    seed[source] = target
            if not feasible:
                continue
            rest = body_atoms[:pivot_index] + body_atoms[pivot_index + 1:]
            if not rest:
                derived.update(
                    atom.apply(seed) for atom in rule.head
                )
                continue
            for hom in homomorphisms(rest, total, seed=seed):
                derived.update(hom.apply_atoms(rule.head))
    return derived


def semi_naive_closure(
    instance: Instance,
    rules: RuleSet,
    max_rounds: int = 100,
    max_atoms: int = 500_000,
) -> Instance:
    """Compute the Datalog closure of ``instance`` under ``rules``.

    Raises :class:`NotARuleClassError` when a rule has existential
    variables and :class:`ChaseBudgetExceeded` when budgets are exceeded
    (Datalog closures are finite, so the round budget only guards against
    pathological inputs).
    """
    non_datalog = [r for r in rules if not r.is_datalog]
    if non_datalog:
        raise NotARuleClassError(
            f"semi-naive evaluation requires Datalog rules; offending: "
            f"{non_datalog[0]}"
        )
    total = instance.copy()
    delta = instance.copy()
    for _ in range(max_rounds):
        new_atoms: set[Atom] = set()
        for rule in rules:
            for atom in _matches_using_delta(rule, total, delta):
                if atom not in total:
                    new_atoms.add(atom)
        if not new_atoms:
            return total
        total.update(new_atoms)
        if len(total) > max_atoms:
            raise ChaseBudgetExceeded(
                f"Datalog closure exceeded {max_atoms} atoms",
                partial_result=total,
            )
        delta = Instance(new_atoms, add_top=False)
    raise ChaseBudgetExceeded(
        f"Datalog closure did not converge in {max_rounds} rounds",
        partial_result=total,
    )
