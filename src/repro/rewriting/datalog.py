"""Semi-naive Datalog evaluation on the shared delta engine.

The generic oblivious chase re-enumerates all triggers at every level; for
the Datalog saturations that Section 5 performs on top of ``Ch(R_∃)``
(Lemma 33) a semi-naive evaluator is substantially faster: each round only
considers rule-body matches that use at least one atom derived in the
previous round.

The evaluator used to carry its own copy of the pivot decomposition
(without the positional index); it now delegates every round to
:mod:`repro.engine` — the same delta core the chase variants run on — and
selects how rounds execute through the engine registry:

* ``"parallel"`` (the default runs it inline at one worker, see
  :data:`DEFAULT_CLOSURE_ENGINE`): the sharded round scheduler's batched
  *derivation mode* — heads of a whole round are instantiated in one
  amortized pass straight from the delta homomorphisms, with no trigger
  identity or canonical ordering (a saturation only needs the atom set).
* ``"delta"``: the sequential trigger-mode inner loop shared with the
  chase — canonical per-rule trigger streams, one head instantiation per
  trigger.  The reference the parallel engine is benchmarked against
  (``benchmarks/bench_exp13_parallel.py``).
* ``"naive"``: classic naive Datalog evaluation — every round re-derives
  from the whole instance.
* ``"persistent"``: the parallel derivation mode on persistent delta-fed
  process workers — replicas seeded once, each round ships only the new
  atoms (for closures whose per-round matching is heavy enough to beat
  the IPC on multicore builds).

All engines produce the identical closure (a saturation is a set
fixpoint); used by the analysis module and available as a public API for
downstream users who only need Datalog.
"""

from __future__ import annotations

from repro.engine.config import EngineConfig, resolve_engine
from repro.engine.core import derive_delta_atoms
from repro.engine.scheduler import RoundScheduler
from repro.errors import ChaseBudgetExceeded, NotARuleClassError
from repro.logic.atoms import Atom
from repro.logic.instances import Instance
from repro.rules.ruleset import RuleSet
from repro.chase.trigger import new_triggers_of


#: The closure's default: the parallel engine's batched derivation mode
#: run inline (no pool).  The measured win over ``"delta"`` comes from
#: batching, not thread fan-out (see benchmarks/results/exp13_parallel.txt:
#: workers=1 is the fastest configuration on a single-core GIL build), so
#: the default skips pool spin-up; pass ``engine="parallel"`` or an
#: explicit :class:`EngineConfig` to fan out on multicore builds.
DEFAULT_CLOSURE_ENGINE = EngineConfig("parallel", workers=1)


def semi_naive_closure(
    instance: Instance,
    rules: RuleSet,
    max_rounds: int = 100,
    max_atoms: int = 500_000,
    engine: str | EngineConfig = DEFAULT_CLOSURE_ENGINE,
) -> Instance:
    """Compute the Datalog closure of ``instance`` under ``rules``.

    Raises :class:`NotARuleClassError` when a rule has existential
    variables and :class:`ChaseBudgetExceeded` when budgets are exceeded
    (Datalog closures are finite, so the round budget only guards against
    pathological inputs).
    """
    config = resolve_engine(engine)
    non_datalog = [r for r in rules if not r.is_datalog]
    if non_datalog:
        raise NotARuleClassError(
            f"semi-naive evaluation requires Datalog rules; offending: "
            f"{non_datalog[0]}"
        )
    total = instance.copy()
    seen_revision = 0
    scheduler = RoundScheduler(config) if config.is_parallel else None

    try:
        for _ in range(max_rounds):
            if config.is_naive:
                derived: set[Atom] = set()
                for rule in rules:
                    derived.update(derive_delta_atoms(rule, total, total))
            else:
                delta = total.delta_since(seen_revision)
                seen_revision = total.revision
                if scheduler is not None:
                    derived = scheduler.derive_atoms(total, rules, delta)
                else:
                    derived = _derive_sequential(total, rules, delta)
            new_atoms = {a for a in derived if a not in total}
            if not new_atoms:
                return total
            total.update(new_atoms)
            if len(total) > max_atoms:
                raise ChaseBudgetExceeded(
                    f"Datalog closure exceeded {max_atoms} atoms",
                    partial_result=total,
                )
    finally:
        if scheduler is not None:
            scheduler.close()
    raise ChaseBudgetExceeded(
        f"Datalog closure did not converge in {max_rounds} rounds",
        partial_result=total,
    )


def _derive_sequential(
    total: Instance, rules: RuleSet, delta: list[Atom]
) -> set[Atom]:
    """One sequential trigger-mode round: the chase variants' inner loop.

    Streams the canonical triggers of the round (rule order, image order)
    and instantiates one head per trigger — the ``engine="delta"``
    reference path the batched derivation mode is measured against.
    """
    derived: set[Atom] = set()
    for trigger in new_triggers_of(total, rules, delta):
        derived.update(trigger.mapping.apply_atoms(trigger.rule.head))
    return derived
