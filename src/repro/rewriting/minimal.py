"""Minimal UCQ rewritings (König et al. [22]).

Section 2.3 notes that rewritings are not unique but a *minimal* one is,
up to bijective renaming of variables.  :func:`minimal_rewriting` computes
it (rewrite to fixpoint, core every disjunct, remove subsumed disjuncts),
and :func:`rewritings_equivalent` decides the "up to renaming" equality —
the uniqueness statement is property-tested by comparing independent runs.
"""

from __future__ import annotations

from repro.logic.homomorphisms import find_isomorphism
from repro.logic.instances import Instance
from repro.queries.cq import ConjunctiveQuery
from repro.queries.minimization import minimize_ucq
from repro.queries.ucq import UCQ
from repro.rewriting.rewriter import (
    DEFAULT_MAX_DEPTH,
    DEFAULT_MAX_DISJUNCTS,
    RewritingResult,
    rewrite,
)
from repro.rules.ruleset import RuleSet


def minimal_rewriting(
    query: ConjunctiveQuery,
    rules: RuleSet,
    max_depth: int = DEFAULT_MAX_DEPTH,
    max_disjuncts: int = DEFAULT_MAX_DISJUNCTS,
    strict: bool = True,
) -> UCQ:
    """The minimal UCQ rewriting: fixpoint + per-disjunct cores + pruning.

    Raises (via the rewriter, when ``strict``) if no fixpoint is reached
    within budget — the input is then presumably not bdd.
    """
    result: RewritingResult = rewrite(
        query,
        rules,
        max_depth=max_depth,
        max_disjuncts=max_disjuncts,
        strict=strict,
    )
    return minimize_ucq(result.ucq, compute_cores=True)


def _cq_isomorphic(left: ConjunctiveQuery, right: ConjunctiveQuery) -> bool:
    """CQ equality up to bijective variable renaming, answers aligned."""
    if len(left.atoms) != len(right.atoms):
        return False
    if len(left.answers) != len(right.answers):
        return False
    iso = find_isomorphism(
        Instance(left.atoms, add_top=False),
        Instance(right.atoms, add_top=False),
    )
    if iso is None:
        return False
    return tuple(
        iso.apply_term(v) for v in left.answers
    ) == right.answers or _try_aligned_isomorphism(left, right)


def _try_aligned_isomorphism(
    left: ConjunctiveQuery, right: ConjunctiveQuery
) -> bool:
    """Isomorphism search with the answer tuple pinned up front."""
    from repro.logic.homomorphisms import homomorphisms

    seed = {}
    for l_var, r_var in zip(left.answers, right.answers):
        if l_var in seed and seed[l_var] != r_var:
            return False
        seed[l_var] = r_var
    left_inst = Instance(left.atoms, add_top=False)
    right_inst = Instance(right.atoms, add_top=False)
    if len(left_inst) != len(right_inst):
        return False
    for hom in homomorphisms(
        left_inst, right_inst, seed=seed, injective=True
    ):
        if {hom.apply_atom(a) for a in left.atoms} == set(right.atoms):
            return True
    return False


def rewritings_equivalent(left: UCQ, right: UCQ) -> bool:
    """Equality of UCQs up to bijective renaming of each disjunct.

    The uniqueness granularity of [22]: the two rewritings must have the
    same number of disjuncts, matched one-to-one by CQ isomorphism.
    """
    if len(left) != len(right):
        return False
    remaining = list(right.disjuncts)
    for disjunct in left:
        match = next(
            (
                candidate
                for candidate in remaining
                if _cq_isomorphic(disjunct, candidate)
            ),
            None,
        )
        if match is None:
            return False
        remaining.remove(match)
    return not remaining
