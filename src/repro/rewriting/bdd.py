"""Bounded derivation depth: certificates and empirical bdd constants.

Definition 3: a rule set has bdd when for every CQ ``q`` there is ``k``
with ``⟨I,R⟩ ⊨ q  ⇔  Ch_k(I,R) ⊨ q`` for all instances ``I``; Proposition
4 identifies bdd with UCQ-rewritability.  This module packages:

* :func:`ucq_rewritability_certificate` — a complete rewriting (when the
  engine reaches its fixpoint within budget) together with its depth;
* :func:`empirical_bdd_constant` — the smallest chase depth at which the
  query's status stabilizes on a given instance corpus (a lower-bound
  witness for ``bdd(q, R)``);
* :func:`cross_validate_rewriting` — checks ``I ⊨ Q ⇔ Ch_k(I,R) ⊨ q`` on a
  corpus, the library's strongest internal consistency check tying the
  rewriting engine to the chase engine.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.logic.instances import Instance
from repro.queries.cq import ConjunctiveQuery
from repro.queries.entailment import entails_cq, entails_ucq
from repro.queries.ucq import UCQ
from repro.rewriting.rewriter import (
    DEFAULT_MAX_DEPTH,
    DEFAULT_MAX_DISJUNCTS,
    RewritingResult,
    rewrite,
)
from repro.rules.ruleset import RuleSet
from repro.chase.oblivious import oblivious_chase


@dataclass(frozen=True)
class BddCertificate:
    """Evidence that ``rules`` are UCQ-rewritable for ``query``."""

    query: ConjunctiveQuery
    rewriting: UCQ
    fixpoint_depth: int

    def __str__(self) -> str:
        return (
            f"bdd certificate: {len(self.rewriting)} disjunct(s), "
            f"fixpoint depth {self.fixpoint_depth}"
        )


def ucq_rewritability_certificate(
    query: ConjunctiveQuery,
    rules: RuleSet,
    max_depth: int = DEFAULT_MAX_DEPTH,
    max_disjuncts: int = DEFAULT_MAX_DISJUNCTS,
) -> BddCertificate | None:
    """Return a certificate when the rewriting reaches a fixpoint, else None.

    ``None`` means *unknown within budget*: the rule set may still be bdd
    with a larger rewriting.
    """
    result: RewritingResult = rewrite(
        query, rules, max_depth=max_depth, max_disjuncts=max_disjuncts
    )
    if not result.complete:
        return None
    return BddCertificate(
        query=query, rewriting=result.ucq, fixpoint_depth=result.depth
    )


def empirical_bdd_constant(
    query: ConjunctiveQuery,
    rules: RuleSet,
    instances: Iterable[Instance],
    max_levels: int = 8,
) -> int:
    """Smallest ``k`` with ``Ch_k ⊨ q ⇔ Ch_max ⊨ q`` across the corpus.

    A lower bound on ``bdd(q, R)`` (Definition 3) witnessed by the given
    instances: at any smaller depth some corpus instance still changes its
    answer.
    """
    needed = 0
    for instance in instances:
        result = oblivious_chase(instance, rules, max_levels=max_levels)
        final = entails_cq(result.instance, query)
        if not final:
            continue
        for level in range(result.levels_completed + 1):
            if entails_cq(result.prefix(level), query):
                needed = max(needed, level)
                break
    return needed


def cross_validate_rewriting(
    query: ConjunctiveQuery,
    rewriting: UCQ,
    rules: RuleSet,
    instances: Iterable[Instance],
    max_levels: int = 8,
) -> list[tuple[Instance, bool, bool]]:
    """Return mismatches of ``I ⊨ Q`` versus ``Ch_k(I,R) ⊨ q`` on a corpus.

    An empty return value means the rewriting and the chase agree on every
    corpus instance — Definition 2 holds as far as the corpus witnesses.
    Each mismatch triple is ``(instance, rewriting_answer, chase_answer)``.
    """
    mismatches = []
    for instance in instances:
        via_rewriting = entails_ucq(instance, rewriting)
        result = oblivious_chase(instance, rules, max_levels=max_levels)
        via_chase = entails_cq(result.instance, query)
        if via_rewriting != via_chase:
            mismatches.append((instance, via_rewriting, via_chase))
    return mismatches
