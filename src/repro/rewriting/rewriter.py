"""Breadth-first UCQ rewriting with subsumption pruning, on the runner.

``rewrite(q, R)`` iterates one-step piece-unifications (backward chaining)
from the input CQ, minimizing the growing disjunct set by subsumption.
When a breadth level adds nothing new the rewriting is *complete*: the
resulting UCQ ``Q`` satisfies ``⟨I,R⟩ ⊨ q(t̄) ⇔ I ⊨ Q(t̄)`` — i.e. ``R``
is UCQ-rewritable for ``q`` (Definition 2), with fixpoint depth reported.

The breadth loop itself is no longer local: :class:`RewritePolicy` is a
:class:`~repro.engine.runner.FixpointPolicy` and the loop runs through
:meth:`ChaseRunner.fixpoint <repro.engine.runner.ChaseRunner.fixpoint>`,
so rewriting inherits the engine stack's budgets, strict/partial
semantics, round tracing (``plan="expand"``) and metrics-registry
telemetry — the same machinery the chase variants run on.  Query serving
(:func:`repro.serving.answer`) consumes rewriting through this module.

For rule sets that are not bdd (e.g. transitivity, Example 1) the loop
would not terminate; budgets turn that into an explicit
:class:`~repro.errors.RewritingBudgetExceeded` or an incomplete result.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.chase.bounds import (
    DEFAULT_MAX_CQ_SIZE,
    DEFAULT_MAX_DISJUNCTS,
    DEFAULT_MAX_REWRITE_DEPTH,
)
from repro.engine.runner import ChaseRunner, FixpointPolicy
from repro.errors import ChaseBudgetExceeded, RewritingBudgetExceeded
from repro.logic.terms import FreshSupply
from repro.obs import default_registry
from repro.obs.trace import TRACE_SCHEMA_VERSION, RunTrace
from repro.queries.cq import ConjunctiveQuery
from repro.queries.minimization import is_subsumed_by_any, subsumes
from repro.queries.ucq import UCQ
from repro.rewriting.piece_unifier import one_step_rewritings
from repro.rules.ruleset import RuleSet

#: Historical names, now re-exported from :mod:`repro.chase.bounds` so the
#: rewriter and the chase entry points share one budget vocabulary.
DEFAULT_MAX_DEPTH = DEFAULT_MAX_REWRITE_DEPTH

__all__ = [
    "DEFAULT_MAX_CQ_SIZE",
    "DEFAULT_MAX_DEPTH",
    "DEFAULT_MAX_DISJUNCTS",
    "RewritePolicy",
    "RewritingResult",
    "rewrite",
    "rewrite_ucq",
]


@dataclass
class RewritingResult:
    """Outcome of a rewriting run.

    Attributes
    ----------
    ucq:
        The disjuncts accumulated so far (always sound: each disjunct's
        match entails the original query under ``R``).
    complete:
        True when a fixpoint was reached — the UCQ is then a rewriting in
        the sense of Definition 2.
    depth:
        Number of completed breadth levels (the fixpoint depth when
        ``complete``).
    generated:
        Total number of candidate CQs generated before minimization.
    telemetry:
        The runner's metrics-registry delta for the run (schema version
        plus ``{group: counters}``), mirroring
        :attr:`repro.chase.result.ChaseResult.telemetry`.
    """

    ucq: UCQ
    complete: bool
    depth: int
    generated: int = 0
    telemetry: dict | None = field(default=None, compare=False)

    def __iter__(self):
        return iter(self.ucq)

    def __len__(self) -> int:
        return len(self.ucq)


class RewritePolicy(FixpointPolicy):
    """The piece-rewriter as a frontier-expansion policy.

    Owns the accumulated disjunct set (with cross-round subsumption
    minimization), the per-candidate budgets (``max_cq_size`` skips or
    strict-raises; ``max_disjuncts`` truncates the round and marks the
    run exhausted) and the ``generated`` counter; the breadth loop,
    depth budget, tracing and telemetry all live in
    :meth:`ChaseRunner.fixpoint <repro.engine.runner.ChaseRunner.fixpoint>`.
    """

    variant = "rewriting"
    supply_prefix = "_rw"

    def __init__(
        self,
        query: ConjunctiveQuery,
        rules: RuleSet,
        *,
        max_disjuncts: int,
        max_cq_size: int,
        strict: bool,
        supply: FreshSupply,
    ):
        self.query = query
        self.rules = rules
        self.max_disjuncts = max_disjuncts
        self.max_cq_size = max_cq_size
        self.strict_budgets = strict
        self.supply = supply
        self.accepted: list[ConjunctiveQuery] = [query]
        self.generated = 0
        self._round = 0
        self._exhausted = False

    def partial(self) -> UCQ:
        """The sound UCQ accumulated so far."""
        return UCQ(self.accepted, self.query.answers)

    def expand(self, frontier: list) -> list:
        self._round += 1
        new_frontier: list[ConjunctiveQuery] = []
        for current in frontier:
            for candidate in one_step_rewritings(
                current, self.rules, supply=self.supply
            ):
                self.generated += 1
                if len(candidate.atoms) > self.max_cq_size:
                    if self.strict_budgets:
                        raise RewritingBudgetExceeded(
                            f"rewriting produced a CQ of size "
                            f"{len(candidate.atoms)} > {self.max_cq_size}",
                            partial_rewriting=self.partial(),
                            depth=self._round,
                        )
                    continue
                if is_subsumed_by_any(candidate, self.accepted):
                    continue
                self.accepted = [
                    q for q in self.accepted if not subsumes(candidate, q)
                ]
                new_frontier = [
                    q for q in new_frontier if not subsumes(candidate, q)
                ]
                self.accepted.append(candidate)
                new_frontier.append(candidate)
                if len(self.accepted) > self.max_disjuncts:
                    if self.strict_budgets:
                        raise RewritingBudgetExceeded(
                            f"rewriting exceeded "
                            f"{self.max_disjuncts} disjuncts",
                            partial_rewriting=self.partial(),
                            depth=self._round,
                        )
                    self._exhausted = True
                    return new_frontier
        return new_frontier

    def exhausted(self) -> bool:
        return self._exhausted

    def step_budget_message(self, max_steps: int) -> str:
        return f"rewriting did not reach a fixpoint within depth {max_steps}"


def rewrite(
    query: ConjunctiveQuery,
    rules: RuleSet,
    max_depth: int = DEFAULT_MAX_DEPTH,
    max_disjuncts: int = DEFAULT_MAX_DISJUNCTS,
    max_cq_size: int = DEFAULT_MAX_CQ_SIZE,
    strict: bool = False,
    *,
    trace: RunTrace | None = None,
) -> RewritingResult:
    """Compute ``rew(q, R)`` breadth-first with subsumption pruning.

    Parameters
    ----------
    max_depth, max_disjuncts, max_cq_size:
        Budgets; exceeding any of them either raises (``strict=True``) or
        returns an incomplete result.  Defaults come from
        :mod:`repro.chase.bounds`.
    trace:
        An optional :class:`~repro.obs.trace.RunTrace`; each breadth
        level lands as one ``plan="expand"`` round record with the
        frontier size on ``delta_atoms``.
    """
    supply = FreshSupply(prefix="_rw")
    policy = RewritePolicy(
        query,
        rules,
        max_disjuncts=max_disjuncts,
        max_cq_size=max_cq_size,
        strict=strict,
        supply=supply,
    )
    runner = ChaseRunner(
        policy,
        max_steps=max_depth,
        max_atoms=max_disjuncts,
        strict=strict,
        supply=supply,
        trace=trace,
    )
    try:
        outcome = runner.fixpoint([query])
    except RewritingBudgetExceeded:
        raise
    except ChaseBudgetExceeded as exc:
        # The runner's depth-budget stop, reworded to the rewriting API's
        # exception type with the partial UCQ attached.
        raise RewritingBudgetExceeded(
            str(exc),
            partial_rewriting=policy.partial(),
            depth=max_depth,
        ) from None
    return RewritingResult(
        ucq=policy.partial(),
        complete=outcome.complete,
        depth=outcome.rounds,
        generated=policy.generated,
        telemetry=outcome.telemetry,
    )


def rewrite_ucq(
    query: UCQ,
    rules: RuleSet,
    max_depth: int = DEFAULT_MAX_DEPTH,
    max_disjuncts: int = DEFAULT_MAX_DISJUNCTS,
    max_cq_size: int = DEFAULT_MAX_CQ_SIZE,
    strict: bool = False,
    *,
    trace: RunTrace | None = None,
) -> RewritingResult:
    """Rewrite every disjunct of a UCQ and merge the results.

    The merged disjunct set is minimized across disjuncts; completeness
    requires every per-disjunct rewriting to be complete.  With a
    ``trace``, the per-disjunct runs append their rounds to the same
    trace; the telemetry block spans the whole merge.
    """
    all_disjuncts: list[ConjunctiveQuery] = []
    complete = True
    depth = 0
    generated = 0
    with default_registry().collect() as scope:
        for disjunct in query:
            result = rewrite(
                disjunct,
                rules,
                max_depth=max_depth,
                max_disjuncts=max_disjuncts,
                max_cq_size=max_cq_size,
                strict=strict,
                trace=trace,
            )
            complete = complete and result.complete
            depth = max(depth, result.depth)
            generated += result.generated
            for candidate in result.ucq:
                if not is_subsumed_by_any(candidate, all_disjuncts):
                    all_disjuncts = [
                        q
                        for q in all_disjuncts
                        if not subsumes(candidate, q)
                    ]
                    all_disjuncts.append(candidate)
    return RewritingResult(
        ucq=UCQ(all_disjuncts, query.answers),
        complete=complete,
        depth=depth,
        generated=generated,
        telemetry={
            "schema_version": TRACE_SCHEMA_VERSION,
            "registry": scope.delta,
        },
    )
