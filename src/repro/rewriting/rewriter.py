"""Breadth-first UCQ rewriting with subsumption pruning.

``rewrite(q, R)`` iterates one-step piece-unifications (backward chaining)
from the input CQ, minimizing the growing disjunct set by subsumption.
When a breadth level adds nothing new the rewriting is *complete*: the
resulting UCQ ``Q`` satisfies ``⟨I,R⟩ ⊨ q(t̄) ⇔ I ⊨ Q(t̄)`` — i.e. ``R``
is UCQ-rewritable for ``q`` (Definition 2), with fixpoint depth reported.

For rule sets that are not bdd (e.g. transitivity, Example 1) the loop
would not terminate; budgets turn that into an explicit
:class:`~repro.errors.RewritingBudgetExceeded` or an incomplete result.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import RewritingBudgetExceeded
from repro.logic.terms import FreshSupply
from repro.queries.cq import ConjunctiveQuery
from repro.queries.minimization import is_subsumed_by_any, subsumes
from repro.queries.ucq import UCQ
from repro.rewriting.piece_unifier import one_step_rewritings
from repro.rules.ruleset import RuleSet

DEFAULT_MAX_DEPTH = 12
DEFAULT_MAX_DISJUNCTS = 4_000
DEFAULT_MAX_CQ_SIZE = 24


@dataclass
class RewritingResult:
    """Outcome of a rewriting run.

    Attributes
    ----------
    ucq:
        The disjuncts accumulated so far (always sound: each disjunct's
        match entails the original query under ``R``).
    complete:
        True when a fixpoint was reached — the UCQ is then a rewriting in
        the sense of Definition 2.
    depth:
        Number of completed breadth levels (the fixpoint depth when
        ``complete``).
    generated:
        Total number of candidate CQs generated before minimization.
    """

    ucq: UCQ
    complete: bool
    depth: int
    generated: int = 0

    def __iter__(self):
        return iter(self.ucq)

    def __len__(self) -> int:
        return len(self.ucq)


def rewrite(
    query: ConjunctiveQuery,
    rules: RuleSet,
    max_depth: int = DEFAULT_MAX_DEPTH,
    max_disjuncts: int = DEFAULT_MAX_DISJUNCTS,
    max_cq_size: int = DEFAULT_MAX_CQ_SIZE,
    strict: bool = False,
) -> RewritingResult:
    """Compute ``rew(q, R)`` breadth-first with subsumption pruning.

    Parameters
    ----------
    max_depth, max_disjuncts, max_cq_size:
        Budgets; exceeding any of them either raises (``strict=True``) or
        returns an incomplete result.
    """
    supply = FreshSupply(prefix="_rw")
    accepted: list[ConjunctiveQuery] = [query]
    frontier: list[ConjunctiveQuery] = [query]
    generated = 0

    for depth in range(1, max_depth + 1):
        new_frontier: list[ConjunctiveQuery] = []
        for current in frontier:
            for candidate in one_step_rewritings(current, rules, supply=supply):
                generated += 1
                if len(candidate.atoms) > max_cq_size:
                    if strict:
                        raise RewritingBudgetExceeded(
                            f"rewriting produced a CQ of size "
                            f"{len(candidate.atoms)} > {max_cq_size}",
                            partial_rewriting=UCQ(accepted, query.answers),
                            depth=depth,
                        )
                    continue
                if is_subsumed_by_any(candidate, accepted):
                    continue
                accepted = [
                    q for q in accepted if not subsumes(candidate, q)
                ]
                new_frontier = [
                    q for q in new_frontier if not subsumes(candidate, q)
                ]
                accepted.append(candidate)
                new_frontier.append(candidate)
                if len(accepted) > max_disjuncts:
                    if strict:
                        raise RewritingBudgetExceeded(
                            f"rewriting exceeded {max_disjuncts} disjuncts",
                            partial_rewriting=UCQ(accepted, query.answers),
                            depth=depth,
                        )
                    return RewritingResult(
                        ucq=UCQ(accepted, query.answers),
                        complete=False,
                        depth=depth,
                        generated=generated,
                    )
        if not new_frontier:
            return RewritingResult(
                ucq=UCQ(accepted, query.answers),
                complete=True,
                depth=depth - 1,
                generated=generated,
            )
        frontier = new_frontier

    if strict:
        raise RewritingBudgetExceeded(
            f"rewriting did not reach a fixpoint within depth {max_depth}",
            partial_rewriting=UCQ(accepted, query.answers),
            depth=max_depth,
        )
    return RewritingResult(
        ucq=UCQ(accepted, query.answers),
        complete=False,
        depth=max_depth,
        generated=generated,
    )


def rewrite_ucq(
    query: UCQ,
    rules: RuleSet,
    max_depth: int = DEFAULT_MAX_DEPTH,
    max_disjuncts: int = DEFAULT_MAX_DISJUNCTS,
    max_cq_size: int = DEFAULT_MAX_CQ_SIZE,
    strict: bool = False,
) -> RewritingResult:
    """Rewrite every disjunct of a UCQ and merge the results.

    The merged disjunct set is minimized across disjuncts; completeness
    requires every per-disjunct rewriting to be complete.
    """
    all_disjuncts: list[ConjunctiveQuery] = []
    complete = True
    depth = 0
    generated = 0
    for disjunct in query:
        result = rewrite(
            disjunct,
            rules,
            max_depth=max_depth,
            max_disjuncts=max_disjuncts,
            max_cq_size=max_cq_size,
            strict=strict,
        )
        complete = complete and result.complete
        depth = max(depth, result.depth)
        generated += result.generated
        for candidate in result.ucq:
            if not is_subsumed_by_any(candidate, all_disjuncts):
                all_disjuncts = [
                    q
                    for q in all_disjuncts
                    if not subsumes(candidate, q)
                ]
                all_disjuncts.append(candidate)
    return RewritingResult(
        ucq=UCQ(all_disjuncts, query.answers),
        complete=complete,
        depth=depth,
        generated=generated,
    )
