"""UCQ rewriting: piece-unifiers, the breadth-first rewriter, bdd certificates.

The breadth-first rewriter runs as a non-instance *fixpoint policy* on
the unified :class:`~repro.engine.runner.ChaseRunner` (PR 8): each
rewriting level is one runner round, so rewriting inherits the same
budget handling (strict raises, partial results otherwise), round
tracing and metrics-registry telemetry as the chase variants.  Query
serving consumes it through :func:`repro.serving.answer` — a complete
rewriting answers from the base instance, a budget-stopped one can seed
the goal-directed chase (the hybrid strategy).
"""

from repro.rewriting.bdd import (
    BddCertificate,
    cross_validate_rewriting,
    empirical_bdd_constant,
    ucq_rewritability_certificate,
)
from repro.rewriting.datalog import semi_naive_closure
from repro.rewriting.minimal import minimal_rewriting, rewritings_equivalent
from repro.rewriting.piece_unifier import (
    PieceUnifier,
    one_step_rewritings,
    piece_unifiers,
)
from repro.rewriting.rewriter import (
    RewritingResult,
    rewrite,
    rewrite_ucq,
)

__all__ = [
    "BddCertificate",
    "PieceUnifier",
    "RewritingResult",
    "cross_validate_rewriting",
    "empirical_bdd_constant",
    "minimal_rewriting",
    "one_step_rewritings",
    "piece_unifiers",
    "rewritings_equivalent",
    "rewrite",
    "rewrite_ucq",
    "semi_naive_closure",
    "ucq_rewritability_certificate",
]
