"""Piece-unifiers: one backward-chaining step of UCQ rewriting.

Given a CQ ``q`` and a rule ``ρ = B → ∃z̄ H``, a piece-unifier unifies a
non-empty subset ``Q'`` of ``q``'s atoms with head atoms of ``ρ`` such that
the induced term partition is *valid*:

* no class contains two distinct constants;
* a class containing an existential variable of ``ρ`` contains no other
  rule variable, no constant, no answer variable of ``q``, and no query
  variable that also occurs in ``q \\ Q'`` (existential classes are
  "killed" by the step);
* a class containing an answer variable contains no constant (answer
  variables may merge with each other — producing a specialized disjunct —
  or with frontier variables).

The result of the step is ``u(B ∪ (q \\ Q'))`` where ``u`` maps each term
to its class representative.  This is the König-et-al. [22] rewriting
operator, enumerated exhaustively (every subset with every head-atom
assignment), which is sound and complete for UCQ rewriting.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from repro.logic.atoms import Atom
from repro.logic.substitutions import Substitution
from repro.logic.terms import FreshSupply, Term, Variable
from repro.logic.unification import TermPartition
from repro.queries.cq import ConjunctiveQuery
from repro.rules.rule import Rule


@dataclass(frozen=True)
class PieceUnifier:
    """A successful piece-unification and its rewriting step result."""

    rule: Rule
    unified_query_atoms: frozenset[Atom]
    rewritten: ConjunctiveQuery


def _valid_classes(
    partition: TermPartition,
    query: ConjunctiveQuery,
    rule: Rule,
    unified_atoms: set[Atom],
) -> bool:
    """Check partition validity for the piece-unifier (see module docstring)."""
    existential = rule.existential_variables()
    rule_vars = rule.variables()
    answer_set = set(query.answers)
    outside_vars = {
        v
        for atom in (query.atoms - unified_atoms)
        for v in atom.variables()
    }
    for group in partition.classes():
        constants = [t for t in group if t.is_constant]
        if len(constants) > 1:
            return False
        existential_members = [
            t for t in group if isinstance(t, Variable) and t in existential
        ]
        if not existential_members:
            if constants and any(t in answer_set for t in group):
                return False
            continue
        if len(existential_members) > 1 or constants:
            return False
        for term in group:
            if term in existential_members:
                continue
            if isinstance(term, Variable) and term in rule_vars:
                return False  # existential merged with frontier/body var
            if term in answer_set:
                return False
            if term in outside_vars:
                return False
            if not isinstance(term, Variable):
                return False  # a null from a materialized query
    return True


def _representative_substitution(
    partition: TermPartition, query: ConjunctiveQuery, rule: Rule
) -> Substitution:
    """Pick class representatives: constant > answer var > query var > rule var."""
    answer_set = set(query.answers)
    query_vars = query.variables()
    mapping: dict[Term, Term] = {}
    for group in partition.classes():
        constants = sorted(t for t in group if t.is_constant)
        answer_members = sorted(
            (t for t in group if t in answer_set), key=lambda t: t.name
        )
        query_members = sorted(
            (t for t in group if isinstance(t, Variable) and t in query_vars),
            key=lambda t: t.name,
        )
        if constants:
            representative = constants[0]
        elif answer_members:
            representative = answer_members[0]
        elif query_members:
            representative = query_members[0]
        else:
            representative = min(group)
        for term in group:
            if term != representative:
                mapping[term] = representative
    return Substitution(mapping)


def piece_unifiers(
    query: ConjunctiveQuery,
    rule: Rule,
    supply: FreshSupply | None = None,
) -> Iterator[PieceUnifier]:
    """Enumerate all piece-unifiers of ``query`` with ``rule``.

    The rule is freshly renamed so its variables never clash with the
    query's.  Enumeration is deterministic.
    """
    supply = supply or FreshSupply(prefix="_pu")
    renamed, _ = rule.rename_fresh(supply)
    head_atoms = sorted(renamed.head)
    head_predicates = {a.predicate for a in head_atoms}
    candidates = sorted(
        a for a in query.atoms if a.predicate in head_predicates
    )
    if not candidates:
        return

    compatible: dict[Atom, list[Atom]] = {
        atom: [h for h in head_atoms if h.predicate == atom.predicate]
        for atom in candidates
    }

    # Enumerate partial assignments: each candidate maps to a head atom or
    # stays out of Q'.  At least one candidate must be assigned.
    def assignments(
        index: int, current: list[tuple[Atom, Atom]]
    ) -> Iterator[list[tuple[Atom, Atom]]]:
        if index == len(candidates):
            if current:
                yield list(current)
            return
        atom = candidates[index]
        # Option 1: leave the atom outside Q'.
        yield from assignments(index + 1, current)
        # Option 2: unify with each compatible head atom.
        for head_atom in compatible[atom]:
            current.append((atom, head_atom))
            yield from assignments(index + 1, current)
            current.pop()

    seen: set[tuple] = set()
    for assignment in assignments(0, []):
        partition = TermPartition()
        feasible = True
        for query_atom, head_atom in assignment:
            if not partition.unify_atoms(query_atom, head_atom):
                feasible = False
                break
        if not feasible:
            continue
        unified_atoms = {query_atom for query_atom, _ in assignment}
        if not _valid_classes(partition, query, renamed, unified_atoms):
            continue
        unifier = _representative_substitution(partition, query, renamed)
        result_atoms = unifier.apply_atoms(
            set(renamed.body) | (query.atoms - unified_atoms)
        )
        new_answers = tuple(
            unifier.apply_term(v) for v in query.answers
        )
        if any(not isinstance(v, Variable) for v in new_answers):
            continue
        rewritten = ConjunctiveQuery(result_atoms, new_answers)
        key = (rewritten.atoms, rewritten.answers, frozenset(unified_atoms))
        if key in seen:
            continue
        seen.add(key)
        yield PieceUnifier(
            rule=rule,
            unified_query_atoms=frozenset(unified_atoms),
            rewritten=rewritten,
        )


def one_step_rewritings(
    query: ConjunctiveQuery,
    rules,
    supply: FreshSupply | None = None,
) -> list[ConjunctiveQuery]:
    """All CQs obtained from ``query`` by one piece-unification step."""
    supply = supply or FreshSupply(prefix="_pu")
    results: list[ConjunctiveQuery] = []
    seen: set[ConjunctiveQuery] = set()
    for rule in rules:
        if rule.is_datalog and not rule.head:
            continue
        for unifier in piece_unifiers(query, rule, supply=supply):
            if unifier.rewritten not in seen:
                seen.add(unifier.rewritten)
                results.append(unifier.rewritten)
    return results
