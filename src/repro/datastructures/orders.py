"""Partial orders on DAG-shaped instances (Definition 38).

Given an instance (or CQ) that is a directed acyclic graph over a binary
signature, the paper defines ``s <_I t`` iff there is a directed path from
``s`` to ``t``.  This module builds that reachability order, exposes its
maximal elements (needed by the valley-query machinery of Section 5), and
provides generic helpers for descending-chain checks used by the
well-foundedness tests of Lemma 8.
"""

from __future__ import annotations

from typing import Generic, Hashable, Iterable, Sequence, TypeVar

import networkx as nx

from repro.logic.atoms import Atom
from repro.logic.terms import Term

T = TypeVar("T", bound=Hashable)


class ReachabilityOrder(Generic[T]):
    """The strict partial order ``s < t iff a directed path s -> t exists``.

    Built from a directed graph; raises ValueError when the graph is cyclic
    (the order would not be strict).
    """

    def __init__(self, graph: nx.DiGraph):
        if not nx.is_directed_acyclic_graph(graph):
            raise ValueError("reachability order requires an acyclic graph")
        self._graph = graph
        self._descendants: dict[T, set[T]] = {
            node: set(nx.descendants(graph, node)) for node in graph.nodes
        }

    @classmethod
    def from_binary_atoms(cls, atoms: Iterable[Atom]) -> "ReachabilityOrder[Term]":
        """Build the order ``<_I`` of Definition 38 from binary atoms.

        Every binary atom ``P(s, t)`` contributes a directed edge ``s -> t``;
        terms of non-binary atoms contribute isolated vertices.
        """
        graph = nx.DiGraph()
        for atom in atoms:
            for term in atom.args:
                graph.add_node(term)
            if atom.predicate.arity == 2:
                graph.add_edge(atom.args[0], atom.args[1])
        return cls(graph)

    def __contains__(self, node: T) -> bool:
        return node in self._graph

    def nodes(self) -> set[T]:
        return set(self._graph.nodes)

    def less(self, left: T, right: T) -> bool:
        """``left < right``: a directed path from left to right exists."""
        return right in self._descendants.get(left, ())

    def less_equal(self, left: T, right: T) -> bool:
        """The reflexive closure ``≤``."""
        return left == right or self.less(left, right)

    def maximal_elements(self) -> set[T]:
        """Return the ``≤``-maximal nodes (no outgoing path to another node)."""
        return {
            node
            for node in self._graph.nodes
            if not self._descendants.get(node, ())
        }

    def strictly_below(self, node: T) -> set[T]:
        """Return ``{m | m < node}``."""
        return {
            other
            for other in self._graph.nodes
            if node in self._descendants.get(other, ())
        }

    def below_all_of(self, nodes: Iterable[T]) -> set[T]:
        """Return the elements strictly below every node in ``nodes``."""
        node_list = list(nodes)
        if not node_list:
            return set()
        result = self.strictly_below(node_list[0])
        for node in node_list[1:]:
            result &= self.strictly_below(node)
        return result

    def topological(self) -> list[T]:
        """Return a deterministic topological order of the nodes."""
        return list(
            nx.lexicographical_topological_sort(
                self._graph, key=lambda n: str(n)
            )
        )


def is_strictly_descending(chain: Sequence, strictly_less) -> bool:
    """True when each element of ``chain`` is strictly below its predecessor."""
    return all(
        strictly_less(chain[i + 1], chain[i]) for i in range(len(chain) - 1)
    )


def has_infinite_descent_witness(
    start, step, max_steps: int = 10_000
) -> bool:
    """Follow ``step`` (returning a strictly smaller element or None).

    Returns True when more than ``max_steps`` strict descents occur — a
    practical refutation harness for well-foundedness claims (Lemma 8): on a
    well-founded order this function always returns False.
    """
    current = start
    for _ in range(max_steps):
        nxt = step(current)
        if nxt is None:
            return False
        current = nxt
    return True
