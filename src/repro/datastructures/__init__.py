"""Ordered multisets, union-find, and DAG partial orders (§2.4, Def 38)."""

from repro.datastructures.multiset import (
    EMPTY,
    Multiset,
    lex_minimum,
    multiset_from_function,
    multiset_of,
)
from repro.datastructures.orders import ReachabilityOrder
from repro.datastructures.unionfind import UnionFind

__all__ = [
    "EMPTY",
    "Multiset",
    "ReachabilityOrder",
    "UnionFind",
    "lex_minimum",
    "multiset_from_function",
    "multiset_of",
]
