"""Finite multisets with the lexicographic order of Section 2.4.

A multiset over a domain ``D`` is a function ``M : D -> N``; this module
implements finite multisets with union ``∪m``, intersection ``∩m``,
difference ``\\m``, maxima, and the strict lexicographic order ``<_lex``
used by the peak-removing argument (Lemma 40).  Lemma 8 (well-foundedness
of ``<_lex`` on size-bounded multisets over a well-founded domain) is
exercised by the property-based test suite.
"""

from __future__ import annotations

from collections import Counter
from typing import Generic, Hashable, Iterable, Iterator, Mapping, TypeVar

T = TypeVar("T", bound=Hashable)


class Multiset(Generic[T]):
    """An immutable finite multiset.

    Elements must be hashable and mutually comparable (for
    :meth:`maximum` and the lexicographic order).
    """

    __slots__ = ("_counts",)

    def __init__(self, elements: Iterable[T] | Mapping[T, int] = ()):
        if isinstance(elements, Mapping):
            counts = {k: int(v) for k, v in elements.items() if v > 0}
            if any(v < 0 for v in elements.values()):
                raise ValueError("multiplicities must be non-negative")
        else:
            counts = dict(Counter(elements))
        self._counts: dict[T, int] = counts

    # ------------------------------------------------------------------
    # Container protocol
    # ------------------------------------------------------------------

    def __contains__(self, element: T) -> bool:
        return element in self._counts

    def __len__(self) -> int:
        """The size ``|M| = Σ M(x)``."""
        return sum(self._counts.values())

    def __iter__(self) -> Iterator[T]:
        """Iterate elements with multiplicity, in sorted order."""
        for element in sorted(self._counts):
            for _ in range(self._counts[element]):
                yield element

    def __eq__(self, other) -> bool:
        return isinstance(other, Multiset) and self._counts == other._counts

    def __hash__(self) -> int:
        return hash(frozenset(self._counts.items()))

    def __repr__(self) -> str:
        inner = ", ".join(f"{k}: {v}" for k, v in sorted(self._counts.items()))
        return f"Multiset({{{inner}}})"

    def __bool__(self) -> bool:
        return bool(self._counts)

    # ------------------------------------------------------------------
    # Multiset algebra (§2.4)
    # ------------------------------------------------------------------

    def count(self, element: T) -> int:
        """Return ``M(x)`` (0 for absent elements)."""
        return self._counts.get(element, 0)

    def support(self) -> set[T]:
        """Return ``{x | M(x) > 0}``."""
        return set(self._counts)

    def union(self, other: "Multiset[T]") -> "Multiset[T]":
        """``M ∪m N : x -> M(x) + N(x)``."""
        counts = dict(self._counts)
        for element, multiplicity in other._counts.items():
            counts[element] = counts.get(element, 0) + multiplicity
        return Multiset(counts)

    def intersection(self, other: "Multiset[T]") -> "Multiset[T]":
        """``M ∩m N : x -> min(M(x), N(x))``."""
        counts = {
            element: min(multiplicity, other.count(element))
            for element, multiplicity in self._counts.items()
        }
        return Multiset(counts)

    def difference(self, other: "Multiset[T]") -> "Multiset[T]":
        """``M \\m N : x -> max(M(x) - N(x), 0)``."""
        counts = {
            element: multiplicity - other.count(element)
            for element, multiplicity in self._counts.items()
            if multiplicity - other.count(element) > 0
        }
        return Multiset(counts)

    def maximum(self) -> T:
        """``max_m(M)``; raises ValueError on the empty multiset."""
        if not self._counts:
            raise ValueError("the empty multiset has no maximum")
        return max(self._counts)

    def remove_one_maximum(self) -> "Multiset[T]":
        """Return ``M \\m {max_m(M)}m`` — one copy of the maximum removed."""
        return self.difference(Multiset([self.maximum()]))

    # ------------------------------------------------------------------
    # The lexicographic order <_lex (§2.4)
    # ------------------------------------------------------------------

    def __lt__(self, other: "Multiset[T]") -> bool:
        """The strict lexicographic order ``<_lex`` of Section 2.4.

        Inductively: ``∅m <lex M`` for non-empty ``M``; otherwise compare
        maxima, and on equal maxima recurse after removing one copy of the
        maximum from each side.
        """
        if not isinstance(other, Multiset):
            return NotImplemented
        left, right = self, other
        while True:
            if not right:
                return False
            if not left:
                return True
            l_max, r_max = left.maximum(), right.maximum()
            if l_max != r_max:
                return l_max < r_max
            left = left.remove_one_maximum()
            right = right.remove_one_maximum()

    def __le__(self, other: "Multiset[T]") -> bool:
        if not isinstance(other, Multiset):
            return NotImplemented
        return self == other or self < other

    def __gt__(self, other: "Multiset[T]") -> bool:
        if not isinstance(other, Multiset):
            return NotImplemented
        return other < self

    def __ge__(self, other: "Multiset[T]") -> bool:
        if not isinstance(other, Multiset):
            return NotImplemented
        return other <= self


def multiset_of(*elements: T) -> Multiset[T]:
    """Convenience constructor: ``multiset_of(1, 1, 2)``."""
    return Multiset(elements)


def multiset_from_function(values: Iterable[T]) -> Multiset[T]:
    """The paper's ``{f(x) | x ∈ E}m`` builder: collect images with multiplicity."""
    return Multiset(values)


EMPTY: Multiset = Multiset()


def lex_minimum(candidates: Iterable[Multiset[T]]) -> Multiset[T]:
    """Return the ``<_lex``-minimal multiset among ``candidates``.

    Raises ValueError when ``candidates`` is empty.  Existence for finite
    collections is immediate; Lemma 8 guarantees it for arbitrary
    size-bounded sets over well-founded domains.
    """
    iterator = iter(candidates)
    try:
        best = next(iterator)
    except StopIteration:
        raise ValueError("lex_minimum of no candidates") from None
    for candidate in iterator:
        if candidate < best:
            best = candidate
    return best
