"""A generic union-find (disjoint-set) structure with path compression."""

from __future__ import annotations

from typing import Generic, Hashable, Iterable, TypeVar

T = TypeVar("T", bound=Hashable)


class UnionFind(Generic[T]):
    """Disjoint sets over arbitrary hashable elements.

    Elements are added lazily; :meth:`union` and :meth:`connected` add their
    arguments as singletons when unseen.
    """

    def __init__(self, elements: Iterable[T] = ()):
        self._parent: dict[T, T] = {}
        self._rank: dict[T, int] = {}
        for element in elements:
            self.add(element)

    def __contains__(self, element: T) -> bool:
        return element in self._parent

    def __len__(self) -> int:
        return len(self._parent)

    def add(self, element: T) -> None:
        """Add ``element`` as a singleton set if unseen."""
        if element not in self._parent:
            self._parent[element] = element
            self._rank[element] = 0

    def find(self, element: T) -> T:
        """Return the canonical representative of ``element``'s set."""
        self.add(element)
        root = element
        while self._parent[root] != root:
            root = self._parent[root]
        # Path compression.
        while self._parent[element] != root:
            self._parent[element], element = root, self._parent[element]
        return root

    def union(self, left: T, right: T) -> T:
        """Merge the sets of ``left`` and ``right``; return the new root."""
        l_root, r_root = self.find(left), self.find(right)
        if l_root == r_root:
            return l_root
        if self._rank[l_root] < self._rank[r_root]:
            l_root, r_root = r_root, l_root
        self._parent[r_root] = l_root
        if self._rank[l_root] == self._rank[r_root]:
            self._rank[l_root] += 1
        return l_root

    def connected(self, left: T, right: T) -> bool:
        """True when the two elements are in the same set."""
        return self.find(left) == self.find(right)

    def groups(self) -> list[set[T]]:
        """Return all equivalence classes as a list of sets."""
        by_root: dict[T, set[T]] = {}
        for element in self._parent:
            by_root.setdefault(self.find(element), set()).add(element)
        return list(by_root.values())

    def group_of(self, element: T) -> set[T]:
        """Return the set containing ``element``."""
        root = self.find(element)
        return {e for e in self._parent if self.find(e) == root}
