"""The semi-oblivious (frugal) chase.

Between the oblivious chase (fire every trigger) and the restricted chase
(fire only unsatisfied triggers) sits the semi-oblivious chase: fire one
trigger per rule and *frontier image* — two body homomorphisms that agree
on the frontier produce the same head up to null renaming, so only one
needs to fire.  It produces the same result as the oblivious chase up to
homomorphic equivalence while materializing fewer atoms; the ablation
experiments quantify the gap.
"""

from __future__ import annotations

from repro.errors import ChaseBudgetExceeded
from repro.logic.instances import Instance
from repro.logic.terms import FreshSupply, Term
from repro.rules.rule import Rule
from repro.rules.ruleset import RuleSet
from repro.chase.oblivious import DEFAULT_MAX_ATOMS, DEFAULT_MAX_LEVELS
from repro.chase.result import ChaseResult
from repro.chase.trigger import Trigger, triggers_of


def _frontier_key(trigger: Trigger) -> tuple:
    """The (rule, frontier image) identity of the semi-oblivious chase."""
    frontier = trigger.frontier_image()
    return (
        trigger.rule,
        tuple(sorted((v.name, t) for v, t in frontier.items())),
    )


def semi_oblivious_chase(
    instance: Instance,
    rules: RuleSet,
    max_levels: int = DEFAULT_MAX_LEVELS,
    max_atoms: int = DEFAULT_MAX_ATOMS,
    strict: bool = False,
    supply: FreshSupply | None = None,
) -> ChaseResult:
    """Run the semi-oblivious chase, level-synchronous like §2.2's chase.

    At each level, among the new triggers only the first per
    ``(rule, frontier image)`` class fires.
    """
    supply = supply or FreshSupply(prefix="_so")
    result = ChaseResult(instance)
    fired_keys: set[tuple] = set()

    for level in range(max_levels):
        new_triggers = [
            t
            for t in triggers_of(result.instance, rules)
            if _frontier_key(t) not in fired_keys
        ]
        if not new_triggers:
            result.terminated = True
            result.levels_completed = level
            return result
        for trigger in new_triggers:
            key = _frontier_key(trigger)
            if key in fired_keys:
                continue  # an earlier trigger this level claimed the class
            fired_keys.add(key)
            output_atoms, existential_map = trigger.output(supply)
            result.record_application(
                trigger,
                level=level + 1,
                created_nulls=existential_map.values(),
                output_atoms=output_atoms,
            )
            if len(result.instance) > max_atoms:
                result.levels_completed = level
                if strict:
                    raise ChaseBudgetExceeded(
                        f"semi-oblivious chase exceeded {max_atoms} atoms",
                        partial_result=result,
                    )
                return result
        result.levels_completed = level + 1

    remaining = any(
        _frontier_key(t) not in fired_keys
        for t in triggers_of(result.instance, rules)
    )
    if not remaining:
        result.terminated = True
    elif strict:
        raise ChaseBudgetExceeded(
            f"semi-oblivious chase did not terminate within {max_levels} levels",
            partial_result=result,
        )
    return result
