"""The semi-oblivious (frugal) chase.

Between the oblivious chase (fire every trigger) and the restricted chase
(fire only unsatisfied triggers) sits the semi-oblivious chase: fire one
trigger per rule and *frontier image* — two body homomorphisms that agree
on the frontier produce the same head up to null renaming, so only one
needs to fire.  It produces the same result as the oblivious chase up to
homomorphic equivalence while materializing fewer atoms; the ablation
experiments quantify the gap.

Like the oblivious chase it runs on the engine registry
(:mod:`repro.engine.config`): ``engine="delta"`` (semi-naive enumeration
of the triggers new at each level — the default), ``engine="naive"``
(full re-match reference), ``engine="parallel"`` (sharded scheduler +
batched firing) and ``engine="persistent"`` (delta-fed process workers
with sharded firing; the frontier-dedup claim gate runs parent-side in
canonical order); all fire in the same canonical order and produce
bit-identical results.
"""

from __future__ import annotations

from repro.engine.batch import fire_round
from repro.engine.config import EngineConfig, resolve_engine
from repro.engine.scheduler import RoundScheduler
from repro.errors import ChaseBudgetExceeded
from repro.logic.instances import Instance
from repro.logic.terms import FreshSupply
from repro.rules.ruleset import RuleSet
from repro.chase.oblivious import DEFAULT_MAX_ATOMS, DEFAULT_MAX_LEVELS
from repro.chase.result import ChaseResult
from repro.chase.trigger import (
    Trigger,
    new_triggers_of,
    parallel_new_triggers_of,
    triggers_of,
)


def _frontier_key(trigger: Trigger) -> tuple:
    """The (rule, frontier image) identity of the semi-oblivious chase."""
    apply = trigger.mapping.apply_term
    return (
        trigger.rule,
        tuple(apply(v) for v in trigger.rule.frontier_order()),
    )


def _naive_new_triggers(
    instance: Instance, rules: RuleSet, fired_keys: set[tuple]
) -> list[Trigger]:
    """Full re-match, keeping triggers of not-yet-fired frontier classes."""
    fresh: list[Trigger] = []
    for rule in rules:
        batch = [
            t
            for t in triggers_of(instance, [rule])
            if _frontier_key(t) not in fired_keys
        ]
        batch.sort(key=Trigger.image)
        fresh.extend(batch)
    return fresh


def semi_oblivious_chase(
    instance: Instance,
    rules: RuleSet,
    max_levels: int = DEFAULT_MAX_LEVELS,
    max_atoms: int = DEFAULT_MAX_ATOMS,
    strict: bool = False,
    supply: FreshSupply | None = None,
    engine: str | EngineConfig = "delta",
) -> ChaseResult:
    """Run the semi-oblivious chase, level-synchronous like §2.2's chase.

    At each level, among the new triggers only the first per
    ``(rule, frontier image)`` class fires.
    """
    config = resolve_engine(engine)
    supply = supply or FreshSupply(prefix="_so")
    result = ChaseResult(instance)
    fired_keys: set[tuple] = set()
    seen_revision = 0
    scheduler = RoundScheduler(config) if config.is_parallel else None

    def claim(trigger: Trigger) -> bool:
        # First trigger of a frontier class this level claims it; later
        # ones (already sorted after it) are skipped.
        key = _frontier_key(trigger)
        if key in fired_keys:
            return False
        fired_keys.add(key)
        return True

    try:
        for level in range(max_levels):
            if config.is_naive:
                new_triggers = _naive_new_triggers(
                    result.instance, rules, fired_keys
                )
            else:
                delta = result.instance.delta_since(seen_revision)
                seen_revision = result.instance.revision
                if scheduler is not None:
                    enumerated = parallel_new_triggers_of(
                        result.instance, rules, delta, scheduler
                    )
                else:
                    enumerated = new_triggers_of(result.instance, rules, delta)
                new_triggers = [
                    t for t in enumerated if _frontier_key(t) not in fired_keys
                ]
            if not new_triggers:
                result.terminated = True
                result.levels_completed = level
                return result
            outcome = fire_round(
                result,
                new_triggers,
                supply,
                level=level + 1,
                max_atoms=max_atoms,
                claim=claim,
                scheduler=scheduler,
            )
            if outcome.budget_exceeded:
                result.levels_completed = level
                if strict:
                    raise ChaseBudgetExceeded(
                        f"semi-oblivious chase exceeded {max_atoms} atoms",
                        partial_result=result,
                    )
                return result
            result.levels_completed = level + 1
    finally:
        if scheduler is not None:
            scheduler.close()

    if config.is_naive:
        remaining = any(
            _frontier_key(t) not in fired_keys
            for t in triggers_of(result.instance, rules)
        )
    else:
        delta = result.instance.delta_since(seen_revision)
        remaining = any(
            _frontier_key(t) not in fired_keys
            for t in new_triggers_of(result.instance, rules, delta)
        )
    if not remaining:
        result.terminated = True
    elif strict:
        raise ChaseBudgetExceeded(
            f"semi-oblivious chase did not terminate within {max_levels} levels",
            partial_result=result,
        )
    return result
