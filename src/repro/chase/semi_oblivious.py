"""The semi-oblivious (frugal) chase.

Between the oblivious chase (fire every trigger) and the restricted chase
(fire only unsatisfied triggers) sits the semi-oblivious chase: fire one
trigger per rule and *frontier image* — two body homomorphisms that agree
on the frontier produce the same head up to null renaming, so only one
needs to fire.  It produces the same result as the oblivious chase up to
homomorphic equivalence while materializing fewer atoms; the ablation
experiments quantify the gap.

The saturation loop lives in :class:`repro.engine.runner.ChaseRunner`;
this module only declares the semi-oblivious strategy: delta enumeration
post-filtered by fired frontier classes, a stateful frontier-class claim
gate (first trigger of a class in canonical order claims it), batched and
shardable firing — the gate is independent of the growing instance, so
levels fire through the batched recording pass and fan out across sharding
backends.  All engines (``delta``/``naive``/``parallel``/``persistent``)
fire in the same canonical order and produce bit-identical results.
"""

from __future__ import annotations

from repro.engine.config import EngineConfig
from repro.engine.runner import ChaseRunner, RoundPlan, VariantPolicy
from repro.obs.trace import RunTrace
from repro.logic.instances import Instance
from repro.logic.terms import FreshSupply
from repro.rules.ruleset import RuleSet
from repro.chase.bounds import DEFAULT_MAX_ATOMS, DEFAULT_MAX_LEVELS
from repro.chase.result import ChaseResult
from repro.chase.trigger import Trigger, new_triggers_of, triggers_of


def _frontier_key(trigger: Trigger) -> tuple:
    """The (rule, frontier image) identity of the semi-oblivious chase."""
    apply = trigger.mapping.apply_term
    return (
        trigger.rule,
        tuple(apply(v) for v in trigger.rule.frontier_order()),
    )


class SemiObliviousPolicy(VariantPolicy):
    """Fire one trigger per (rule, frontier image) class.

    The fired-classes set gates twice: enumeration drops triggers of
    classes fired at *earlier* levels, and the claim dedups *within* a
    level (triggers arrive sorted, so the first of a class claims it).
    The claim never reads the instance, which keeps firing batched and
    shardable.
    """

    variant = "semi-oblivious chase"
    supply_prefix = "_so"

    def __init__(self):
        self._fired_keys: set[tuple] = set()

    def filter_new(self, triggers):
        fired_keys = self._fired_keys
        return [t for t in triggers if _frontier_key(t) not in fired_keys]

    def naive_new_triggers(self, instance, rules):
        # Full re-match, keeping triggers of not-yet-fired frontier
        # classes; per rule in canonical image order.  The claim (not this
        # enumeration) registers the fired classes.
        fired_keys = self._fired_keys
        fresh: list[Trigger] = []
        for rule in rules:
            batch = [
                t
                for t in triggers_of(instance, [rule])
                if _frontier_key(t) not in fired_keys
            ]
            batch.sort(key=Trigger.image)
            fresh.extend(batch)
        return fresh

    def naive_has_remaining(self, instance, rules):
        fired_keys = self._fired_keys
        return any(
            _frontier_key(t) not in fired_keys
            for t in triggers_of(instance, rules)
        )

    def delta_has_remaining(self, instance, rules, delta):
        fired_keys = self._fired_keys
        return any(
            _frontier_key(t) not in fired_keys
            for t in new_triggers_of(instance, rules, delta)
        )

    def plan_round(self, result, triggers):
        return RoundPlan(claim=self._claim, interleaved=False)

    def _claim(self, trigger: Trigger) -> bool:
        # First trigger of a frontier class this level claims it; later
        # ones (sorted after it in canonical order) are skipped.
        key = _frontier_key(trigger)
        if key in self._fired_keys:
            return False
        self._fired_keys.add(key)
        return True


def semi_oblivious_chase(
    instance: Instance,
    rules: RuleSet,
    max_levels: int = DEFAULT_MAX_LEVELS,
    max_atoms: int = DEFAULT_MAX_ATOMS,
    strict: bool = False,
    supply: FreshSupply | None = None,
    engine: str | EngineConfig = "delta",
    trace: RunTrace | None = None,
) -> ChaseResult:
    """Run the semi-oblivious chase, level-synchronous like §2.2's chase.

    At each level, among the new triggers only the first per
    ``(rule, frontier image)`` class fires.  ``trace`` optionally
    receives one structured record per level (see :mod:`repro.obs`).
    """
    runner = ChaseRunner(
        SemiObliviousPolicy(),
        engine,
        max_steps=max_levels,
        max_atoms=max_atoms,
        strict=strict,
        supply=supply,
        trace=trace,
    )
    return runner.run(instance, rules)
