"""The semi-oblivious (frugal) chase.

Between the oblivious chase (fire every trigger) and the restricted chase
(fire only unsatisfied triggers) sits the semi-oblivious chase: fire one
trigger per rule and *frontier image* — two body homomorphisms that agree
on the frontier produce the same head up to null renaming, so only one
needs to fire.  It produces the same result as the oblivious chase up to
homomorphic equivalence while materializing fewer atoms; the ablation
experiments quantify the gap.

Like the oblivious chase it supports ``engine="delta"`` (semi-naive
enumeration of the triggers new at each level — the default) and
``engine="naive"`` (full re-match reference); both fire in the same
canonical order and produce bit-identical results.
"""

from __future__ import annotations

from repro.errors import ChaseBudgetExceeded
from repro.logic.instances import Instance
from repro.logic.terms import FreshSupply, Term
from repro.rules.rule import Rule
from repro.rules.ruleset import RuleSet
from repro.chase.oblivious import (
    DEFAULT_MAX_ATOMS,
    DEFAULT_MAX_LEVELS,
    _check_engine,
)
from repro.chase.result import ChaseResult
from repro.chase.trigger import Trigger, new_triggers_of, triggers_of


def _frontier_key(trigger: Trigger) -> tuple:
    """The (rule, frontier image) identity of the semi-oblivious chase."""
    apply = trigger.mapping.apply_term
    return (
        trigger.rule,
        tuple(apply(v) for v in trigger.rule.frontier_order()),
    )


def _naive_new_triggers(
    instance: Instance, rules: RuleSet, fired_keys: set[tuple]
) -> list[Trigger]:
    """Full re-match, keeping triggers of not-yet-fired frontier classes."""
    fresh: list[Trigger] = []
    for rule in rules:
        batch = [
            t
            for t in triggers_of(instance, [rule])
            if _frontier_key(t) not in fired_keys
        ]
        batch.sort(key=Trigger.image)
        fresh.extend(batch)
    return fresh


def semi_oblivious_chase(
    instance: Instance,
    rules: RuleSet,
    max_levels: int = DEFAULT_MAX_LEVELS,
    max_atoms: int = DEFAULT_MAX_ATOMS,
    strict: bool = False,
    supply: FreshSupply | None = None,
    engine: str = "delta",
) -> ChaseResult:
    """Run the semi-oblivious chase, level-synchronous like §2.2's chase.

    At each level, among the new triggers only the first per
    ``(rule, frontier image)`` class fires.
    """
    _check_engine(engine)
    supply = supply or FreshSupply(prefix="_so")
    result = ChaseResult(instance)
    fired_keys: set[tuple] = set()
    seen_revision = 0

    for level in range(max_levels):
        if engine == "delta":
            delta = result.instance.delta_since(seen_revision)
            seen_revision = result.instance.revision
            new_triggers = [
                t
                for t in new_triggers_of(result.instance, rules, delta)
                if _frontier_key(t) not in fired_keys
            ]
        else:
            new_triggers = _naive_new_triggers(
                result.instance, rules, fired_keys
            )
        if not new_triggers:
            result.terminated = True
            result.levels_completed = level
            return result
        for trigger in new_triggers:
            key = _frontier_key(trigger)
            if key in fired_keys:
                continue  # an earlier trigger this level claimed the class
            fired_keys.add(key)
            output_atoms, existential_map = trigger.output(supply)
            result.record_application(
                trigger,
                level=level + 1,
                created_nulls=existential_map.values(),
                output_atoms=output_atoms,
            )
            if len(result.instance) > max_atoms:
                result.levels_completed = level
                if strict:
                    raise ChaseBudgetExceeded(
                        f"semi-oblivious chase exceeded {max_atoms} atoms",
                        partial_result=result,
                    )
                return result
        result.levels_completed = level + 1

    if engine == "delta":
        delta = result.instance.delta_since(seen_revision)
        remaining = any(
            _frontier_key(t) not in fired_keys
            for t in new_triggers_of(result.instance, rules, delta)
        )
    else:
        remaining = any(
            _frontier_key(t) not in fired_keys
            for t in triggers_of(result.instance, rules)
        )
    if not remaining:
        result.terminated = True
    elif strict:
        raise ChaseBudgetExceeded(
            f"semi-oblivious chase did not terminate within {max_levels} levels",
            partial_result=result,
        )
    return result
