"""Chase budgets: default guard rails, honest budget selection, growth.

This module is the single home of the library's default chase budgets —
the variant modules used to define them ad hoc (restricted and
semi-oblivious imported theirs from a sibling variant) and now re-export
them from here — plus helpers that pick honest level budgets for corpus
rule sets (using the termination certificates of
:mod:`repro.rules.acyclicity`) and measure the per-level growth curves
reported by the performance experiments.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.logic.instances import Instance
from repro.rules.acyclicity import chase_terminates_certificate, stratification
from repro.rules.ruleset import RuleSet

#: Default guard rails; generous for the library's laptop-scale corpora.
#: The level budget bounds the synchronous variants (oblivious and
#: semi-oblivious), the round budget bounds the restricted chase, and the
#: atom budget bounds all of them mid-round.
DEFAULT_MAX_LEVELS = 6
DEFAULT_MAX_ATOMS = 200_000
DEFAULT_MAX_ROUNDS = 50

#: Rewriting budgets (the UCQ piece-rewriter's guard rails): the breadth
#: depth of the rewriting fixpoint loop, the total disjunct cap of the
#: accumulated UCQ, and the per-CQ atom-count cap.  Defined here — next to
#: the chase budgets they mirror — so :func:`repro.serving.answer` and the
#: rewriter entry points share one keyword surface; the rewriter module
#: re-exports them under its historical names.
DEFAULT_MAX_REWRITE_DEPTH = 12
DEFAULT_MAX_DISJUNCTS = 4_000
DEFAULT_MAX_CQ_SIZE = 24


def suggested_level_budget(rules: RuleSet, default: int = 6) -> int:
    """Pick a level budget that is exact for terminating rule sets.

    Non-recursive rule sets reach their fixpoint within one level per
    predicate stratum (plus one to detect the fixpoint); everything else
    gets ``default``.
    """
    certificate = chase_terminates_certificate(rules)
    if certificate == "datalog":
        # Datalog saturation can still take many levels; scale with rules.
        return max(default, len(rules) + 2)
    if certificate == "non-recursive":
        return len(stratification(rules)) + 1
    return default


@dataclass(frozen=True)
class GrowthPoint:
    """One point of a chase growth curve."""

    level: int
    atoms: int
    terms: int


def growth_curve(
    instance: Instance, rules: RuleSet, max_levels: int
) -> list[GrowthPoint]:
    """Return (level, #atoms, #terms) for each completed chase level."""
    # Deferred import: the variant modules import their default budgets
    # from this module.
    from repro.chase.oblivious import oblivious_chase

    result = oblivious_chase(instance, rules, max_levels=max_levels)
    points = []
    for level in range(result.levels_completed + 1):
        prefix = result.prefix(level)
        points.append(
            GrowthPoint(
                level=level,
                atoms=len(prefix),
                terms=len(prefix.active_domain()),
            )
        )
    return points
