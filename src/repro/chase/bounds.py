"""Step-budget selection and chase growth measurement.

Helpers that pick honest level budgets for corpus rule sets (using the
termination certificates of :mod:`repro.rules.acyclicity`) and measure the
per-level growth curves reported by the performance experiments.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.logic.instances import Instance
from repro.rules.acyclicity import chase_terminates_certificate, stratification
from repro.rules.ruleset import RuleSet
from repro.chase.oblivious import oblivious_chase


def suggested_level_budget(rules: RuleSet, default: int = 6) -> int:
    """Pick a level budget that is exact for terminating rule sets.

    Non-recursive rule sets reach their fixpoint within one level per
    predicate stratum (plus one to detect the fixpoint); everything else
    gets ``default``.
    """
    certificate = chase_terminates_certificate(rules)
    if certificate == "datalog":
        # Datalog saturation can still take many levels; scale with rules.
        return max(default, len(rules) + 2)
    if certificate == "non-recursive":
        return len(stratification(rules)) + 1
    return default


@dataclass(frozen=True)
class GrowthPoint:
    """One point of a chase growth curve."""

    level: int
    atoms: int
    terms: int


def growth_curve(
    instance: Instance, rules: RuleSet, max_levels: int
) -> list[GrowthPoint]:
    """Return (level, #atoms, #terms) for each completed chase level."""
    result = oblivious_chase(instance, rules, max_levels=max_levels)
    points = []
    for level in range(result.levels_completed + 1):
        prefix = result.prefix(level)
        points.append(
            GrowthPoint(
                level=level,
                atoms=len(prefix),
                terms=len(prefix.active_domain()),
            )
        )
    return points
