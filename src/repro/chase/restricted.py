"""The restricted (standard) chase: a trigger fires only when unsatisfied.

The paper works with the oblivious chase throughout; the restricted chase
is provided as the practical baseline a downstream user would expect from a
chase library — it produces smaller universal models and terminates in more
cases, at the cost of the clean level/timestamp structure of the oblivious
variant.

The saturation loop lives in :class:`repro.engine.runner.ChaseRunner`;
this module only declares the restricted strategy: each round considers
the triggers that are new with respect to the previous round's additions
(round 0 considers everything) in canonical order and applies those whose
head is not already satisfied, with round accounting (a round that applies
nothing is a fixpoint) and no post-budget probe.

Satisfaction gating is *delta-driven* where possible.  Any round
containing existential-free triggers — pure or **mixed** with an
existential remainder — is a *split* round: the existential-free
triggers' outputs are fully determined by their body homomorphisms, so
their ground heads are instantiated up front (on a persistent backend,
sharded across the worker replicas via the ``probe`` protocol command,
which also pre-resolves each head's round-start witnesses), and the
round then records through one canonical-order lazy pass that gates each
probed trigger by witness membership and interleaves only the
existential remainder's satisfaction checks — through the index-seeded
fast path (:meth:`~repro.chase.trigger.Trigger.is_satisfied_using_index`)
against the instance as it grows.  Rounds whose triggers are all
existential keep the fully interleaved loop.  Every path is
bit-identical to the interleaved reference.  ``engine="delta"``
(default) enumerates new triggers semi-naively, ``engine="naive"``
re-matches everything and subtracts the seen set, and
``engine="parallel"`` / ``engine="persistent"`` fan the enumeration (and,
for split rounds, the probing/firing) over the sharded scheduler — all
fire identically.
"""

from __future__ import annotations

from repro.engine.config import EngineConfig
from repro.engine.runner import ChaseRunner, RoundPlan, VariantPolicy
from repro.obs.trace import RunTrace
from repro.logic.instances import Instance
from repro.logic.terms import FreshSupply
from repro.rules.ruleset import RuleSet
# Re-exported for compatibility: the default budgets now live in
# repro.chase.bounds.
from repro.chase.bounds import (
    DEFAULT_MAX_ATOMS as DEFAULT_MAX_ATOMS,
    DEFAULT_MAX_ROUNDS as DEFAULT_MAX_ROUNDS,
)
from repro.chase.result import ChaseResult
from repro.chase.trigger import Trigger, naive_new_triggers_of


class RestrictedPolicy(VariantPolicy):
    """Fire only unsatisfied triggers, round by round.

    Round accounting: the fixpoint is a round that applies nothing (atoms
    produced mid-round feed the *next* round's delta), there is no
    post-budget probe, and the naive engine's seen set is full trigger
    identity.  ``delta_satisfaction=False`` forces every round onto the
    interleaved reference path (the pre-runner behavior, kept for the
    equivalence suite and the EXP-15 ablation).
    """

    variant = "restricted chase"
    supply_prefix = "_r"
    stop_on_empty_round = False
    stop_on_idle_round = True
    probe_fixpoint = False
    step_noun = "rounds"

    def __init__(self, delta_satisfaction: bool = True):
        self._seen: set[Trigger] = set()
        self.delta_satisfaction = delta_satisfaction

    def naive_new_triggers(self, instance, rules):
        new_triggers = naive_new_triggers_of(instance, rules, self._seen)
        self._seen.update(new_triggers)
        return new_triggers

    def plan_round(self, result, triggers):
        instance = result.instance
        if self.delta_satisfaction and any(
            not t.rule.existential_order() for t in triggers
        ):
            # Split round: the existential-free triggers' ground heads
            # are their own satisfaction witnesses, so they instantiate
            # up front (sharded across worker replicas on a persistent
            # backend) while the claims — witness membership for them,
            # the satisfaction check for the existential remainder —
            # resolve lazily inside one canonical-order recording pass
            # (see repro.engine.batch and RoundScheduler.fire_split_round).
            return RoundPlan(claim=None, interleaved=False, split=True)

        def unsatisfied(trigger: Trigger) -> bool:
            # Satisfaction reads the instance as it grows mid-round, so
            # an all-existential round's firing stays interleaved (see
            # engine.batch).
            return not trigger.is_satisfied_using_index(instance)

        return RoundPlan(claim=unsatisfied, interleaved=True)


def restricted_chase(
    instance: Instance,
    rules: RuleSet,
    max_rounds: int = DEFAULT_MAX_ROUNDS,
    max_atoms: int = DEFAULT_MAX_ATOMS,
    strict: bool = False,
    supply: FreshSupply | None = None,
    engine: str | EngineConfig = "delta",
    delta_satisfaction: bool = True,
    trace: RunTrace | None = None,
) -> ChaseResult:
    """Run the restricted chase: apply unsatisfied triggers round by round.

    A round that applies nothing is a fixpoint (no atoms were added, so no
    trigger can become applicable later).

    ``delta_satisfaction`` (default True) lets rounds containing
    existential-free triggers — pure or mixed with an existential
    remainder — run as *split* rounds: ground heads instantiated up
    front (worker-side, sharded, on a persistent backend) and claims
    resolved lazily in one amortized recording pass; ``False`` forces
    the always-interleaved reference loop.  Both produce bit-identical
    results — the flag exists for the equivalence suite and the
    EXP-15/EXP-16 ablations.
    """
    runner = ChaseRunner(
        RestrictedPolicy(delta_satisfaction=delta_satisfaction),
        engine,
        max_steps=max_rounds,
        max_atoms=max_atoms,
        strict=strict,
        supply=supply,
        trace=trace,
    )
    return runner.run(instance, rules)
