"""The restricted (standard) chase: a trigger fires only when unsatisfied.

The paper works with the oblivious chase throughout; the restricted chase
is provided as the practical baseline a downstream user would expect from a
chase library — it produces smaller universal models and terminates in more
cases, at the cost of the clean level/timestamp structure of the oblivious
variant.

The saturation loop lives in :class:`repro.engine.runner.ChaseRunner`;
this module only declares the restricted strategy: each round considers
the triggers that are new with respect to the previous round's additions
(round 0 considers everything) in canonical order and applies those whose
head is not already satisfied, with round accounting (a round that applies
nothing is a fixpoint) and no post-budget probe.

Satisfaction gating is *delta-driven* where possible.  When every trigger
of a round has an existential-free rule head, the outputs of the claimed
triggers are fully determined by their body homomorphisms, so the policy
tracks the round's satisfaction witnesses incrementally in a
positional-indexed overlay instance and gates each trigger against
``instance ∪ overlay`` — no mid-round recording needed.  Those rounds take
the **batched firing path** (and fan head instantiation out across sharding
backends such as the persistent worker pool), bit-identically to the
interleaved reference.  Rounds containing an existential trigger keep the
interleaved loop: their claims must observe the fresh nulls recorded
mid-round, through the index-seeded fast path
(:meth:`~repro.chase.trigger.Trigger.is_satisfied_using_index`).
``engine="delta"`` (default) enumerates new triggers semi-naively,
``engine="naive"`` re-matches everything and subtracts the seen set, and
``engine="parallel"`` / ``engine="persistent"`` fan the enumeration (and,
for existential-free rounds, the firing) over the sharded scheduler — all
fire identically.
"""

from __future__ import annotations

from repro.engine.config import EngineConfig
from repro.engine.runner import ChaseRunner, RoundPlan, VariantPolicy
from repro.logic.instances import Instance
from repro.logic.terms import FreshSupply
from repro.rules.ruleset import RuleSet
# Re-exported for compatibility: the default budgets now live in
# repro.chase.bounds.
from repro.chase.bounds import (
    DEFAULT_MAX_ATOMS as DEFAULT_MAX_ATOMS,
    DEFAULT_MAX_ROUNDS as DEFAULT_MAX_ROUNDS,
)
from repro.chase.result import ChaseResult
from repro.chase.trigger import Trigger, naive_new_triggers_of


class RestrictedPolicy(VariantPolicy):
    """Fire only unsatisfied triggers, round by round.

    Round accounting: the fixpoint is a round that applies nothing (atoms
    produced mid-round feed the *next* round's delta), there is no
    post-budget probe, and the naive engine's seen set is full trigger
    identity.  ``delta_satisfaction=False`` forces every round onto the
    interleaved reference path (the pre-runner behavior, kept for the
    equivalence suite and the EXP-15 ablation).
    """

    variant = "restricted chase"
    supply_prefix = "_r"
    stop_on_empty_round = False
    stop_on_idle_round = True
    probe_fixpoint = False
    step_noun = "rounds"

    def __init__(self, delta_satisfaction: bool = True):
        self._seen: set[Trigger] = set()
        self.delta_satisfaction = delta_satisfaction

    def naive_new_triggers(self, instance, rules):
        new_triggers = naive_new_triggers_of(instance, rules, self._seen)
        self._seen.update(new_triggers)
        return new_triggers

    def plan_round(self, result, triggers):
        instance = result.instance
        if self.delta_satisfaction and all(
            not t.rule.existential_order() for t in triggers
        ):
            return RoundPlan(
                claim=_delta_satisfaction_gate(instance), interleaved=False
            )

        def unsatisfied(trigger: Trigger) -> bool:
            # Satisfaction reads the instance as it grows mid-round, so
            # this round's firing stays interleaved (see engine.batch).
            return not trigger.is_satisfied_using_index(instance)

        return RoundPlan(claim=unsatisfied, interleaved=True)


def _delta_satisfaction_gate(instance: Instance):
    """The batched-round claim: satisfaction against instance ∪ overlay.

    For existential-free heads the body homomorphism grounds the whole
    head, so satisfaction against the chase instance is a positional-index
    membership probe per head atom, and the witnesses a claimed trigger
    will add are exactly its head image.  The overlay (a plain atom set —
    membership is the only question ground heads ever ask of it)
    accumulates those witnesses in canonical claim order, which makes the
    gate independent of mid-round recording — the whole round can then
    fire through the batched (and sharded) path, bit-identically to the
    interleaved reference.
    """
    overlay: set = set()

    def claim(trigger: Trigger) -> bool:
        head_atoms = trigger.rule.instantiate_head(trigger.mapping)
        if all(a in instance or a in overlay for a in head_atoms):
            return False
        overlay.update(head_atoms)
        # The head image is the trigger's full output (no existentials);
        # park it so the firing pass does not instantiate it again.
        trigger._ground_output = head_atoms
        return True

    return claim


def restricted_chase(
    instance: Instance,
    rules: RuleSet,
    max_rounds: int = DEFAULT_MAX_ROUNDS,
    max_atoms: int = DEFAULT_MAX_ATOMS,
    strict: bool = False,
    supply: FreshSupply | None = None,
    engine: str | EngineConfig = "delta",
    delta_satisfaction: bool = True,
) -> ChaseResult:
    """Run the restricted chase: apply unsatisfied triggers round by round.

    A round that applies nothing is a fixpoint (no atoms were added, so no
    trigger can become applicable later).

    ``delta_satisfaction`` (default True) lets rounds whose triggers all
    have existential-free rule heads run the satisfaction gate against a
    per-round witness overlay and fire through the batched/sharded path;
    ``False`` forces the always-interleaved reference loop.  Both produce
    bit-identical results — the flag exists for the equivalence suite and
    the EXP-15 ablation.
    """
    runner = ChaseRunner(
        RestrictedPolicy(delta_satisfaction=delta_satisfaction),
        engine,
        max_steps=max_rounds,
        max_atoms=max_atoms,
        strict=strict,
        supply=supply,
    )
    return runner.run(instance, rules)
