"""The restricted (standard) chase: a trigger fires only when unsatisfied.

The paper works with the oblivious chase throughout; the restricted chase
is provided as the practical baseline a downstream user would expect from a
chase library — it produces smaller universal models and terminates in more
cases, at the cost of the clean level/timestamp structure of the oblivious
variant.

Each round considers the triggers that are new with respect to the
previous round's additions (round 0 considers everything) in canonical
order, and applies those whose head is not already satisfied — checking
satisfaction against the instance as it grows within the round.  Atoms
produced mid-round feed the *next* round's delta.  ``engine="delta"``
(default) enumerates new triggers semi-naively; ``engine="naive"``
re-matches everything and subtracts the seen set — both fire identically.
"""

from __future__ import annotations

from repro.errors import ChaseBudgetExceeded
from repro.logic.instances import Instance
from repro.logic.terms import FreshSupply
from repro.rules.ruleset import RuleSet
from repro.chase.oblivious import DEFAULT_MAX_ATOMS, _check_engine
from repro.chase.result import ChaseResult
from repro.chase.trigger import (
    Trigger,
    naive_new_triggers_of,
    new_triggers_of,
)

DEFAULT_MAX_ROUNDS = 50


def restricted_chase(
    instance: Instance,
    rules: RuleSet,
    max_rounds: int = DEFAULT_MAX_ROUNDS,
    max_atoms: int = DEFAULT_MAX_ATOMS,
    strict: bool = False,
    supply: FreshSupply | None = None,
    engine: str = "delta",
) -> ChaseResult:
    """Run the restricted chase: apply unsatisfied triggers round by round.

    A round that applies nothing is a fixpoint (no atoms were added, so no
    trigger can become applicable later).
    """
    _check_engine(engine)
    supply = supply or FreshSupply(prefix="_r")
    result = ChaseResult(instance)
    seen: set[Trigger] | None = set() if engine == "naive" else None
    seen_revision = 0

    for round_index in range(max_rounds):
        if seen is None:
            delta = result.instance.delta_since(seen_revision)
            seen_revision = result.instance.revision
            new_triggers = list(
                new_triggers_of(result.instance, rules, delta)
            )
        else:
            new_triggers = naive_new_triggers_of(
                result.instance, rules, seen
            )
        applied_any = False
        for trigger in new_triggers:
            if seen is not None:
                seen.add(trigger)
            if trigger.is_satisfied_in(result.instance):
                continue
            output_atoms, existential_map = trigger.output(supply)
            result.record_application(
                trigger,
                level=round_index + 1,
                created_nulls=existential_map.values(),
                output_atoms=output_atoms,
            )
            applied_any = True
            if len(result.instance) > max_atoms:
                result.levels_completed = round_index
                if strict:
                    raise ChaseBudgetExceeded(
                        f"restricted chase exceeded {max_atoms} atoms",
                        partial_result=result,
                    )
                return result
        result.levels_completed = round_index + 1
        if not applied_any:
            result.terminated = True
            return result

    if strict:
        raise ChaseBudgetExceeded(
            f"restricted chase did not terminate within {max_rounds} rounds",
            partial_result=result,
        )
    return result
