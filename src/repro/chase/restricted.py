"""The restricted (standard) chase: a trigger fires only when unsatisfied.

The paper works with the oblivious chase throughout; the restricted chase
is provided as the practical baseline a downstream user would expect from a
chase library — it produces smaller universal models and terminates in more
cases, at the cost of the clean level/timestamp structure of the oblivious
variant.

Each round considers the triggers that are new with respect to the
previous round's additions (round 0 considers everything) in canonical
order, and applies those whose head is not already satisfied — checking
satisfaction against the instance as it grows within the round, through
the index-seeded fast path
(:meth:`~repro.chase.trigger.Trigger.is_satisfied_using_index`): Datalog
heads by membership, single-atom heads straight from the positional-index
bucket of the frontier image, instead of a full matcher run per trigger.
Atoms produced mid-round feed the *next* round's delta.  ``engine="delta"``
(default) enumerates new triggers semi-naively, ``engine="naive"``
re-matches everything and subtracts the seen set, and ``engine="parallel"``
/ ``engine="persistent"`` fan the enumeration over the sharded scheduler
(persistent workers sync their replicas from the same per-round deltas) —
all fire identically.  Firing itself always stays interleaved here: the
satisfaction claim reads the instance as it grows within the round, so
the sharded firing path of the other variants does not apply.
"""

from __future__ import annotations

from repro.engine.batch import fire_round
from repro.engine.config import EngineConfig, resolve_engine
from repro.engine.scheduler import RoundScheduler
from repro.errors import ChaseBudgetExceeded
from repro.logic.instances import Instance
from repro.logic.terms import FreshSupply
from repro.rules.ruleset import RuleSet
from repro.chase.oblivious import DEFAULT_MAX_ATOMS
from repro.chase.result import ChaseResult
from repro.chase.trigger import (
    Trigger,
    naive_new_triggers_of,
    new_triggers_of,
    parallel_new_triggers_of,
)

DEFAULT_MAX_ROUNDS = 50


def restricted_chase(
    instance: Instance,
    rules: RuleSet,
    max_rounds: int = DEFAULT_MAX_ROUNDS,
    max_atoms: int = DEFAULT_MAX_ATOMS,
    strict: bool = False,
    supply: FreshSupply | None = None,
    engine: str | EngineConfig = "delta",
) -> ChaseResult:
    """Run the restricted chase: apply unsatisfied triggers round by round.

    A round that applies nothing is a fixpoint (no atoms were added, so no
    trigger can become applicable later).
    """
    config = resolve_engine(engine)
    supply = supply or FreshSupply(prefix="_r")
    result = ChaseResult(instance)
    seen: set[Trigger] | None = set() if config.is_naive else None
    seen_revision = 0
    scheduler = RoundScheduler(config) if config.is_parallel else None

    def unsatisfied(trigger: Trigger) -> bool:
        # Satisfaction is checked against the growing instance, so the
        # firing pass must stay interleaved (see engine.batch).
        return not trigger.is_satisfied_using_index(result.instance)

    try:
        for round_index in range(max_rounds):
            if seen is not None:
                new_triggers = naive_new_triggers_of(
                    result.instance, rules, seen
                )
                seen.update(new_triggers)
            else:
                delta = result.instance.delta_since(seen_revision)
                seen_revision = result.instance.revision
                if scheduler is not None:
                    new_triggers = parallel_new_triggers_of(
                        result.instance, rules, delta, scheduler
                    )
                else:
                    new_triggers = list(
                        new_triggers_of(result.instance, rules, delta)
                    )
            outcome = fire_round(
                result,
                new_triggers,
                supply,
                level=round_index + 1,
                max_atoms=max_atoms,
                claim=unsatisfied,
                interleaved=True,
            )
            if outcome.budget_exceeded:
                result.levels_completed = round_index
                if strict:
                    raise ChaseBudgetExceeded(
                        f"restricted chase exceeded {max_atoms} atoms",
                        partial_result=result,
                    )
                return result
            result.levels_completed = round_index + 1
            if not outcome.applied:
                result.terminated = True
                return result
    finally:
        if scheduler is not None:
            scheduler.close()

    if strict:
        raise ChaseBudgetExceeded(
            f"restricted chase did not terminate within {max_rounds} rounds",
            partial_result=result,
        )
    return result
