"""Chase results: the produced instance plus timestamps and provenance.

The Section 5 machinery needs more than the final atom set:

* ``TS(t)`` — the timestamp of a chase term (Definition 34): the first
  chase level at which ``t`` appears;
* the *frontier* of a chase term — ``h(fr(ρ))`` for the trigger that
  created it (Section 2.2);
* the creating trigger itself (used by the executable peak-removing
  argument, Lemma 40).

:class:`ChaseResult` records all of this, exposes the level-indexed
prefixes ``Ch_k`` and timestamp multisets ``TS_m``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Iterable

from repro.datastructures.multiset import Multiset
from repro.obs.trace import active_round
from repro.errors import ProvenanceError
from repro.logic.atoms import Atom
from repro.logic.instances import Instance
from repro.logic.terms import Null, Term
from repro.chase.trigger import Trigger


@dataclass(frozen=True)
class CreationRecord:
    """Provenance of one trigger application."""

    trigger: Trigger
    level: int
    created_nulls: tuple[Null, ...]
    output_atoms: frozenset[Atom]

    def frontier_terms(self) -> set[Term]:
        """The frontier of every null this application created: ``h(fr(ρ))``."""
        return set(self.trigger.frontier_image().values())


class ChaseResult:
    """The (possibly partial) result of a chase run.

    Attributes
    ----------
    instance:
        All atoms produced up to the last completed level.
    levels_completed:
        The largest ``k`` such that this result contains ``Ch_k`` exactly.
    terminated:
        True when the chase reached a fixpoint (no new triggers), i.e. the
        result is the full ``Ch(I, R)``.
    stopped_on_goal:
        True when the run ended early because the policy's
        ``round_complete`` hook reported its goal witnessed (the serving
        layer's goal-directed entailment).  The instance is then a sound
        chase prefix — ``terminated`` stays False unless the goal round
        happened to also be the fixpoint.
    telemetry:
        ``None`` unless the run was executed by a
        :class:`~repro.engine.runner.ChaseRunner`, which attaches a
        telemetry snapshot: the schema version plus the
        :func:`repro.obs.default_registry` counter deltas scoped to the
        run (see :mod:`repro.obs`).
    """

    def __init__(self, initial: Instance):
        self.instance: Instance = initial.copy()
        self.levels_completed: int = 0
        self.terminated: bool = False
        self.stopped_on_goal: bool = False
        self.telemetry: dict | None = None
        self._atom_level: dict[Atom, int] = {a: 0 for a in initial}
        self._term_timestamp: dict[Term, int] = {
            t: 0 for t in initial.active_domain()
        }
        self._creation: dict[Null, CreationRecord] = {}
        self._records: list[CreationRecord] = []
        self._initial_domain: frozenset[Term] = frozenset(
            initial.active_domain()
        )

    # ------------------------------------------------------------------
    # Recording (used by the chase engines)
    # ------------------------------------------------------------------

    def record_application(
        self,
        trigger: Trigger,
        level: int,
        created_nulls: Iterable[Null],
        output_atoms: Iterable[Atom],
    ) -> int:
        """Record one trigger application; return the number of new atoms."""
        atoms = frozenset(output_atoms)
        record = CreationRecord(
            trigger=trigger,
            level=level,
            created_nulls=tuple(sorted(created_nulls)),
            output_atoms=atoms,
        )
        self._records.append(record)
        new_count = 0
        for null in record.created_nulls:
            self._creation[null] = record
            self._term_timestamp.setdefault(null, level)
        for atom in atoms:
            if self.instance.add(atom):
                new_count += 1
                self._atom_level[atom] = level
                for term in atom.args:
                    self._term_timestamp.setdefault(term, level)
        return new_count

    def record_round(
        self,
        applications: Iterable[tuple],
        level: int,
        max_atoms: int,
    ) -> tuple[int, bool]:
        """Record a whole round of applications in one amortized pass.

        ``applications`` yields
        ``(trigger, (output_atoms, existential_map))`` pairs in canonical
        firing order, as produced by :func:`repro.engine.batch.fire_round`
        and the sharded :meth:`RoundScheduler.fire_round
        <repro.engine.scheduler.RoundScheduler.fire_round>` — the two
        recording paths of every :class:`~repro.engine.runner.ChaseRunner`
        round that is not interleaved.
        Equivalent to calling :meth:`record_application` per pair with a
        budget check after each one — the provenance structures are simply
        bound once per round instead of once per application.  Returns
        ``(applications_recorded, budget_exceeded)``; on a budget hit the
        iterable is not pulled further, so lazily instantiated outputs
        (and their fresh nulls) stop exactly where the sequential engines
        stop.

        While a round is traced (:func:`repro.obs.trace.active_round`),
        the recording body of each pair is timed into the round's
        ``record`` phase; pulling the lazy stream — claims and head
        instantiation — stays outside the timer and lands on the phases
        the producer attributes (``gate``) or the outer ``fire`` phase.
        """
        recorder = active_round()
        if recorder is not None:
            return self._record_round_traced(
                applications, level, max_atoms, recorder
            )
        records = self._records
        creation = self._creation
        timestamps = self._term_timestamp
        atom_level = self._atom_level
        instance = self.instance
        add = instance.add
        applied = 0
        for trigger, (output_atoms, existential_map) in applications:
            atoms = frozenset(output_atoms)
            record = CreationRecord(
                trigger=trigger,
                level=level,
                created_nulls=tuple(sorted(existential_map.values())),
                output_atoms=atoms,
            )
            records.append(record)
            for null in record.created_nulls:
                creation[null] = record
                timestamps.setdefault(null, level)
            for atom in atoms:
                if add(atom):
                    atom_level[atom] = level
                    for term in atom.args:
                        timestamps.setdefault(term, level)
            applied += 1
            if len(instance) > max_atoms:
                return applied, True
        return applied, False

    def _record_round_traced(
        self,
        applications: Iterable[tuple],
        level: int,
        max_atoms: int,
        recorder,
    ) -> tuple[int, bool]:
        """:meth:`record_round` with the recording body timed per pair.

        Semantically identical — same canonical order, same lazy pulls,
        same budget stop — but each pair's provenance/instance update is
        measured into the ``record`` phase.  The ``next()`` pull itself
        (claim + instantiation work in the generator) is deliberately
        left untimed here.
        """
        perf = time.perf_counter
        add_phase = recorder.add_phase
        records = self._records
        creation = self._creation
        timestamps = self._term_timestamp
        atom_level = self._atom_level
        instance = self.instance
        add = instance.add
        applied = 0
        stream = iter(applications)
        while True:
            try:
                trigger, (output_atoms, existential_map) = next(stream)
            except StopIteration:
                return applied, False
            start = perf()
            atoms = frozenset(output_atoms)
            record = CreationRecord(
                trigger=trigger,
                level=level,
                created_nulls=tuple(sorted(existential_map.values())),
                output_atoms=atoms,
            )
            records.append(record)
            for null in record.created_nulls:
                creation[null] = record
                timestamps.setdefault(null, level)
            for atom in atoms:
                if add(atom):
                    atom_level[atom] = level
                    for term in atom.args:
                        timestamps.setdefault(term, level)
            applied += 1
            exceeded = len(instance) > max_atoms
            add_phase("record", perf() - start)
            if exceeded:
                return applied, True

    # ------------------------------------------------------------------
    # Timestamps (Definition 34)
    # ------------------------------------------------------------------

    def timestamp(self, term: Term) -> int:
        """``TS(t)``: the first level at which ``t`` appears."""
        try:
            return self._term_timestamp[term]
        except KeyError:
            raise ProvenanceError(f"term {term} never appeared in this chase")

    def timestamp_multiset(self, terms: Iterable[Term]) -> Multiset[int]:
        """``TS_m(T)``: the multiset of timestamps of ``terms``."""
        return Multiset(self.timestamp(t) for t in terms)

    def atoms_timestamp_multiset(self, atoms: Iterable[Atom]) -> Multiset[int]:
        """``TS_m`` over the active domain of an atom set."""
        domain: set[Term] = set()
        for atom in atoms:
            domain.update(atom.args)
        return self.timestamp_multiset(domain)

    def atom_level(self, atom: Atom) -> int:
        """The level at which ``atom`` first appeared."""
        try:
            return self._atom_level[atom]
        except KeyError:
            raise ProvenanceError(f"atom {atom} never appeared in this chase")

    # ------------------------------------------------------------------
    # Provenance
    # ------------------------------------------------------------------

    def is_chase_term(self, term: Term) -> bool:
        """True for terms created by the chase (not in the initial adom)."""
        return term in self._term_timestamp and term not in self._initial_domain

    def creation_of(self, term: Term) -> CreationRecord:
        """The trigger application that created ``term``."""
        if not isinstance(term, Null) or term not in self._creation:
            raise ProvenanceError(f"{term} is not a chase-created term")
        return self._creation[term]

    def frontier_of(self, term: Term) -> set[Term]:
        """The frontier of a chase term: ``h(fr(ρ))`` of its creator."""
        return self.creation_of(term).frontier_terms()

    def records(self) -> tuple[CreationRecord, ...]:
        """All trigger applications in order."""
        return tuple(self._records)

    # ------------------------------------------------------------------
    # Level-indexed views
    # ------------------------------------------------------------------

    def prefix(self, level: int) -> Instance:
        """Return ``Ch_level``: the atoms that appeared at level ≤ ``level``."""
        return Instance(
            (a for a, l in self._atom_level.items() if l <= level),
            add_top=False,
        )

    def new_atoms_at(self, level: int) -> set[Atom]:
        """The atoms first appearing exactly at ``level``."""
        return {a for a, l in self._atom_level.items() if l == level}

    def chase_terms(self) -> set[Term]:
        """All terms created by the chase (Definition: adom(Ch) \\ adom(I))."""
        return {
            t
            for t in self._term_timestamp
            if t not in self._initial_domain
        }

    def statistics(self) -> dict[str, int]:
        """Summary counters for reporting."""
        return {
            "atoms": len(self.instance),
            "terms": len(self._term_timestamp),
            "chase_terms": len(self.chase_terms()),
            "levels": self.levels_completed,
            "trigger_applications": len(self._records),
        }
