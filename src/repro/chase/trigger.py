"""Triggers: applicable rule instances over an instance (Section 2.2).

A trigger is a pair ``⟨ρ, h⟩`` of a rule and a homomorphism from its body
into an instance.  The *output* of a trigger extends ``h`` by mapping each
existential variable to a fresh null and instantiates the head.

Besides the full enumeration ``triggers_of(I, R)`` the module provides the
semi-naive ``new_triggers_of(I, R, Δ)``: only triggers whose body image
uses at least one atom of the delta ``Δ`` — exactly the triggers that are
*new* at a chase level when ``Δ`` is the set of atoms the previous level
produced (the paper's ``Ch_{n+1}`` is built from triggers new at level
``n``, so this is the definition computed literally instead of by
re-matching everything and discarding the already-fired majority).
"""

from __future__ import annotations

from typing import Iterable, Iterator

from repro.engine.core import as_delta_instance, rule_delta_images
from repro.logic.atoms import Atom
from repro.logic.homomorphisms import (
    MATCHER_STATS,
    _candidates,
    _match_atom,
    homomorphisms,
)
from repro.logic.instances import Instance
from repro.logic.substitutions import Substitution
from repro.logic.terms import FreshSupply, Null, Term
from repro.rules.rule import Rule
from repro.rules.ruleset import RuleSet


class Trigger:
    """A rule paired with a homomorphism from its body into some instance.

    Two triggers are equal when they share the rule and agree on the body
    variables — the identity used by the oblivious chase to fire each
    trigger exactly once.  The identity key is derived lazily from the
    rule's canonical body-variable order, so constructing a trigger does
    not sort anything.
    """

    __slots__ = ("rule", "mapping", "_image", "_ground_output")

    def __init__(self, rule: Rule, mapping: Substitution):
        self.rule = rule
        self.mapping = mapping.restrict(rule.body_variables())
        self._image: tuple[Term, ...] | None = None
        # For existential-free rules the output is fully determined by the
        # mapping; a claim gate that already instantiated the head (a
        # custom policy's pre-computing gate) may park it here, and both
        # :meth:`output` and the sharded firing path reuse the parked
        # atoms instead of instantiating a second time.
        self._ground_output: set[Atom] | None = None

    def image(self) -> tuple[Term, ...]:
        """``h(x̄)`` along the rule's canonical body-variable order.

        Together with the rule this is the trigger's identity; it also
        serves as the deterministic sort key among triggers of one rule.
        """
        cached = self._image
        if cached is None:
            apply = self.mapping.apply_term
            cached = tuple(
                apply(v) for v in self.rule.body_variable_order()
            )
            self._image = cached
        return cached

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, Trigger)
            and self.rule == other.rule
            and self.image() == other.image()
        )

    def __hash__(self) -> int:
        return hash((self.rule, self.image()))

    def __repr__(self) -> str:
        return f"Trigger({self.rule!s}, {self.mapping!r})"

    def frontier_image(self) -> dict:
        """Return ``h(fr(ρ))`` as a mapping frontier variable -> term."""
        return {
            v: self.mapping.apply_term(v) for v in self.rule.frontier()
        }

    def output(
        self, supply: FreshSupply
    ) -> tuple[set[Atom], dict[Term, Null]]:
        """Instantiate the head with fresh nulls for existential variables.

        Returns the produced atoms and the existential-variable-to-null
        mapping used.
        """
        rule = self.rule
        existential = rule.existential_order()
        if not existential:
            cached = self._ground_output
            if cached is not None:
                return cached, {}
            return rule.instantiate_head(self.mapping), {}
        existential_map: dict[Term, Null] = {
            v: supply.null() for v in existential
        }
        return rule.instantiate_head(self.mapping, existential_map), existential_map

    def is_satisfied_in(self, instance: Instance) -> bool:
        """True when ``h`` extends to a homomorphism of the head into
        ``instance`` — the restricted-chase applicability test."""
        seed = {
            v: self.mapping.apply_term(v)
            for v in self.rule.frontier()
        }
        for _ in homomorphisms(self.rule.head, instance, seed=seed):
            return True
        return False

    def is_satisfied_using_index(self, instance: Instance) -> bool:
        """Index-seeded variant of :meth:`is_satisfied_in` (same boolean).

        The restricted chase runs this once per new existential trigger —
        on its all-existential interleaved rounds and for the existential
        remainder of its split rounds (whose existential-free triggers
        are instead instantiated and probed up front, worker-side on a
        replica backend — see :mod:`repro.chase.restricted`), so the
        generic matcher's per-call setup dominated; the fast paths cut
        it:

        * Datalog rule — the body homomorphism grounds the whole head, so
          satisfaction is plain set membership per head atom.
        * single-atom head — candidates come straight from the most
          selective positional-index bucket of the frontier image and are
          pattern-checked in place (exactly the matcher's ``_match_atom``,
          minus the search-frame and substitution machinery).
        * multi-atom head — the seeded backtracking matcher, as before.
        """
        rule = self.rule
        mapping = self.mapping
        if not rule.existential_order():
            return all(a in instance for a in mapping.apply_atoms(rule.head))
        head = rule.head
        if len(head) == 1:
            (head_atom,) = head
            seed = {
                v: mapping.apply_term(v) for v in rule.frontier()
            }
            stats = MATCHER_STATS
            stats.searches += 1
            for candidate in _candidates(head_atom, instance, seed):
                stats.candidates += 1
                binding = dict(seed)
                if _match_atom(head_atom, candidate, binding, None) is not None:
                    return True
            return False
        return self.is_satisfied_in(instance)


def triggers_of(
    instance: Instance, rules: RuleSet | list[Rule]
) -> Iterator[Trigger]:
    """Enumerate ``triggers(I, R)``: all rule/body-homomorphism pairs.

    Deterministic: rules in rule-set order, homomorphisms in index order.
    """
    for rule in rules:
        for hom in homomorphisms(rule.body, instance):
            yield Trigger(rule, hom)


def _trigger_with_image(
    rule: Rule, hom: Substitution, image: tuple[Term, ...]
) -> Trigger:
    """Build a trigger whose canonical image is already known."""
    trigger = Trigger(rule, hom)
    trigger._image = image
    return trigger


def new_triggers_of(
    instance: Instance,
    rules: RuleSet | list[Rule],
    delta: Iterable[Atom] | Instance,
) -> Iterator[Trigger]:
    """Enumerate the triggers using at least one atom of ``delta``.

    Pivot-atom decomposition via the shared delta core
    (:mod:`repro.engine.core`): for each rule and each body atom, that
    atom is matched against the delta only while the remaining atoms match
    the full instance; a homomorphism touching ``k`` delta atoms is found
    by ``k`` pivots, so duplicates are keyed out on the trigger image.

    Deterministic: rules in rule-set order, then triggers of each rule
    sorted by their body-variable image.  The chase engines rely on this
    canonical order being *independent of how the triggers were found*, so
    the delta, naive and parallel engines fire in the same order and
    produce bit-identical results.
    """
    delta_inst = as_delta_instance(delta)
    if not len(delta_inst):
        return
    for rule in rules:
        found = rule_delta_images(rule, instance, delta_inst)
        for image in sorted(found):
            yield _trigger_with_image(rule, found[image], image)


def parallel_new_triggers_of(
    instance: Instance,
    rules: RuleSet | list[Rule],
    delta: Iterable[Atom] | Instance,
    scheduler,
) -> list[Trigger]:
    """Sharded-parallel :func:`new_triggers_of` — same triggers, same order.

    ``scheduler`` is a :class:`repro.engine.scheduler.RoundScheduler`; it
    hash-shards the delta, enumerates every shard against the full
    instance on its worker pool, and merges the candidates back keyed by
    canonical image, so the returned list is identical to the sequential
    enumeration for every worker/shard count.
    """
    rule_list = list(rules)
    delta_atoms = (
        delta.atoms() if isinstance(delta, Instance) else delta
    )
    per_rule = scheduler.enumerate_images(instance, rule_list, delta_atoms)
    triggers: list[Trigger] = []
    for rule, pairs in zip(rule_list, per_rule):
        triggers.extend(
            _trigger_with_image(rule, hom, image) for image, hom in pairs
        )
    return triggers


def naive_new_triggers_of(
    instance: Instance,
    rules: RuleSet | list[Rule],
    fired: set[Trigger],
) -> list[Trigger]:
    """Reference enumeration of the not-yet-fired triggers.

    Re-matches every rule body against the whole instance and discards the
    already-fired triggers — the pre-incremental engine, kept as the
    ground truth the delta engine is tested against.  Output order matches
    :func:`new_triggers_of` (per rule, sorted by image).
    """
    fresh: list[Trigger] = []
    for rule in rules:
        batch = [
            t
            for t in (
                Trigger(rule, hom)
                for hom in homomorphisms(rule.body, instance)
            )
            if t not in fired
        ]
        batch.sort(key=Trigger.image)
        fresh.extend(batch)
    return fresh
