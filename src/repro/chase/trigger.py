"""Triggers: applicable rule instances over an instance (Section 2.2).

A trigger is a pair ``⟨ρ, h⟩`` of a rule and a homomorphism from its body
into an instance.  The *output* of a trigger extends ``h`` by mapping each
existential variable to a fresh null and instantiates the head.
"""

from __future__ import annotations

from typing import Iterator

from repro.logic.atoms import Atom
from repro.logic.homomorphisms import homomorphisms
from repro.logic.instances import Instance
from repro.logic.substitutions import Substitution
from repro.logic.terms import FreshSupply, Null, Term
from repro.rules.rule import Rule
from repro.rules.ruleset import RuleSet


class Trigger:
    """A rule paired with a homomorphism from its body into some instance.

    Two triggers are equal when they share the rule and agree on the body
    variables — the identity used by the oblivious chase to fire each
    trigger exactly once.
    """

    __slots__ = ("rule", "mapping", "_key")

    def __init__(self, rule: Rule, mapping: Substitution):
        self.rule = rule
        self.mapping = mapping.restrict(rule.body_variables())
        self._key = (
            rule,
            tuple(sorted(self.mapping.as_dict().items())),
        )

    def __eq__(self, other) -> bool:
        return isinstance(other, Trigger) and self._key == other._key

    def __hash__(self) -> int:
        return hash(self._key)

    def __repr__(self) -> str:
        return f"Trigger({self.rule!s}, {self.mapping!r})"

    def frontier_image(self) -> dict:
        """Return ``h(fr(ρ))`` as a mapping frontier variable -> term."""
        return {
            v: self.mapping.apply_term(v) for v in self.rule.frontier()
        }

    def output(
        self, supply: FreshSupply
    ) -> tuple[set[Atom], dict[Term, Null]]:
        """Instantiate the head with fresh nulls for existential variables.

        Returns the produced atoms and the existential-variable-to-null
        mapping used.
        """
        existential_map: dict[Term, Null] = {
            v: supply.null()
            for v in sorted(self.rule.existential_variables())
        }
        extended = Substitution(
            {**self.mapping.as_dict(), **existential_map}
        )
        return extended.apply_atoms(self.rule.head), existential_map

    def is_satisfied_in(self, instance: Instance) -> bool:
        """True when ``h`` extends to a homomorphism of the head into
        ``instance`` — the restricted-chase applicability test."""
        seed = {
            v: self.mapping.apply_term(v)
            for v in self.rule.frontier()
        }
        for _ in homomorphisms(self.rule.head, instance, seed=seed):
            return True
        return False


def triggers_of(
    instance: Instance, rules: RuleSet | list[Rule]
) -> Iterator[Trigger]:
    """Enumerate ``triggers(I, R)``: all rule/body-homomorphism pairs.

    Deterministic: rules in rule-set order, homomorphisms in index order.
    """
    for rule in rules:
        for hom in homomorphisms(rule.body, instance):
            yield Trigger(rule, hom)
