"""The oblivious chase, level-synchronous as in Section 2.2.

``Ch_0 = I``; ``Ch_{n+1} = Ch_n ∪ ⋃_{τ ∈ T_n} output(τ)`` where ``T_n`` is
the set of triggers over ``Ch_n`` that were not triggers over ``Ch_{n-1}``.
Every trigger therefore fires exactly once, at the first level where its
body matches, and the level at which a term is created is its timestamp
(Definition 34).

Engines
-------
The ``engine`` argument selects an execution engine from the registry in
:mod:`repro.engine.config` (a name or an explicit
:class:`~repro.engine.config.EngineConfig`):

* ``"delta"`` (default) computes ``T_n`` directly: a trigger is new at
  level ``n`` exactly when its body image uses an atom produced at level
  ``n`` (all-older bodies fired at an earlier level), so each level only
  enumerates homomorphisms pivoted on the previous level's delta — no
  re-match of the whole instance, and no ever-growing ``fired`` set.
* ``"naive"`` keeps the pre-incremental full-rematch enumeration as the
  reference implementation.
* ``"parallel"`` fans the delta enumeration out across the sharded round
  scheduler and fires each level through the batched recording pass.
* ``"persistent"`` is the parallel engine on persistent delta-fed process
  workers: replicas are seeded once, each level ships only its delta, and
  the firing pass is sharded across the pool too.

All engines fire the same triggers in the same canonical order and
produce bit-identical results.

The chase of a rule set alone, ``Ch(R)``, is the chase from the instance
``{⊤}`` (Section 2.2 notation).
"""

from __future__ import annotations

from repro.engine.batch import fire_round
from repro.engine.config import EngineConfig, resolve_engine
from repro.engine.scheduler import RoundScheduler
from repro.errors import ChaseBudgetExceeded
from repro.logic.instances import Instance
from repro.logic.terms import FreshSupply
from repro.rules.ruleset import RuleSet
from repro.chase.result import ChaseResult
from repro.chase.trigger import (
    Trigger,
    naive_new_triggers_of,
    new_triggers_of,
    parallel_new_triggers_of,
)

#: Default guard rails; generous for the library's laptop-scale corpora.
DEFAULT_MAX_LEVELS = 6
DEFAULT_MAX_ATOMS = 200_000


def oblivious_chase(
    instance: Instance,
    rules: RuleSet,
    max_levels: int = DEFAULT_MAX_LEVELS,
    max_atoms: int = DEFAULT_MAX_ATOMS,
    strict: bool = False,
    supply: FreshSupply | None = None,
    engine: str | EngineConfig = "delta",
) -> ChaseResult:
    """Run the oblivious chase from ``instance`` under ``rules``.

    Parameters
    ----------
    max_levels:
        Compute at most ``Ch_{max_levels}``.  The result's
        ``levels_completed`` reports how far the run got; ``terminated`` is
        True when a fixpoint was reached earlier.
    max_atoms:
        Abort (or raise, with ``strict=True``) when the instance outgrows
        this budget mid-level.
    strict:
        When True, exceeding a budget raises :class:`ChaseBudgetExceeded`
        instead of returning the partial result.
    engine:
        A registered engine name (``"delta"``, ``"naive"``,
        ``"parallel"``, ``"persistent"``) or an
        :class:`~repro.engine.config.EngineConfig`.

    Returns the :class:`ChaseResult` with full timestamps and provenance.
    """
    config = resolve_engine(engine)
    supply = supply or FreshSupply(prefix="_n")
    result = ChaseResult(instance)
    fired: set[Trigger] | None = set() if config.is_naive else None
    seen_revision = 0
    scheduler = RoundScheduler(config) if config.is_parallel else None

    try:
        for level in range(max_levels):
            if fired is not None:
                new_triggers = naive_new_triggers_of(
                    result.instance, rules, fired
                )
            else:
                delta = result.instance.delta_since(seen_revision)
                seen_revision = result.instance.revision
                if scheduler is not None:
                    new_triggers = parallel_new_triggers_of(
                        result.instance, rules, delta, scheduler
                    )
                else:
                    new_triggers = list(
                        new_triggers_of(result.instance, rules, delta)
                    )
            if not new_triggers:
                result.terminated = True
                result.levels_completed = level
                return result
            if fired is not None:
                fired.update(new_triggers)
            outcome = fire_round(
                result,
                new_triggers,
                supply,
                level=level + 1,
                max_atoms=max_atoms,
                scheduler=scheduler,
            )
            if outcome.budget_exceeded:
                result.levels_completed = level
                if strict:
                    raise ChaseBudgetExceeded(
                        f"chase exceeded {max_atoms} atoms at level {level + 1}",
                        partial_result=result,
                    )
                return result
            result.levels_completed = level + 1
    finally:
        if scheduler is not None:
            scheduler.close()

    # Check whether we stopped exactly at the fixpoint.  Existence-only,
    # so the sequential enumeration serves every engine.
    if fired is None:
        delta = result.instance.delta_since(seen_revision)
        remaining = any(
            True for _ in new_triggers_of(result.instance, rules, delta)
        )
    else:
        remaining = bool(
            naive_new_triggers_of(result.instance, rules, fired)
        )
    if not remaining:
        result.terminated = True
    elif strict:
        raise ChaseBudgetExceeded(
            f"chase did not terminate within {max_levels} levels",
            partial_result=result,
        )
    return result


def chase(
    instance: Instance,
    rules: RuleSet,
    max_levels: int = DEFAULT_MAX_LEVELS,
    max_atoms: int = DEFAULT_MAX_ATOMS,
    strict: bool = False,
    engine: str | EngineConfig = "delta",
) -> ChaseResult:
    """Alias for :func:`oblivious_chase` — the library's default chase."""
    return oblivious_chase(
        instance, rules, max_levels=max_levels, max_atoms=max_atoms,
        strict=strict, engine=engine,
    )


def chase_from_top(
    rules: RuleSet,
    max_levels: int = DEFAULT_MAX_LEVELS,
    max_atoms: int = DEFAULT_MAX_ATOMS,
    strict: bool = False,
    engine: str | EngineConfig = "delta",
) -> ChaseResult:
    """``Ch(R)``: the chase of ``{⊤}`` under ``rules`` (Section 2.2)."""
    return oblivious_chase(
        Instance(), rules, max_levels=max_levels, max_atoms=max_atoms,
        strict=strict, engine=engine,
    )


def chase_step(instance: Instance, rules: RuleSet) -> Instance:
    """Return ``Ch_1(I, R)`` as a bare instance (one synchronous level).

    Convenience used by the quickness checker (Definition 26) and the
    streamlining correctness experiments.
    """
    result = oblivious_chase(instance, rules, max_levels=1)
    return result.instance
