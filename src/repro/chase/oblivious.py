"""The oblivious chase, level-synchronous as in Section 2.2.

``Ch_0 = I``; ``Ch_{n+1} = Ch_n ∪ ⋃_{τ ∈ T_n} output(τ)`` where ``T_n`` is
the set of triggers over ``Ch_n`` that were not triggers over ``Ch_{n-1}``.
Every trigger therefore fires exactly once, at the first level where its
body matches, and the level at which a term is created is its timestamp
(Definition 34).

The chase of a rule set alone, ``Ch(R)``, is the chase from the instance
``{⊤}`` (Section 2.2 notation).
"""

from __future__ import annotations

from repro.errors import ChaseBudgetExceeded
from repro.logic.instances import Instance
from repro.logic.terms import FreshSupply
from repro.rules.ruleset import RuleSet
from repro.chase.result import ChaseResult
from repro.chase.trigger import Trigger, triggers_of

#: Default guard rails; generous for the library's laptop-scale corpora.
DEFAULT_MAX_LEVELS = 6
DEFAULT_MAX_ATOMS = 200_000


def oblivious_chase(
    instance: Instance,
    rules: RuleSet,
    max_levels: int = DEFAULT_MAX_LEVELS,
    max_atoms: int = DEFAULT_MAX_ATOMS,
    strict: bool = False,
    supply: FreshSupply | None = None,
) -> ChaseResult:
    """Run the oblivious chase from ``instance`` under ``rules``.

    Parameters
    ----------
    max_levels:
        Compute at most ``Ch_{max_levels}``.  The result's
        ``levels_completed`` reports how far the run got; ``terminated`` is
        True when a fixpoint was reached earlier.
    max_atoms:
        Abort (or raise, with ``strict=True``) when the instance outgrows
        this budget mid-level.
    strict:
        When True, exceeding a budget raises :class:`ChaseBudgetExceeded`
        instead of returning the partial result.

    Returns the :class:`ChaseResult` with full timestamps and provenance.
    """
    supply = supply or FreshSupply(prefix="_n")
    result = ChaseResult(instance)
    fired: set[Trigger] = set()

    for level in range(max_levels):
        new_triggers = [
            t for t in triggers_of(result.instance, rules) if t not in fired
        ]
        if not new_triggers:
            result.terminated = True
            result.levels_completed = level
            return result
        for trigger in new_triggers:
            fired.add(trigger)
            output_atoms, existential_map = trigger.output(supply)
            result.record_application(
                trigger,
                level=level + 1,
                created_nulls=existential_map.values(),
                output_atoms=output_atoms,
            )
            if len(result.instance) > max_atoms:
                result.levels_completed = level
                if strict:
                    raise ChaseBudgetExceeded(
                        f"chase exceeded {max_atoms} atoms at level {level + 1}",
                        partial_result=result,
                    )
                return result
        result.levels_completed = level + 1

    # Check whether we stopped exactly at the fixpoint.
    remaining = any(
        t not in fired for t in triggers_of(result.instance, rules)
    )
    if not remaining:
        result.terminated = True
    elif strict:
        raise ChaseBudgetExceeded(
            f"chase did not terminate within {max_levels} levels",
            partial_result=result,
        )
    return result


def chase(
    instance: Instance,
    rules: RuleSet,
    max_levels: int = DEFAULT_MAX_LEVELS,
    max_atoms: int = DEFAULT_MAX_ATOMS,
    strict: bool = False,
) -> ChaseResult:
    """Alias for :func:`oblivious_chase` — the library's default chase."""
    return oblivious_chase(
        instance, rules, max_levels=max_levels, max_atoms=max_atoms,
        strict=strict,
    )


def chase_from_top(
    rules: RuleSet,
    max_levels: int = DEFAULT_MAX_LEVELS,
    max_atoms: int = DEFAULT_MAX_ATOMS,
    strict: bool = False,
) -> ChaseResult:
    """``Ch(R)``: the chase of ``{⊤}`` under ``rules`` (Section 2.2)."""
    return oblivious_chase(
        Instance(), rules, max_levels=max_levels, max_atoms=max_atoms,
        strict=strict,
    )


def chase_step(instance: Instance, rules: RuleSet) -> Instance:
    """Return ``Ch_1(I, R)`` as a bare instance (one synchronous level).

    Convenience used by the quickness checker (Definition 26) and the
    streamlining correctness experiments.
    """
    result = oblivious_chase(instance, rules, max_levels=1)
    return result.instance
