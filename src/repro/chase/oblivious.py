"""The oblivious chase, level-synchronous as in Section 2.2.

``Ch_0 = I``; ``Ch_{n+1} = Ch_n ∪ ⋃_{τ ∈ T_n} output(τ)`` where ``T_n`` is
the set of triggers over ``Ch_n`` that were not triggers over ``Ch_{n-1}``.
Every trigger therefore fires exactly once, at the first level where its
body matches, and the level at which a term is created is its timestamp
(Definition 34).

The loop itself — enumerate the level's new triggers, fire them, record
provenance, check budgets and the fixpoint — lives in
:class:`repro.engine.runner.ChaseRunner`; this module only declares the
oblivious strategy: delta enumeration with no claim gate (every new
trigger fires), batched/shardable firing, level accounting with a
post-budget fixpoint probe.

Engines
-------
The ``engine`` argument selects an execution engine from the registry in
:mod:`repro.engine.config` (a name or an explicit
:class:`~repro.engine.config.EngineConfig`):

* ``"delta"`` (default) computes ``T_n`` directly: a trigger is new at
  level ``n`` exactly when its body image uses an atom produced at level
  ``n`` (all-older bodies fired at an earlier level), so each level only
  enumerates homomorphisms pivoted on the previous level's delta — no
  re-match of the whole instance, and no ever-growing ``fired`` set.
* ``"naive"`` keeps the pre-incremental full-rematch enumeration as the
  reference implementation.
* ``"parallel"`` fans the delta enumeration out across the sharded round
  scheduler and fires each level through the batched recording pass.
* ``"persistent"`` is the parallel engine on persistent delta-fed process
  workers: replicas are seeded once, each level ships only its delta, and
  the firing pass is sharded across the pool too.

All engines fire the same triggers in the same canonical order and
produce bit-identical results.

The chase of a rule set alone, ``Ch(R)``, is the chase from the instance
``{⊤}`` (Section 2.2 notation).
"""

from __future__ import annotations

from repro.engine.config import EngineConfig
from repro.engine.runner import ChaseRunner, VariantPolicy
from repro.obs.trace import RunTrace
from repro.logic.instances import Instance
from repro.logic.terms import FreshSupply
from repro.rules.ruleset import RuleSet
# Re-exported for compatibility: the default budgets now live in
# repro.chase.bounds.
from repro.chase.bounds import (
    DEFAULT_MAX_ATOMS as DEFAULT_MAX_ATOMS,
    DEFAULT_MAX_LEVELS as DEFAULT_MAX_LEVELS,
)
from repro.chase.result import ChaseResult
from repro.chase.trigger import Trigger, naive_new_triggers_of


class ObliviousPolicy(VariantPolicy):
    """Fire every new trigger exactly once, level by level.

    No claim gate, batched/shardable firing, level accounting.  The naive
    engine's seen set is full trigger identity; registered before firing
    so each trigger fires at the first level its body matches.
    """

    variant = "chase"
    supply_prefix = "_n"

    def __init__(self):
        self._fired: set[Trigger] = set()

    def naive_new_triggers(self, instance, rules):
        new_triggers = naive_new_triggers_of(instance, rules, self._fired)
        self._fired.update(new_triggers)
        return new_triggers

    def naive_has_remaining(self, instance, rules):
        return bool(naive_new_triggers_of(instance, rules, self._fired))

    def atom_budget_message(self, max_atoms, step):
        return f"chase exceeded {max_atoms} atoms at level {step}"


def oblivious_chase(
    instance: Instance,
    rules: RuleSet,
    max_levels: int = DEFAULT_MAX_LEVELS,
    max_atoms: int = DEFAULT_MAX_ATOMS,
    strict: bool = False,
    supply: FreshSupply | None = None,
    engine: str | EngineConfig = "delta",
    trace: RunTrace | None = None,
) -> ChaseResult:
    """Run the oblivious chase from ``instance`` under ``rules``.

    Parameters
    ----------
    max_levels:
        Compute at most ``Ch_{max_levels}``.  The result's
        ``levels_completed`` reports how far the run got; ``terminated`` is
        True when a fixpoint was reached earlier.
    max_atoms:
        Abort (or raise, with ``strict=True``) when the instance outgrows
        this budget mid-level.
    strict:
        When True, exceeding a budget raises :class:`ChaseBudgetExceeded`
        instead of returning the partial result.
    engine:
        A registered engine name (``"delta"``, ``"naive"``,
        ``"parallel"``, ``"persistent"``) or an
        :class:`~repro.engine.config.EngineConfig`.
    trace:
        An optional :class:`~repro.obs.trace.RunTrace` that receives one
        structured record per level (phase timers, counts, byte deltas);
        see the Observability section of ``src/repro/engine/README.md``.

    Returns the :class:`ChaseResult` with full timestamps and provenance.
    """
    runner = ChaseRunner(
        ObliviousPolicy(),
        engine,
        max_steps=max_levels,
        max_atoms=max_atoms,
        strict=strict,
        supply=supply,
        trace=trace,
    )
    return runner.run(instance, rules)


def chase(
    instance: Instance,
    rules: RuleSet,
    max_levels: int = DEFAULT_MAX_LEVELS,
    max_atoms: int = DEFAULT_MAX_ATOMS,
    strict: bool = False,
    engine: str | EngineConfig = "delta",
    trace: RunTrace | None = None,
) -> ChaseResult:
    """Alias for :func:`oblivious_chase` — the library's default chase."""
    return oblivious_chase(
        instance, rules, max_levels=max_levels, max_atoms=max_atoms,
        strict=strict, engine=engine, trace=trace,
    )


def chase_from_top(
    rules: RuleSet,
    max_levels: int = DEFAULT_MAX_LEVELS,
    max_atoms: int = DEFAULT_MAX_ATOMS,
    strict: bool = False,
    engine: str | EngineConfig = "delta",
    trace: RunTrace | None = None,
) -> ChaseResult:
    """``Ch(R)``: the chase of ``{⊤}`` under ``rules`` (Section 2.2)."""
    return oblivious_chase(
        Instance(), rules, max_levels=max_levels, max_atoms=max_atoms,
        strict=strict, engine=engine, trace=trace,
    )


def chase_step(instance: Instance, rules: RuleSet) -> Instance:
    """Return ``Ch_1(I, R)`` as a bare instance (one synchronous level).

    Convenience used by the quickness checker (Definition 26) and the
    streamlining correctness experiments.
    """
    result = oblivious_chase(instance, rules, max_levels=1)
    return result.instance
