"""The oblivious chase, level-synchronous as in Section 2.2.

``Ch_0 = I``; ``Ch_{n+1} = Ch_n ∪ ⋃_{τ ∈ T_n} output(τ)`` where ``T_n`` is
the set of triggers over ``Ch_n`` that were not triggers over ``Ch_{n-1}``.
Every trigger therefore fires exactly once, at the first level where its
body matches, and the level at which a term is created is its timestamp
(Definition 34).

Engines
-------
The default ``engine="delta"`` computes ``T_n`` directly: a trigger is new
at level ``n`` exactly when its body image uses an atom produced at level
``n`` (all-older bodies fired at an earlier level), so each level only
enumerates homomorphisms pivoted on the previous level's delta — no
re-match of the whole instance, and no ever-growing ``fired`` set.
``engine="naive"`` keeps the pre-incremental full-rematch enumeration as
the reference implementation; both engines fire the same triggers in the
same canonical order and produce bit-identical results.

The chase of a rule set alone, ``Ch(R)``, is the chase from the instance
``{⊤}`` (Section 2.2 notation).
"""

from __future__ import annotations

from repro.errors import ChaseBudgetExceeded
from repro.logic.instances import Instance
from repro.logic.terms import FreshSupply
from repro.rules.ruleset import RuleSet
from repro.chase.result import ChaseResult
from repro.chase.trigger import (
    Trigger,
    naive_new_triggers_of,
    new_triggers_of,
)

#: Default guard rails; generous for the library's laptop-scale corpora.
DEFAULT_MAX_LEVELS = 6
DEFAULT_MAX_ATOMS = 200_000

#: Engine names accepted by the chase variants.
ENGINES = ("delta", "naive")


def _check_engine(engine: str) -> None:
    if engine not in ENGINES:
        raise ValueError(
            f"unknown chase engine {engine!r}; expected one of {ENGINES}"
        )


def oblivious_chase(
    instance: Instance,
    rules: RuleSet,
    max_levels: int = DEFAULT_MAX_LEVELS,
    max_atoms: int = DEFAULT_MAX_ATOMS,
    strict: bool = False,
    supply: FreshSupply | None = None,
    engine: str = "delta",
) -> ChaseResult:
    """Run the oblivious chase from ``instance`` under ``rules``.

    Parameters
    ----------
    max_levels:
        Compute at most ``Ch_{max_levels}``.  The result's
        ``levels_completed`` reports how far the run got; ``terminated`` is
        True when a fixpoint was reached earlier.
    max_atoms:
        Abort (or raise, with ``strict=True``) when the instance outgrows
        this budget mid-level.
    strict:
        When True, exceeding a budget raises :class:`ChaseBudgetExceeded`
        instead of returning the partial result.
    engine:
        ``"delta"`` (default) for semi-naive delta-driven trigger
        enumeration, ``"naive"`` for the full-rematch reference engine.

    Returns the :class:`ChaseResult` with full timestamps and provenance.
    """
    _check_engine(engine)
    supply = supply or FreshSupply(prefix="_n")
    result = ChaseResult(instance)
    fired: set[Trigger] | None = set() if engine == "naive" else None
    seen_revision = 0

    for level in range(max_levels):
        if fired is None:
            delta = result.instance.delta_since(seen_revision)
            seen_revision = result.instance.revision
            new_triggers = list(
                new_triggers_of(result.instance, rules, delta)
            )
        else:
            new_triggers = naive_new_triggers_of(
                result.instance, rules, fired
            )
        if not new_triggers:
            result.terminated = True
            result.levels_completed = level
            return result
        for trigger in new_triggers:
            if fired is not None:
                fired.add(trigger)
            output_atoms, existential_map = trigger.output(supply)
            result.record_application(
                trigger,
                level=level + 1,
                created_nulls=existential_map.values(),
                output_atoms=output_atoms,
            )
            if len(result.instance) > max_atoms:
                result.levels_completed = level
                if strict:
                    raise ChaseBudgetExceeded(
                        f"chase exceeded {max_atoms} atoms at level {level + 1}",
                        partial_result=result,
                    )
                return result
        result.levels_completed = level + 1

    # Check whether we stopped exactly at the fixpoint.
    if fired is None:
        delta = result.instance.delta_since(seen_revision)
        remaining = any(
            True for _ in new_triggers_of(result.instance, rules, delta)
        )
    else:
        remaining = bool(
            naive_new_triggers_of(result.instance, rules, fired)
        )
    if not remaining:
        result.terminated = True
    elif strict:
        raise ChaseBudgetExceeded(
            f"chase did not terminate within {max_levels} levels",
            partial_result=result,
        )
    return result


def chase(
    instance: Instance,
    rules: RuleSet,
    max_levels: int = DEFAULT_MAX_LEVELS,
    max_atoms: int = DEFAULT_MAX_ATOMS,
    strict: bool = False,
    engine: str = "delta",
) -> ChaseResult:
    """Alias for :func:`oblivious_chase` — the library's default chase."""
    return oblivious_chase(
        instance, rules, max_levels=max_levels, max_atoms=max_atoms,
        strict=strict, engine=engine,
    )


def chase_from_top(
    rules: RuleSet,
    max_levels: int = DEFAULT_MAX_LEVELS,
    max_atoms: int = DEFAULT_MAX_ATOMS,
    strict: bool = False,
    engine: str = "delta",
) -> ChaseResult:
    """``Ch(R)``: the chase of ``{⊤}`` under ``rules`` (Section 2.2)."""
    return oblivious_chase(
        Instance(), rules, max_levels=max_levels, max_atoms=max_atoms,
        strict=strict, engine=engine,
    )


def chase_step(instance: Instance, rules: RuleSet) -> Instance:
    """Return ``Ch_1(I, R)`` as a bare instance (one synchronous level).

    Convenience used by the quickness checker (Definition 26) and the
    streamlining correctness experiments.
    """
    result = oblivious_chase(instance, rules, max_levels=1)
    return result.instance
