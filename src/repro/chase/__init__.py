"""The chase: triggers, oblivious/restricted engines, results with
timestamps (Def 34) and provenance."""

from repro.chase.bounds import (
    DEFAULT_MAX_ATOMS,
    DEFAULT_MAX_LEVELS,
    DEFAULT_MAX_ROUNDS,
    GrowthPoint,
    growth_curve,
    suggested_level_budget,
)
from repro.chase.oblivious import (
    chase,
    chase_from_top,
    chase_step,
    oblivious_chase,
)
from repro.chase.restricted import restricted_chase
from repro.chase.semi_oblivious import semi_oblivious_chase
from repro.chase.result import ChaseResult, CreationRecord
from repro.chase.trigger import (
    Trigger,
    naive_new_triggers_of,
    new_triggers_of,
    parallel_new_triggers_of,
    triggers_of,
)

__all__ = [
    "ChaseResult",
    "CreationRecord",
    "DEFAULT_MAX_ATOMS",
    "DEFAULT_MAX_LEVELS",
    "DEFAULT_MAX_ROUNDS",
    "GrowthPoint",
    "Trigger",
    "chase",
    "chase_from_top",
    "chase_step",
    "growth_curve",
    "naive_new_triggers_of",
    "new_triggers_of",
    "oblivious_chase",
    "parallel_new_triggers_of",
    "restricted_chase",
    "semi_oblivious_chase",
    "suggested_level_budget",
    "triggers_of",
]
