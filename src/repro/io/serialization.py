"""JSON-friendly serialization of terms, atoms, instances, rules, queries.

Round-trip guarantees are covered by property-based tests; the format is a
plain nested-dict structure suitable for ``json.dump``.
"""

from __future__ import annotations

from typing import Any

from repro.logic.atoms import Atom
from repro.logic.instances import Instance
from repro.logic.predicates import Predicate
from repro.logic.terms import Constant, Null, Term, Variable
from repro.queries.cq import ConjunctiveQuery
from repro.queries.ucq import UCQ
from repro.rules.rule import Rule
from repro.rules.ruleset import RuleSet

_TERM_KINDS = {"constant": Constant, "variable": Variable, "null": Null}


def term_to_dict(term: Term) -> dict[str, str]:
    if isinstance(term, Constant):
        kind = "constant"
    elif isinstance(term, Null):
        kind = "null"
    elif isinstance(term, Variable):
        kind = "variable"
    else:
        raise TypeError(f"unknown term type {type(term)}")
    return {"kind": kind, "name": term.name}


def term_from_dict(data: dict[str, str]) -> Term:
    try:
        factory = _TERM_KINDS[data["kind"]]
    except KeyError:
        raise ValueError(f"unknown term kind {data.get('kind')!r}") from None
    return factory(data["name"])


def atom_to_dict(atom: Atom) -> dict[str, Any]:
    return {
        "predicate": atom.predicate.name,
        "args": [term_to_dict(t) for t in atom.args],
    }


def atom_from_dict(data: dict[str, Any]) -> Atom:
    args = [term_from_dict(t) for t in data["args"]]
    return Atom(Predicate(data["predicate"], len(args)), args)


def instance_to_dict(instance: Instance) -> dict[str, Any]:
    return {"atoms": [atom_to_dict(a) for a in instance.sorted_atoms()]}


def instance_from_dict(data: dict[str, Any]) -> Instance:
    return Instance(
        (atom_from_dict(a) for a in data["atoms"]), add_top=True
    )


def rule_to_dict(rule: Rule) -> dict[str, Any]:
    return {
        "body": [atom_to_dict(a) for a in sorted(rule.body)],
        "head": [atom_to_dict(a) for a in sorted(rule.head)],
        "label": rule.label,
    }


def rule_from_dict(data: dict[str, Any]) -> Rule:
    return Rule(
        (atom_from_dict(a) for a in data["body"]),
        (atom_from_dict(a) for a in data["head"]),
        label=data.get("label", ""),
    )


def ruleset_to_dict(rules: RuleSet) -> dict[str, Any]:
    return {
        "name": rules.name,
        "rules": [rule_to_dict(r) for r in rules],
    }


def ruleset_from_dict(data: dict[str, Any]) -> RuleSet:
    return RuleSet(
        (rule_from_dict(r) for r in data["rules"]),
        name=data.get("name", ""),
    )


def cq_to_dict(query: ConjunctiveQuery) -> dict[str, Any]:
    return {
        "atoms": [atom_to_dict(a) for a in sorted(query.atoms)],
        "answers": [term_to_dict(v) for v in query.answers],
    }


def cq_from_dict(data: dict[str, Any]) -> ConjunctiveQuery:
    answers = [term_from_dict(v) for v in data["answers"]]
    return ConjunctiveQuery(
        (atom_from_dict(a) for a in data["atoms"]), answers
    )


def ucq_to_dict(query: UCQ) -> dict[str, Any]:
    return {
        "disjuncts": [cq_to_dict(q) for q in query],
        "answers": [term_to_dict(v) for v in query.answers],
    }


def ucq_from_dict(data: dict[str, Any]) -> UCQ:
    answers = [term_from_dict(v) for v in data["answers"]]
    return UCQ(
        (cq_from_dict(q) for q in data["disjuncts"]), answers=answers
    )
