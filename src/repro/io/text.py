"""Pretty printing and plain-text tables for reports and benchmarks."""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.logic.instances import Instance
from repro.rules.ruleset import RuleSet


def format_table(
    headers: Sequence[str], rows: Iterable[Sequence], title: str = ""
) -> str:
    """Render an aligned plain-text table (the benchmark output format)."""
    string_rows = [[str(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in string_rows:
        for index, cell in enumerate(row):
            if index < len(widths):
                widths[index] = max(widths[index], len(cell))
    lines = []
    if title:
        lines.append(title)
    header_line = "  ".join(
        h.ljust(widths[i]) for i, h in enumerate(headers)
    )
    lines.append(header_line)
    lines.append("  ".join("-" * w for w in widths))
    for row in string_rows:
        lines.append(
            "  ".join(
                cell.ljust(widths[i]) if i < len(widths) else cell
                for i, cell in enumerate(row)
            )
        )
    return "\n".join(lines)


def format_instance(instance: Instance, limit: int = 50) -> str:
    """A readable multi-line rendering of an instance."""
    atoms = instance.sorted_atoms()
    shown = atoms[:limit]
    lines = [str(a) for a in shown]
    if len(atoms) > limit:
        lines.append(f"... ({len(atoms) - limit} more atoms)")
    return "\n".join(lines)


def format_ruleset(rules: RuleSet) -> str:
    """A numbered rendering of a rule set."""
    lines = []
    if rules.name:
        lines.append(f"# {rules.name}")
    for index, rule in enumerate(rules):
        lines.append(f"[{index}] {rule}")
    return "\n".join(lines)
