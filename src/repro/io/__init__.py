"""Text rendering and JSON serialization."""

from repro.io.serialization import (
    atom_from_dict,
    atom_to_dict,
    cq_from_dict,
    cq_to_dict,
    instance_from_dict,
    instance_to_dict,
    rule_from_dict,
    rule_to_dict,
    ruleset_from_dict,
    ruleset_to_dict,
    term_from_dict,
    term_to_dict,
    ucq_from_dict,
    ucq_to_dict,
)
from repro.io.text import format_instance, format_ruleset, format_table

__all__ = [
    "atom_from_dict",
    "atom_to_dict",
    "cq_from_dict",
    "cq_to_dict",
    "format_instance",
    "format_ruleset",
    "format_table",
    "instance_from_dict",
    "instance_to_dict",
    "rule_from_dict",
    "rule_to_dict",
    "ruleset_from_dict",
    "ruleset_to_dict",
    "term_from_dict",
    "term_to_dict",
    "ucq_from_dict",
    "ucq_to_dict",
]
