"""repro — an executable formalization of
*No Cliques Allowed: The Next Step Towards BDD/FC Conjecture* (PODS 2025).

The library implements existential rules, the oblivious chase with
timestamps and provenance, piece-unifier UCQ rewriting with bdd
certificates, the four rule-set surgeries of Section 4 (instance encoding,
reification, streamlining, body rewriting) composing into the regal
pipeline, and the Section 5 tournament/valley-query machinery behind the
paper's main result:

    For every bdd rule set R and instance I:
        Ch(I, R) ⊨ Tournaments_E  ⇒  Ch(I, R) ⊨ Loop_E.      (Property p)

Quickstart::

    from repro import parse_rules, parse_instance, check_property_p

    rules = parse_rules(\"\"\"
        E(x,y) -> exists z. E(y,z)
        E(x,xp), E(y,yp) -> E(x,yp)
    \"\"\")
    report = check_property_p(rules, parse_instance("E(a,b)"), max_levels=4)
    assert report.loop_entailed  # tournaments grow, so the loop appears

See DESIGN.md for the full system inventory and EXPERIMENTS.md for the
paper-claim-by-claim reproduction record.
"""

from repro.chase import (
    ChaseResult,
    chase,
    chase_from_top,
    oblivious_chase,
    restricted_chase,
)
from repro.core import (
    PropertyPReport,
    check_property_p,
    chromatic_number,
    entails_loop,
    egraph,
    girth,
    is_valley_query,
    max_tournament_size,
    paper_bound,
    ramsey_upper_bound,
    witness_set,
)
from repro.logic import (
    Atom,
    Constant,
    FreshSupply,
    Instance,
    Predicate,
    Signature,
    Substitution,
    Variable,
    atom,
    edge,
    homomorphically_equivalent,
)
from repro.queries import (
    UCQ,
    ConjunctiveQuery,
    certain_answer,
    entails_cq,
    entails_ucq,
    injective_closure,
    minimize_ucq,
)
from repro.rewriting import (
    BddCertificate,
    rewrite,
    ucq_rewritability_certificate,
)
from repro.rules import (
    Rule,
    RuleSet,
    parse_instance,
    parse_query,
    parse_rule,
    parse_rules,
)
from repro.serving import AnswerResult, answer
from repro.surgery import (
    body_rewrite,
    encode_instance,
    regal_pipeline,
    regality_report,
    reify_rules,
    streamline,
)

__version__ = "1.0.0"

__all__ = [
    "AnswerResult",
    "Atom",
    "BddCertificate",
    "ChaseResult",
    "ConjunctiveQuery",
    "Constant",
    "FreshSupply",
    "Instance",
    "Predicate",
    "PropertyPReport",
    "Rule",
    "RuleSet",
    "Signature",
    "Substitution",
    "UCQ",
    "Variable",
    "answer",
    "atom",
    "body_rewrite",
    "certain_answer",
    "chase",
    "chase_from_top",
    "check_property_p",
    "chromatic_number",
    "edge",
    "egraph",
    "encode_instance",
    "entails_cq",
    "entails_loop",
    "entails_ucq",
    "girth",
    "homomorphically_equivalent",
    "injective_closure",
    "is_valley_query",
    "max_tournament_size",
    "minimize_ucq",
    "oblivious_chase",
    "paper_bound",
    "parse_instance",
    "parse_query",
    "parse_rule",
    "parse_rules",
    "ramsey_upper_bound",
    "regal_pipeline",
    "regality_report",
    "reify_rules",
    "restricted_chase",
    "rewrite",
    "streamline",
    "ucq_rewritability_certificate",
    "witness_set",
]
