"""Finite-model tools: model checking, chase folding, bounded finite
entailment (the fc side of the bdd/fc conjecture)."""

from repro.finite.models import (
    datalog_saturate,
    find_finite_countermodel,
    finite_entails,
    fold_chase,
    is_model,
    violations,
)

__all__ = [
    "datalog_saturate",
    "find_finite_countermodel",
    "finite_entails",
    "fold_chase",
    "is_model",
    "violations",
]
