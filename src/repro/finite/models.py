"""Finite model tools: model checking, chase folding, finite entailment.

The (bdd ⇒ fc) conjecture is about the gap between unrestricted and
*finite* entailment.  This module supplies the finite side:

* :func:`is_model` — does a finite instance satisfy every rule?
* :func:`violations` — the unsatisfied triggers, for diagnostics;
* :func:`fold_chase` — quotient a chase prefix into a finite structure by
  redirecting the last level onto earlier terms (the classical way finite
  models of Example 1 acquire their loop);
* :func:`finite_entails` — bounded-domain search for a finite
  countermodel: ``⟨I,R⟩ ⊨_fin q`` holds when no small finite model of
  ``I ∪ R`` avoids ``q`` (sound only up to the domain bound, which is the
  honest best possible — finite entailment is not semi-decidable).
"""

from __future__ import annotations

import itertools

from repro.logic.atoms import Atom
from repro.logic.instances import Instance
from repro.logic.predicates import Predicate
from repro.logic.terms import Constant, Term
from repro.queries.cq import ConjunctiveQuery
from repro.queries.entailment import entails_cq
from repro.rules.ruleset import RuleSet
from repro.chase.trigger import Trigger, new_triggers_of


def violations(instance: Instance, rules: RuleSet) -> list[Trigger]:
    """Triggers whose head is not satisfied — empty iff ``I ⊨ R``.

    Enumerated through the delta engine with the whole instance as the
    delta (every trigger uses ≥ 1 instance atom), which seeds candidates
    from the positional index and returns a canonically-ordered list.
    """
    return [
        trigger
        for trigger in new_triggers_of(instance, rules, instance)
        if not trigger.is_satisfied_in(instance)
    ]


def is_model(instance: Instance, rules: RuleSet) -> bool:
    """True when every rule is satisfied in ``instance``."""
    return not violations(instance, rules)


def fold_chase(
    chase_instance: Instance,
    timestamps,
    fold_level: int,
) -> Instance:
    """Fold a chase prefix into a finite structure.

    Terms with timestamp ``>= fold_level`` are redirected onto arbitrary
    (deterministically chosen) terms of timestamp ``fold_level - 1`` —
    the "tie the infinite tail into a knot" construction behind Example
    1's finite models.  The result is finite but not necessarily a model;
    combine with :func:`is_model` / Datalog saturation.
    """
    old_terms = sorted(
        t for t in chase_instance.active_domain()
        if timestamps(t) < fold_level
    )
    if not old_terms:
        raise ValueError("fold level leaves no terms to fold onto")
    recycle = [
        t for t in old_terms if timestamps(t) == fold_level - 1
    ] or old_terms
    mapping: dict[Term, Term] = {}
    index = 0
    for term in sorted(chase_instance.active_domain()):
        if timestamps(term) >= fold_level:
            mapping[term] = recycle[index % len(recycle)]
            index += 1
    return Instance(
        (atom.apply(mapping) for atom in chase_instance), add_top=True
    )


def datalog_saturate(instance: Instance, rules: RuleSet, max_rounds: int = 20) -> Instance:
    """Close a finite instance under the Datalog rules of ``rules``."""
    from repro.chase.oblivious import oblivious_chase

    result = oblivious_chase(
        instance, rules.datalog_rules(), max_levels=max_rounds
    )
    return result.instance


def _candidate_models(
    base: Instance,
    signature: list[Predicate],
    domain_size: int,
):
    """Enumerate instances over a fixed domain extending ``base``.

    Exponential — usable only for tiny signatures/domains, which is what
    the examples and tests need.  Atoms of ``base`` are always included;
    each other atom over the domain is in or out.
    """
    domain = sorted(base.active_domain()) + [
        Constant(f"_m{i}") for i in range(domain_size)
    ]
    domain = domain[: max(domain_size, len(base.active_domain()))]
    optional: list[Atom] = []
    for predicate in signature:
        if predicate.arity == 0:
            continue
        for args in itertools.product(domain, repeat=predicate.arity):
            atom = Atom(predicate, args)
            if atom not in base:
                optional.append(atom)
    for bits in itertools.product((False, True), repeat=len(optional)):
        atoms = list(base) + [
            atom for atom, bit in zip(optional, bits) if bit
        ]
        yield Instance(atoms, add_top=True)


def find_finite_countermodel(
    instance: Instance,
    rules: RuleSet,
    query: ConjunctiveQuery,
    max_domain: int = 3,
) -> Instance | None:
    """Search for a finite model of ``I ∪ R`` not satisfying ``query``.

    Returns the countermodel or None when none exists within the domain
    bound.  Brute force by design: exercise it only on the tiny examples
    of the paper (a two-element domain suffices for Example 1's variants).
    """
    signature = sorted(
        set(rules.signature()) | instance.signature(),
        key=lambda p: (p.name, p.arity),
    )
    for size in range(1, max_domain + 1):
        for candidate in _candidate_models(instance, signature, size):
            if entails_cq(candidate, query):
                continue
            if is_model(candidate, rules):
                return candidate
    return None


def finite_entails(
    instance: Instance,
    rules: RuleSet,
    query: ConjunctiveQuery,
    max_domain: int = 3,
) -> bool:
    """Bounded finite entailment: no countermodel up to ``max_domain``.

    ``True`` means every finite model with at most ``max_domain`` extra
    elements satisfies the query — evidence for (not a proof of) finite
    entailment; ``False`` is definitive (a countermodel was found).
    """
    return (
        find_finite_countermodel(instance, rules, query, max_domain)
        is None
    )
