"""Determinism pass: unordered iteration must not reach ordered sinks.

The library's bit-identical-results guarantee rests on every
order-carrying artifact — ``record_round`` payloads, wire buffers,
trigger enumerations, merge orders — being derived from *canonically
ordered* iteration, never from raw ``set``/``frozenset`` traversal
(whose order follows ``PYTHONHASHSEED``).  Three rules:

``D101`` unordered-iteration-to-ordered-sink
    A conservative intraprocedural taint walk marks expressions whose
    runtime value is an unordered collection (set/frozenset literals and
    constructors, set-algebra operators, known set-returning helpers
    like ``Instance.active_domain``), then flags the places where such a
    value is consumed *positionally*: ``list``/``tuple``/``enumerate``/
    ``zip``/``str.join`` calls, list comprehensions and generator
    expressions, ``next(iter(...))`` picks, appends inside a ``for``
    loop over the value, and direct arguments to the ordered sinks
    (``record_round``, the wire encoders, ``ReplyWriter.write_*``).
    Wrapping in ``sorted(...)`` — or any order-insensitive consumer
    (``len``/``sum``/``min``/``max``/``any``/``all``/``set``/
    ``frozenset``) — neutralizes the taint.  A collector list that is
    later ``.sort()``-ed (or fed to ``sorted``) is recognized and not
    flagged.

``D102`` hash-order reliance
    ``hash(x) % n`` bucketing and ``sorted(..., key=hash)`` /
    ``key=id`` make results follow the interpreter's hash/identity
    layout.  (``__hash__`` implementations themselves are exempt.)

``D103`` nondeterministic sources
    Unseeded module-level ``random.*`` calls and absolute wall-clock
    reads (``time.time``, ``datetime.now``/``utcnow``).  Seeded
    ``random.Random(seed)`` instances are fine (the corpus generators'
    idiom), and the duration-only clocks ``time.perf_counter`` /
    ``time.monotonic`` are allowed — they feed telemetry, never
    results.
"""

from __future__ import annotations

import ast

from repro.checks.base import CheckPass, Finding, SourceModule, call_name

#: Constructors whose result is an unordered collection.
UNORDERED_CONSTRUCTORS = {"set", "frozenset"}

#: Method/function names that return sets or frozensets in this codebase
#: regardless of receiver (Instance.active_domain, Instance.atoms,
#: positional-index buckets, set algebra spelled as methods).
UNORDERED_CALLS = {
    "active_domain",
    "atoms",
    "with_predicate",
    "with_term",
    "frontier_terms",
    "union",
    "intersection",
    "difference",
    "symmetric_difference",
}

#: Order-insensitive consumers: taint stops here.
NEUTRAL_CALLS = {
    "sorted",
    "sorted_atoms",
    "set",
    "frozenset",
    "len",
    "sum",
    "min",
    "max",
    "any",
    "all",
    "Multiset",
    "Counter",
}

#: Positional consumers: an unordered argument leaks its layout order.
ORDERED_CALLS = {"list", "tuple", "enumerate", "zip", "join", "extend"}

#: Project sinks whose argument order is semantically load-bearing.
SINK_CALLS = {
    "record_round",
    "record_application",
    "encode_atoms",
    "encode_fire_tasks",
    "encode_probe_tasks",
    "write_atom",
    "write_term",
    "write_predicate",
    "pack_ids",
}

#: Mutations that give a ``for`` loop body an ordered effect.
ORDERED_EFFECTS = {"append", "extend", "insert", "appendleft"}

_ABS_CLOCKS = {("time", "time"), ("datetime", "now"), ("datetime", "utcnow")}


class DeterminismPass(CheckPass):
    name = "determinism"
    description = (
        "unordered iteration reaching ordered sinks, hash-order reliance, "
        "wall-clock/unseeded-random sources"
    )

    def wants(self, module: SourceModule) -> bool:
        rel = module.rel.replace("\\", "/")
        return rel.startswith(("src/", "tools/")) or "/" not in rel

    def run(self, module: SourceModule) -> list[Finding]:
        findings: list[Finding] = []
        self._run_block(module, module.tree.body, {}, findings, func_name=None)
        return findings

    # -- statement walk ------------------------------------------------

    def _run_block(self, module, body, env, findings, func_name):
        for node in body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._run_block(
                    module, node.body, {}, findings, func_name=node.name
                )
                continue
            if isinstance(node, ast.ClassDef):
                self._run_block(module, node.body, {}, findings, func_name)
                continue
            self._run_statement(module, node, env, findings, func_name, body)

    def _run_statement(self, module, node, env, findings, func_name, block):
        if isinstance(node, ast.Assign):
            self._scan_expr(module, node.value, env, findings, func_name)
            tainted = self._is_unordered(node.value, env)
            for target in node.targets:
                if isinstance(target, ast.Name):
                    env[target.id] = tainted
                else:
                    for name in ast.walk(target):
                        if isinstance(name, ast.Name):
                            env[name.id] = False
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            self._scan_expr(module, node.value, env, findings, func_name)
            if isinstance(node.target, ast.Name):
                env[node.target.id] = self._is_unordered(node.value, env)
        elif isinstance(node, (ast.For, ast.AsyncFor)):
            self._scan_expr(module, node.iter, env, findings, func_name)
            if self._is_unordered(node.iter, env):
                effect = self._ordered_effect(node, block)
                if effect is not None:
                    findings.append(
                        self.finding(
                            module, "D101", node,
                            "iteration over an unordered collection feeds "
                            f"an ordered consumer (`{effect}`) — wrap the "
                            "iterable in sorted() or a canonical-order "
                            "helper",
                        )
                    )
            for name in ast.walk(node.target):
                if isinstance(name, ast.Name):
                    env[name.id] = False
            self._run_nested(module, node, env, findings, func_name)
        elif isinstance(node, (ast.If, ast.While, ast.With, ast.AsyncWith,
                               ast.Try)):
            for value in ast.iter_child_nodes(node):
                if isinstance(value, ast.expr):
                    self._scan_expr(module, value, env, findings, func_name)
            self._run_nested(module, node, env, findings, func_name)
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            self._run_block(module, node.body, {}, findings, node.name)
        elif isinstance(node, ast.ClassDef):
            self._run_block(module, node.body, {}, findings, func_name)
        else:
            for value in ast.iter_child_nodes(node):
                if isinstance(value, ast.expr):
                    self._scan_expr(module, value, env, findings, func_name)

    def _run_nested(self, module, node, env, findings, func_name):
        """Recurse into a compound statement's blocks, sharing ``env``."""
        for attr in ("body", "orelse", "finalbody"):
            self._run_block(
                module, getattr(node, attr, []) or [], env, findings,
                func_name,
            )
        for handler in getattr(node, "handlers", []) or []:
            self._run_block(module, handler.body, env, findings, func_name)

    # -- taint classification ------------------------------------------

    def _is_unordered(self, node: ast.expr, env: dict) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Name):
            return env.get(node.id, False)
        if isinstance(node, ast.Call):
            name = call_name(node)
            if name in UNORDERED_CONSTRUCTORS or name in UNORDERED_CALLS:
                return True
            return False
        if isinstance(node, ast.BinOp) and isinstance(
            node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)
        ):
            return self._is_unordered(node.left, env) or self._is_unordered(
                node.right, env
            )
        if isinstance(node, ast.IfExp):
            return self._is_unordered(node.body, env) or self._is_unordered(
                node.orelse, env
            )
        return False

    # -- expression scan -----------------------------------------------

    def _scan_expr(self, module, node, env, findings, func_name,
                   neutral=False):
        if isinstance(node, ast.Call):
            self._scan_call(module, node, env, findings, func_name, neutral)
            return
        if isinstance(node, (ast.ListComp, ast.GeneratorExp)):
            first = node.generators[0]
            if not neutral and self._is_unordered(first.iter, env):
                findings.append(
                    self.finding(
                        module, "D101", node,
                        "comprehension over an unordered collection builds "
                        "an ordered result — wrap the iterable in sorted()",
                    )
                )
            for child in ast.iter_child_nodes(node):
                self._scan_expr(module, child, env, findings, func_name)
            return
        if isinstance(node, ast.comprehension):
            self._scan_expr(module, node.iter, env, findings, func_name)
            for cond in node.ifs:
                self._scan_expr(module, cond, env, findings, func_name)
            return
        if isinstance(node, ast.BinOp) and isinstance(node.op, ast.Mod):
            if (
                isinstance(node.left, ast.Call)
                and call_name(node.left) in {"hash", "id"}
                and func_name != "__hash__"
            ):
                findings.append(
                    self.finding(
                        module, "D102", node,
                        f"`{call_name(node.left)}(...) % n` bucketing "
                        "follows the interpreter's hash layout — results "
                        "derived from it must be re-merged canonically",
                    )
                )
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.expr, ast.comprehension)):
                self._scan_expr(module, child, env, findings, func_name)

    def _scan_call(self, module, node, env, findings, func_name, neutral):
        name = call_name(node)
        # D102: sort keyed by hash()/id().
        if name in {"sorted", "sort"}:
            for keyword in node.keywords:
                if keyword.arg == "key" and self._is_hash_key(keyword.value):
                    findings.append(
                        self.finding(
                            module, "D102", node,
                            "sorting keyed by hash()/id() orders results by "
                            "interpreter layout, not by value",
                        )
                    )
        # D103: unseeded random / absolute clocks.
        self._scan_sources(module, node, findings)
        # D101: next(iter(unordered)) picks an arbitrary element.
        if (
            name == "next"
            and node.args
            and isinstance(node.args[0], ast.Call)
            and call_name(node.args[0]) == "iter"
            and node.args[0].args
            and self._is_unordered(node.args[0].args[0], env)
            and not neutral
        ):
            findings.append(
                self.finding(
                    module, "D101", node,
                    "next(iter(...)) over an unordered collection picks a "
                    "hash-layout-dependent element — use min()/sorted()",
                )
            )
        if name in NEUTRAL_CALLS:
            for arg in node.args:
                self._scan_expr(
                    module, arg, env, findings, func_name, neutral=True
                )
            for keyword in node.keywords:
                self._scan_expr(
                    module, keyword.value, env, findings, func_name
                )
            return
        if name in ORDERED_CALLS or name in SINK_CALLS:
            kind = "ordered sink" if name in SINK_CALLS else "positional consumer"
            for arg in node.args:
                if not neutral and self._is_unordered(arg, env):
                    findings.append(
                        self.finding(
                            module, "D101", node,
                            f"unordered collection passed to {kind} "
                            f"`{name}(...)` — wrap it in sorted() or a "
                            "canonical-order helper",
                        )
                    )
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.expr, ast.comprehension, ast.keyword)):
                value = child.value if isinstance(child, ast.keyword) else child
                self._scan_expr(
                    module, value, env, findings, func_name, neutral=neutral
                )

    def _scan_sources(self, module, node: ast.Call, findings) -> None:
        func = node.func
        if not isinstance(func, ast.Attribute):
            return
        if not isinstance(func.value, ast.Name):
            return
        receiver, attr = func.value.id, func.attr
        if receiver == "random" and attr not in {"Random", "seed"}:
            findings.append(
                self.finding(
                    module, "D103", node,
                    f"unseeded module-level `random.{attr}()` — use a "
                    "`random.Random(seed)` instance so runs reproduce",
                )
            )
        elif (receiver, attr) in _ABS_CLOCKS:
            findings.append(
                self.finding(
                    module, "D103", node,
                    f"absolute wall-clock `{receiver}.{attr}()` in library "
                    "code — results must not depend on the clock (use "
                    "perf_counter only for telemetry durations)",
                )
            )

    # -- loop-effect helpers -------------------------------------------

    def _is_hash_key(self, value: ast.expr) -> bool:
        if isinstance(value, ast.Name) and value.id in {"hash", "id"}:
            return True
        if isinstance(value, ast.Lambda):
            for inner in ast.walk(value.body):
                if isinstance(inner, ast.Call) and call_name(inner) in {
                    "hash",
                    "id",
                }:
                    return True
        return False

    def _ordered_effect(self, loop: ast.For, block) -> str | None:
        """The name of the ordered consumer a loop body feeds, if any.

        An append/extend into a collector that is later sorted (a
        ``collect then sort`` idiom) is order-safe and not reported.
        """
        for inner in ast.walk(loop):
            if isinstance(inner, (ast.Yield, ast.YieldFrom)):
                return "yield"
            if not isinstance(inner, ast.Call):
                continue
            name = call_name(inner)
            if name in SINK_CALLS:
                return name
            if name in ORDERED_EFFECTS and isinstance(inner.func, ast.Attribute):
                target = inner.func.value
                if isinstance(target, ast.Name) and self._sorted_later(
                    target.id, block, loop
                ):
                    continue
                return f".{name}"
        return None

    def _sorted_later(self, collector: str, block, loop) -> bool:
        """True when ``collector`` is sorted after ``loop`` in ``block``."""
        past = False
        for statement in block:
            if statement is loop:
                past = True
                continue
            if not past:
                continue
            for inner in ast.walk(statement):
                if not isinstance(inner, ast.Call):
                    continue
                name = call_name(inner)
                if name == "sort" and isinstance(inner.func, ast.Attribute):
                    target = inner.func.value
                    if isinstance(target, ast.Name) and target.id == collector:
                        return True
                if name == "sorted" and any(
                    isinstance(arg, ast.Name) and arg.id == collector
                    for arg in inner.args
                ):
                    return True
        return False
