"""Resource-lifecycle pass: every acquire has an exception-safe release.

PR 9's leak oracle (``repro.engine.shm.active_segments``) catches leaked
shared-memory segments at test time; this pass catches the *shape* of a
leak at lint time.  Tracked acquisitions — ``SharedMemory(...)``,
``SegmentPool(...)``, ``WorkerPool(...)``, ``Pipe()`` — must reach a
release (``close``/``unlink``/``shutdown``/``terminate``/``join``/…)
on **all** paths, including exception edges.  Three rules:

``L301`` unreleased resource
    The acquired value stays in a local and no release call on it exists
    (or the value is dropped on the floor entirely).

``L302`` release unreachable on exception paths
    A release exists but only on the fall-through path — an exception
    between acquire and release leaks.  Releases are exception-safe when
    the acquire is a ``with`` context or the release sits in a
    ``finally`` block.

``L303`` owner class without teardown
    The acquire is stored on ``self`` but the owning class has no
    teardown method (``close``/``shutdown``/``stop``/``teardown``/
    ``__exit__``/``__del__``) that touches the attribute.

Ownership transfer is respected: a resource that escapes the function —
returned, yielded, passed to a constructor or any call, stored into a
container or attribute — becomes its new owner's problem and is not
flagged here (the owner's class is, via L303, when it is a class).
"""

from __future__ import annotations

import ast

from repro.checks.base import (
    CheckPass,
    Finding,
    SourceModule,
    call_name,
    parent_map,
)

#: Constructor names whose result owns an OS-level resource.
ACQUIRE_CALLS = {"SharedMemory", "SegmentPool", "WorkerPool", "Pipe"}

#: Method names that count as releasing a resource.
RELEASE_METHODS = {
    "close",
    "unlink",
    "shutdown",
    "terminate",
    "join",
    "release",
    "stop",
    "kill",
}

#: Methods an owner class may use to tear its resources down.
TEARDOWN_METHODS = {"close", "shutdown", "stop", "teardown", "__exit__", "__del__"}


class LifecyclePass(CheckPass):
    name = "lifecycle"
    description = (
        "shm segments, segment pools, worker pools and pipes must be "
        "released on every path"
    )

    def run(self, module: SourceModule) -> list[Finding]:
        findings: list[Finding] = []
        parents = parent_map(module.tree)
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Call) and call_name(node) in ACQUIRE_CALLS:
                self._check_acquire(module, node, parents, findings)
        return findings

    # ------------------------------------------------------------------

    def _check_acquire(self, module, node: ast.Call, parents, findings):
        statement, in_with, in_call = self._climb(node, parents)
        if in_with or in_call:
            return  # context-managed, or ownership transferred to a callee
        if statement is None:
            return
        if isinstance(statement, (ast.Return, ast.Yield, ast.YieldFrom)):
            return  # ownership transferred to the caller
        function = self._enclosing_function(statement, parents)
        if isinstance(statement, ast.Expr):
            findings.append(
                self.finding(
                    module, "L301", node,
                    f"`{call_name(node)}(...)` result discarded — the "
                    "resource can never be released",
                )
            )
            return
        if not isinstance(statement, (ast.Assign, ast.AnnAssign)):
            return
        targets = (
            statement.targets
            if isinstance(statement, ast.Assign)
            else [statement.target]
        )
        for target in targets:
            names: list[ast.expr] = (
                list(target.elts) if isinstance(target, ast.Tuple) else [target]
            )
            for name in names:
                if isinstance(name, ast.Attribute):
                    self._check_attribute_store(
                        module, node, name, parents, findings
                    )
                elif isinstance(name, ast.Name):
                    self._check_local(
                        module, node, name.id, function, parents, findings
                    )

    def _check_local(self, module, node, name, function, parents, findings):
        if function is None:
            return  # module-level singletons are a stats/registry concern
        if self._escapes(name, function):
            return
        release = self._release_site(name, function)
        if release is None:
            findings.append(
                self.finding(
                    module, "L301", node,
                    f"`{name}` acquires `{call_name(node)}(...)` but is "
                    "never released — add a close/unlink on every path",
                )
            )
            return
        if not self._in_finally(release, parents):
            findings.append(
                self.finding(
                    module, "L302", node,
                    f"`{name}` is released only on the fall-through path — "
                    "an exception before the release leaks the resource; "
                    "use try/finally or a with block",
                )
            )

    def _check_attribute_store(self, module, node, target, parents, findings):
        attr = target.attr
        owner = self._enclosing_class(target, parents)
        if owner is None:
            return
        for method in owner.body:
            if (
                isinstance(method, (ast.FunctionDef, ast.AsyncFunctionDef))
                and method.name in TEARDOWN_METHODS
            ):
                for inner in ast.walk(method):
                    if isinstance(inner, ast.Attribute) and inner.attr == attr:
                        return
        findings.append(
            self.finding(
                module, "L303", node,
                f"`self.{attr}` holds a `{call_name(node)}(...)` but class "
                f"`{owner.name}` has no teardown method releasing it",
            )
        )

    # -- structure helpers ---------------------------------------------

    def _climb(self, node, parents):
        """The enclosing statement, noting with-items and call-wrapping."""
        in_with = False
        in_call = False
        current = node
        while True:
            parent = parents.get(current)
            if parent is None:
                return None, in_with, in_call
            if isinstance(parent, ast.withitem):
                in_with = True
            if isinstance(parent, ast.Call) and current is not parent.func:
                in_call = True
            if isinstance(parent, ast.stmt):
                return parent, in_with, in_call
            current = parent

    def _enclosing_function(self, node, parents):
        current = parents.get(node)
        while current is not None:
            if isinstance(current, (ast.FunctionDef, ast.AsyncFunctionDef)):
                return current
            current = parents.get(current)
        return None

    def _enclosing_class(self, node, parents):
        current = parents.get(node)
        while current is not None:
            if isinstance(current, ast.ClassDef):
                return current
            current = parents.get(current)
        return None

    def _escapes(self, name: str, function) -> bool:
        """True when ``name`` leaves the function's ownership."""
        for node in ast.walk(function):
            if isinstance(node, ast.Call):
                for arg in list(node.args) + [k.value for k in node.keywords]:
                    for inner in ast.walk(arg):
                        if isinstance(inner, ast.Name) and inner.id == name:
                            return True
            elif isinstance(node, (ast.Return, ast.Yield, ast.YieldFrom)):
                value = node.value
                if value is not None:
                    for inner in ast.walk(value):
                        if isinstance(inner, ast.Name) and inner.id == name:
                            return True
            elif isinstance(node, ast.Assign):
                if any(
                    isinstance(t, (ast.Attribute, ast.Subscript))
                    for t in node.targets
                ):
                    for inner in ast.walk(node.value):
                        if isinstance(inner, ast.Name) and inner.id == name:
                            return True
        return False

    def _release_site(self, name: str, function):
        for node in ast.walk(function):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in RELEASE_METHODS
                and isinstance(node.func.value, ast.Name)
                and node.func.value.id == name
            ):
                return node
        return None

    def _in_finally(self, node, parents) -> bool:
        current = node
        while True:
            parent = parents.get(current)
            if parent is None:
                return False
            if isinstance(parent, ast.Try) and any(
                current is s or self._contains(s, current)
                for s in parent.finalbody
            ):
                return True
            current = parent

    @staticmethod
    def _contains(tree, node) -> bool:
        return any(inner is node for inner in ast.walk(tree))
