"""Entry point: ``python -m repro.checks``."""

import sys

from repro.checks.driver import main

sys.exit(main())
