"""Stats-registry pass: no module-global stats outside the registry.

The library keeps exactly four process-wide stats accumulators —
``MATCHER_STATS``, ``INSTANTIATION_STATS``, ``TRANSPORT_STATS``,
``SERVING_STATS`` — registered as groups of
:func:`repro.obs.default_registry`, so one ``reset_all()``/``collect()``
surface covers every counter.  A new ad-hoc module global
(``FOO_STATS = FooStats()``) would silently escape that surface: scopes
would not isolate it, the autouse test fixture would not zero it, and
benchmark artifacts would not snapshot it.

Rule ``S501`` flags any module-level ``*_STATS`` assignment (or
instantiation of a ``*Stats`` class) under ``src/`` that is not in the
registered allowlist below.  Adding a genuinely new group means
registering it in ``repro.obs.default_registry`` *and* allowlisting it
here, in one commit.

(This pass is the former standalone ``tools/check_stats_registry.py``,
folded into the ``repro.checks`` framework.)
"""

from __future__ import annotations

import ast

from repro.checks.base import CheckPass, Finding, SourceModule

#: The registered stats globals: (path suffix under src/, global name).
ALLOWED = {
    ("repro/logic/homomorphisms.py", "MATCHER_STATS"),
    ("repro/rules/rule.py", "INSTANTIATION_STATS"),
    ("repro/engine/workers.py", "TRANSPORT_STATS"),
    ("repro/serving/stats.py", "SERVING_STATS"),
}


def _is_stats_call(value: ast.expr | None) -> bool:
    """True for ``SomethingStats(...)`` instantiations."""
    if not isinstance(value, ast.Call):
        return False
    func = value.func
    name = func.id if isinstance(func, ast.Name) else (
        func.attr if isinstance(func, ast.Attribute) else ""
    )
    return name.endswith("Stats")


class StatsRegistryPass(CheckPass):
    name = "stats-registry"
    description = (
        "module-global stats counters must be groups of "
        "repro.obs.default_registry"
    )

    def wants(self, module: SourceModule) -> bool:
        rel = module.rel.replace("\\", "/")
        return rel.startswith("src/") and "/checks/" not in rel

    def run(self, module: SourceModule) -> list[Finding]:
        rel = module.rel.replace("\\", "/")
        suffix = rel.split("src/", 1)[-1]
        findings: list[Finding] = []
        for node in module.tree.body:
            targets: list[ast.expr] = []
            value: ast.expr | None = None
            if isinstance(node, ast.Assign):
                targets, value = node.targets, node.value
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                targets, value = [node.target], node.value
            for target in targets:
                if not isinstance(target, ast.Name):
                    continue
                if not (target.id.endswith("_STATS") or _is_stats_call(value)):
                    continue
                if (suffix, target.id) in ALLOWED:
                    continue
                findings.append(
                    self.finding(
                        module, "S501", node,
                        f"module-global stats counter `{target.id}` is not "
                        "in the metrics registry — register it in "
                        "repro.obs.default_registry and allowlist it in "
                        "repro.checks.stats",
                    )
                )
        return findings
