"""``python -m repro.checks``: run every pass, apply markers + baseline.

The driver parses each file once, hands the shared
:class:`~repro.checks.base.SourceModule` to every pass that wants it,
then filters the findings through two suppression layers:

* **markers** — ``# checks: allow[...]`` comments at the site, carrying
  a mandatory justification (see ``src/repro/checks/README.md``);
* **baseline** — ``tools/checks_baseline.json``, fingerprint-keyed
  grandfathered findings, each with a written justification.

Exit status is 0 exactly when every finding is marker-allowed or
baselined.  ``--json PATH`` additionally writes the machine-readable
report CI uploads as an artifact; stale baseline entries (fingerprints
no longer produced) are reported so the baseline only ever shrinks.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys

from repro.checks.base import (
    Finding,
    SourceModule,
    assign_fingerprints,
    load_baseline,
)
from repro.checks.determinism import DeterminismPass
from repro.checks.hotpath import HotPathPass
from repro.checks.lifecycle import LifecyclePass
from repro.checks.stats import StatsRegistryPass
from repro.checks.transport import TransportPass

DEFAULT_PATHS = ("src", "tools", "benchmarks")
DEFAULT_BASELINE = "tools/checks_baseline.json"


def all_passes():
    """The registered passes, in execution order."""
    return [
        DeterminismPass(),
        TransportPass(),
        LifecyclePass(),
        HotPathPass(),
        StatsRegistryPass(),
    ]


def _python_files(root: pathlib.Path, paths) -> list[pathlib.Path]:
    files: list[pathlib.Path] = []
    for raw in paths:
        path = pathlib.Path(raw)
        if not path.is_absolute():
            path = root / path
        if path.is_dir():
            files.extend(sorted(path.rglob("*.py")))
        elif path.suffix == ".py":
            files.append(path)
    return files


def load_modules(
    root: pathlib.Path, paths
) -> tuple[list[SourceModule], list[Finding]]:
    modules: list[SourceModule] = []
    errors: list[Finding] = []
    for path in _python_files(root, paths):
        try:
            rel = path.relative_to(root).as_posix()
        except ValueError:
            rel = path.as_posix()
        source = path.read_text()
        try:
            modules.append(SourceModule.from_source(source, rel, path))
        except SyntaxError as error:
            errors.append(
                Finding(
                    "checks", "E999", rel, error.lineno or 1,
                    f"syntax error: {error.msg}",
                )
            )
    return modules, errors


def run_checks(root: pathlib.Path, paths=DEFAULT_PATHS):
    """Run every pass; returns ``(kept, allowed, modules)``.

    ``kept`` are the live findings (marker suppression already applied,
    fingerprints assigned); ``allowed`` the marker-suppressed ones.
    """
    modules, errors = load_modules(root, paths)
    kept: list[Finding] = list(errors)
    allowed: list[Finding] = []
    passes = all_passes()
    for module in modules:
        kept.extend(module.marker_findings)
        for check in passes:
            if not check.wants(module):
                continue
            for finding in check.run(module):
                if module.allowed(finding):
                    allowed.append(finding)
                else:
                    kept.append(finding)
    assign_fingerprints(kept)
    kept.sort(key=lambda f: (f.rel, f.lineno, f.rule))
    return kept, allowed, modules


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.checks",
        description="Project-native static analysis: determinism, "
        "transport-boundary, resource-lifecycle, hot-path and "
        "stats-registry passes.",
    )
    parser.add_argument(
        "paths", nargs="*", default=list(DEFAULT_PATHS),
        help="files or directories to scan (default: src tools benchmarks)",
    )
    parser.add_argument(
        "--root", default=".", help="repo root the paths are relative to"
    )
    parser.add_argument(
        "--baseline", default=DEFAULT_BASELINE,
        help=f"baseline file (default: {DEFAULT_BASELINE})",
    )
    parser.add_argument(
        "--no-baseline", action="store_true",
        help="ignore the baseline: report every live finding",
    )
    parser.add_argument(
        "--write-baseline", action="store_true",
        help="rewrite the baseline from the current findings (placeholders "
        "for justification must be filled in by hand)",
    )
    parser.add_argument(
        "--json", dest="json_path", metavar="PATH",
        help="write the machine-readable report to PATH ('-' for stdout)",
    )
    parser.add_argument(
        "--list-passes", action="store_true", help="list passes and exit"
    )
    args = parser.parse_args(argv)

    if args.list_passes:
        for check in all_passes():
            print(f"{check.name}: {check.description}")
        return 0

    root = pathlib.Path(args.root).resolve()
    kept, allowed, modules = run_checks(root, args.paths)

    baseline_path = pathlib.Path(args.baseline)
    if not baseline_path.is_absolute():
        baseline_path = root / baseline_path

    if args.write_baseline:
        entries = [
            {
                "fingerprint": f.fingerprint,
                "path": f.rel,
                "rule": f.rule,
                "snippet": f.snippet,
                "justification": "TODO: justify or fix",
            }
            for f in kept
        ]
        baseline_path.write_text(json.dumps(entries, indent=2) + "\n")
        print(f"repro.checks: wrote {len(entries)} baseline entries to "
              f"{baseline_path}")
        return 0

    baseline = {} if args.no_baseline else load_baseline(baseline_path)
    live = [f for f in kept if f.fingerprint not in baseline]
    baselined = [f for f in kept if f.fingerprint in baseline]
    produced = {f.fingerprint for f in kept}
    stale = sorted(fp for fp in baseline if fp not in produced)

    # With `--json -` the report owns stdout; keep it parseable by
    # routing the human-readable lines to stderr.
    human = sys.stderr if args.json_path == "-" else sys.stdout
    for finding in live:
        print(finding.render(), file=human)
    for fingerprint in stale:
        entry = baseline[fingerprint]
        print(
            f"repro.checks: stale baseline entry {fingerprint} "
            f"({entry.get('path')}: {entry.get('rule')}) — the finding is "
            "gone; drop it from the baseline",
            file=sys.stderr,
        )

    if args.json_path:
        report = {
            "version": 1,
            "passes": [
                {"name": c.name, "description": c.description}
                for c in all_passes()
            ],
            "files": len(modules),
            "findings": [f.to_json() for f in live],
            "baselined": [f.to_json() for f in baselined],
            "marker_allowed": [f.to_json() for f in allowed],
            "stale_baseline": stale,
            "clean": not live,
        }
        payload = json.dumps(report, indent=2) + "\n"
        if args.json_path == "-":
            sys.stdout.write(payload)
        else:
            out = pathlib.Path(args.json_path)
            out.write_text(payload)

    print(
        f"repro.checks: {len(all_passes())} passes over {len(modules)} "
        f"files: {len(live)} findings "
        f"({len(allowed)} marker-allowed, {len(baselined)} baselined"
        + (f", {len(stale)} stale baseline entries" if stale else "")
        + ")",
        file=human,
    )
    return 1 if live else 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
