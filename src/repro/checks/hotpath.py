"""Hot-path discipline pass: no per-iteration allocation in marked code.

Functions opted in with a ``# checks: hot`` marker on (or above) their
``def`` line are the engine's measured inner loops — the homomorphism
matcher's search, the columnar ingest, the varint packers.  PR 1 and
PR 9 earned their speedups largely by hoisting allocations and
attribute loads out of exactly these loops; this pass keeps them out.
Three rules, applied to every ``for``/``while`` body inside a hot
function:

``H401`` comprehension in loop
    A list/set/dict comprehension or generator expression inside a loop
    body allocates a fresh collection every iteration.

``H402`` constructor in loop
    Calls to ``list``/``dict``/``set``/``tuple``/``frozenset``, to
    ``.copy()``, or to the ``Substitution`` constructor inside a loop
    body.  (The blessed fast path ``Substitution._from_clean`` at a
    yield point is the idiomatic escape — allowlist it where the
    allocation *is* the output.)

``H403`` repeated deep attribute load
    The same ``a.b.c`` chain (two or more attribute hops) loaded twice
    or more in one loop body, with the root not reassigned inside the
    loop — hoist it to a local before the loop, as the packers hoist
    ``out.append``.
"""

from __future__ import annotations

import ast
from collections import Counter

from repro.checks.base import CheckPass, Finding, SourceModule, attr_chain, call_name

#: Constructor calls that allocate per iteration.
ALLOC_CALLS = {"list", "dict", "set", "tuple", "frozenset", "Substitution"}

#: Attribute-call suffixes that copy per iteration.
COPY_METHODS = {"copy", "deepcopy"}


class HotPathPass(CheckPass):
    name = "hotpath"
    description = (
        "per-iteration allocations and repeated attribute chains in "
        "functions marked `# checks: hot`"
    )

    def run(self, module: SourceModule) -> list[Finding]:
        findings: list[Finding] = []
        for node in ast.walk(module.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if module.is_hot(node):
                    self._check_function(module, node, findings)
        return findings

    # ------------------------------------------------------------------

    def _check_function(self, module, function, findings):
        # Nested loops share body nodes; dedupe so one allocation is one
        # finding no matter how many loops enclose it.
        collected: dict[tuple, Finding] = {}
        for node in ast.walk(function):
            if isinstance(node, (ast.For, ast.AsyncFor, ast.While)):
                loop_findings: list[Finding] = []
                self._check_loop(module, function.name, node, loop_findings)
                for finding in loop_findings:
                    key = (finding.rule, finding.lineno, finding.message)
                    collected.setdefault(key, finding)
        findings.extend(
            sorted(collected.values(), key=lambda f: (f.lineno, f.rule))
        )

    def _check_loop(self, module, func_name, loop, findings):
        body_nodes = [n for stmt in loop.body for n in ast.walk(stmt)]
        chains: Counter[str] = Counter()
        assigned_roots = self._assigned_names(loop)
        for node in body_nodes:
            if isinstance(
                node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)
            ):
                findings.append(
                    self.finding(
                        module, "H401", node,
                        f"comprehension inside `{func_name}`'s loop "
                        "allocates per iteration — hoist it or build "
                        "incrementally",
                    )
                )
            elif isinstance(node, ast.Call):
                name = call_name(node)
                if isinstance(node.func, ast.Name) and name in ALLOC_CALLS:
                    findings.append(
                        self.finding(
                            module, "H402", node,
                            f"`{name}(...)` inside `{func_name}`'s loop "
                            "allocates per iteration — hoist or reuse",
                        )
                    )
                elif (
                    isinstance(node.func, ast.Attribute)
                    and node.func.attr in COPY_METHODS
                ):
                    findings.append(
                        self.finding(
                            module, "H402", node,
                            f"`.{node.func.attr}()` inside `{func_name}`'s "
                            "loop copies per iteration — restructure to "
                            "mutate-and-undo or hoist",
                        )
                    )
            elif isinstance(node, ast.Attribute) and isinstance(
                node.ctx, ast.Load
            ):
                chain = attr_chain(node)
                if chain is not None and chain.count(".") >= 2:
                    root = chain.split(".", 1)[0]
                    if root not in assigned_roots:
                        chains[chain] += 1
        for chain, count in sorted(chains.items()):
            if count >= 2:
                findings.append(
                    self.finding(
                        module, "H403", loop,
                        f"attribute chain `{chain}` loaded {count}x per "
                        f"iteration in `{func_name}` — bind it to a local "
                        "before the loop",
                    )
                )

    @staticmethod
    def _assigned_names(loop) -> set[str]:
        names: set[str] = set()
        for node in ast.walk(loop):
            if isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
                targets = (
                    node.targets
                    if isinstance(node, ast.Assign)
                    else [node.target]
                )
                for target in targets:
                    for inner in ast.walk(target):
                        if isinstance(inner, ast.Name):
                            names.add(inner.id)
            elif isinstance(node, (ast.For, ast.AsyncFor)):
                for inner in ast.walk(node.target):
                    if isinstance(inner, ast.Name):
                        names.add(inner.id)
        return names
