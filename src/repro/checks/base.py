"""Framework core for the project-native static analysis passes.

The repo's bit-identical-results guarantee is enforced dynamically by the
equivalence-matrix tests; this package enforces the *invariants behind*
that guarantee at lint time.  A pass is a small AST (plus lightweight
dataflow) analyzer over one :class:`SourceModule`; the driver
(:mod:`repro.checks.driver`) parses every file once, hands each module to
every pass that wants it, applies the in-source markers and the committed
baseline, and renders human and JSON reports.

Markers (see ``src/repro/checks/README.md``)
--------------------------------------------
``# checks: hot``
    On (or directly above) a ``def`` line: opt the function into the
    hot-path discipline pass.
``# checks: allow[tag] -- justification``
    Suppress findings with pass name or rule id ``tag`` on this line or
    the next.  The justification text is mandatory — an allow without
    one is itself a finding (rule ``C001``).
``# checks: allow-file[tag] -- justification``
    Same, for the whole file.

Baseline
--------
Grandfathered findings live in ``tools/checks_baseline.json`` keyed by
:func:`fingerprint` — a hash of the pass, rule, path and *normalized
source line* (not the line number), so the baseline survives unrelated
edits above a finding but goes stale the moment the flagged code
changes.
"""

from __future__ import annotations

import ast
import hashlib
import io
import json
import pathlib
import re
import tokenize
from dataclasses import dataclass, field
from typing import Iterable

#: Registered pass names, in driver execution order.
PASS_NAMES = (
    "determinism",
    "transport",
    "lifecycle",
    "hotpath",
    "stats-registry",
)

_MARKER = re.compile(
    r"#\s*checks:\s*"
    r"(?P<directive>hot|allow\[(?P<tags>[^\]]+)\]|allow-file\[(?P<ftags>[^\]]+)\])"
    r"\s*(?:[-—:]+\s*(?P<why>.*))?$"
)


@dataclass
class Finding:
    """One violation reported by a pass."""

    pass_name: str
    rule: str
    rel: str
    lineno: int
    message: str
    snippet: str = ""
    fingerprint: str = ""

    def render(self) -> str:
        return (
            f"{self.rel}:{self.lineno}: [{self.pass_name} {self.rule}] "
            f"{self.message}"
        )

    def to_json(self) -> dict:
        return {
            "pass": self.pass_name,
            "rule": self.rule,
            "path": self.rel,
            "line": self.lineno,
            "message": self.message,
            "snippet": self.snippet,
            "fingerprint": self.fingerprint,
        }


@dataclass
class SourceModule:
    """One parsed file plus its markers, shared by every pass."""

    path: pathlib.Path
    rel: str
    source: str
    tree: ast.Module
    lines: list[str] = field(default_factory=list)
    #: lineno -> tags allowed on that line (and the line below it).
    allows: dict[int, set[str]] = field(default_factory=dict)
    file_allows: set[str] = field(default_factory=set)
    #: linenos carrying a ``# checks: hot`` marker.
    hot_lines: set[int] = field(default_factory=set)
    #: marker problems found while parsing (rule C001).
    marker_findings: list[Finding] = field(default_factory=list)

    @classmethod
    def from_source(cls, source: str, rel: str, path: pathlib.Path | None = None):
        tree = ast.parse(source, filename=rel)
        module = cls(
            path=path or pathlib.Path(rel),
            rel=rel,
            source=source,
            tree=tree,
            lines=source.splitlines(),
        )
        module._scan_markers()
        return module

    def _comment_lines(self) -> list[tuple[int, str]]:
        """``(lineno, comment_text)`` for every real comment token.

        Tokenizing (rather than string-scanning) keeps marker syntax
        mentioned inside docstrings — this package documents itself —
        from being parsed as live markers.
        """
        comments: list[tuple[int, str]] = []
        try:
            tokens = tokenize.generate_tokens(io.StringIO(self.source).readline)
            for token in tokens:
                if token.type == tokenize.COMMENT:
                    comments.append((token.start[0], token.string))
        except tokenize.TokenError:  # pragma: no cover - ast parsed already
            pass
        return comments

    def _scan_markers(self) -> None:
        for lineno, line in self._comment_lines():
            if re.match(r"#\s*checks:", line) is None:
                continue
            match = _MARKER.search(line)
            if match is None:
                self.marker_findings.append(
                    Finding(
                        "checks", "C001", self.rel, lineno,
                        "malformed `# checks:` marker (expected `hot`, "
                        "`allow[tag] -- why` or `allow-file[tag] -- why`)",
                        snippet=line.strip(),
                    )
                )
                continue
            directive = match.group("directive")
            why = (match.group("why") or "").strip()
            if directive == "hot":
                self.hot_lines.add(lineno)
                continue
            tags = {
                t.strip() for t in
                (match.group("tags") or match.group("ftags")).split(",")
                if t.strip()
            }
            if not why:
                self.marker_findings.append(
                    Finding(
                        "checks", "C001", self.rel, lineno,
                        "allow marker without a justification — write "
                        "`# checks: allow[tag] -- why this is safe`",
                        snippet=line.strip(),
                    )
                )
                continue
            if directive.startswith("allow-file"):
                self.file_allows |= tags
            else:
                self.allows.setdefault(lineno, set()).update(tags)
                # A justification may continue over further comment
                # lines; attribute the marker to the next code line too.
                self.allows.setdefault(
                    self._next_code_line(lineno), set()
                ).update(tags)

    def _next_code_line(self, lineno: int) -> int:
        """The first non-blank, non-comment line after ``lineno``."""
        for offset, line in enumerate(self.lines[lineno:], start=lineno + 1):
            stripped = line.strip()
            if stripped and not stripped.startswith("#"):
                return offset
        return lineno

    def allowed(self, finding: Finding) -> bool:
        """True when a marker suppresses ``finding``."""
        keys = {finding.pass_name, finding.rule}
        if keys & self.file_allows:
            return True
        for lineno in (finding.lineno, finding.lineno - 1):
            if keys & self.allows.get(lineno, set()):
                return True
        return False

    def is_hot(self, func: ast.FunctionDef | ast.AsyncFunctionDef) -> bool:
        """True when ``func`` carries a ``# checks: hot`` marker."""
        first = func.decorator_list[0].lineno if func.decorator_list else func.lineno
        return bool(self.hot_lines & {func.lineno, first - 1, func.lineno - 1})


class CheckPass:
    """Base class: one named analysis over source modules."""

    name = "base"
    description = ""

    def wants(self, module: SourceModule) -> bool:
        return True

    def run(self, module: SourceModule) -> list[Finding]:  # pragma: no cover
        raise NotImplementedError

    # -- helpers shared by the concrete passes -------------------------

    def finding(
        self, module: SourceModule, rule: str, node: ast.AST, message: str
    ) -> Finding:
        lineno = getattr(node, "lineno", 1)
        snippet = ""
        if 1 <= lineno <= len(module.lines):
            snippet = module.lines[lineno - 1].strip()
        return Finding(self.name, rule, module.rel, lineno, message, snippet)


def call_name(node: ast.AST) -> str:
    """The last dotted segment of a call target: ``a.b.c(...)`` -> ``c``."""
    if isinstance(node, ast.Call):
        node = node.func
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return ""


def attr_chain(node: ast.AST) -> str | None:
    """``a.b.c`` as a dotted string, or None for non-trivial roots."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return ".".join(reversed(parts))


def parent_map(tree: ast.AST) -> dict[ast.AST, ast.AST]:
    """Child -> parent links for ancestor walks."""
    parents: dict[ast.AST, ast.AST] = {}
    for parent in ast.walk(tree):
        for child in ast.iter_child_nodes(parent):
            parents[child] = parent
    return parents


def fingerprint(find: Finding, occurrence: int) -> str:
    """Stable identity of a finding: content-addressed, not line-addressed.

    Hashes the pass, rule, path, whitespace-normalized source line and
    the occurrence index (the Nth identical line in the file), so
    baselines survive edits elsewhere in the file.
    """
    normalized = " ".join(find.snippet.split())
    key = f"{find.pass_name}:{find.rule}:{find.rel}:{normalized}:{occurrence}"
    return hashlib.sha1(key.encode()).hexdigest()[:16]


def assign_fingerprints(findings: Iterable[Finding]) -> None:
    """Stamp each finding's fingerprint, disambiguating identical lines."""
    seen: dict[tuple, int] = {}
    for find in sorted(findings, key=lambda f: (f.rel, f.lineno, f.rule)):
        key = (find.pass_name, find.rule, find.rel, " ".join(find.snippet.split()))
        occurrence = seen.get(key, 0)
        seen[key] = occurrence + 1
        find.fingerprint = fingerprint(find, occurrence)


def load_baseline(path: pathlib.Path) -> dict[str, dict]:
    """``fingerprint -> entry`` from the committed baseline file.

    Every entry must carry a non-empty ``justification``; the driver
    treats a missing one as a hard error — the baseline is a record of
    *argued* exceptions, not a mute list.
    """
    if not path.exists():
        return {}
    entries = json.loads(path.read_text())
    baseline: dict[str, dict] = {}
    for entry in entries:
        if not str(entry.get("justification", "")).strip():
            raise ValueError(
                f"baseline entry {entry.get('fingerprint')!r} in {path} "
                f"has no justification"
            )
        baseline[entry["fingerprint"]] = entry
    return baseline
