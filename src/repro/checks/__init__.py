"""Project-native static analysis for the chase engine's invariants.

``python -m repro.checks`` runs five passes over ``src/``, ``tools/``
and ``benchmarks/`` in one process:

* :mod:`~repro.checks.determinism` — unordered iteration must not reach
  ordered sinks; no hash-order reliance or nondeterministic sources;
* :mod:`~repro.checks.transport` — engine pipe traffic goes through the
  :mod:`repro.engine.wire` codecs or the pickle-envelope allowlist;
* :mod:`~repro.checks.lifecycle` — every shm/pool/pipe acquire has an
  exception-safe release;
* :mod:`~repro.checks.hotpath` — functions marked ``# checks: hot``
  reject per-iteration allocations;
* :mod:`~repro.checks.stats` — module-global stats counters live in the
  metrics registry.

See ``src/repro/checks/README.md`` for the marker syntax and the
baseline workflow, and ``src/repro/engine/README.md`` ("Invariants")
for the contracts each pass enforces.
"""

from repro.checks.base import (
    CheckPass,
    Finding,
    SourceModule,
    assign_fingerprints,
    load_baseline,
)
from repro.checks.driver import all_passes, main, run_checks

__all__ = [
    "CheckPass",
    "Finding",
    "SourceModule",
    "all_passes",
    "assign_fingerprints",
    "load_baseline",
    "main",
    "run_checks",
]
