"""Transport-boundary pass: engine traffic goes through the wire codec.

Everything crossing a :class:`~repro.engine.workers.WorkerPool` pipe is
either an interned-id buffer built by :mod:`repro.engine.wire` or a
small pickled *envelope* (a command tuple, a :func:`pack_reply` reply, a
rule list).  A raw pickle of a domain object — ``Atom``, ``Instance``,
``Trigger``, ``Substitution`` — bypasses the codec: it re-ships symbols
the tables already interned, breaks the deterministic byte accounting
that ``tools/check_transport_budget.py`` gates, and silently reverts
the PR 9 transport win.  Four rules, scoped to ``src/repro/engine/``:

``T201`` pickle outside the protocol endpoints
    ``pickle.dumps``/``pickle.loads`` may appear only in the two
    envelope modules (``workers.py``, ``scheduler.py``) — everywhere
    else in the engine the codec is the only serializer.

``T202`` raw pickle of domain objects
    Inside the envelope modules, every ``pickle.dumps`` argument must be
    a command tuple (a literal whose first element is a string tag), a
    ``pack_reply(...)`` envelope, or a name bound to one of those; and
    no pickled expression may mention a domain object name.

``T203`` untyped pipe traffic
    ``conn.send(obj)`` / ``conn.recv()`` pickle implicitly with no byte
    accounting; the protocol uses ``send_bytes``/``recv_bytes`` so every
    payload is counted in ``TRANSPORT_STATS``.

``T204`` hand-built reply tuples
    A literal ``("ok", ...)`` / ``("error", ...)`` bypasses
    :func:`repro.engine.wire.pack_reply` and loses the fixed-size
    timing envelope that keeps reply byte counts deterministic.
"""

from __future__ import annotations

import ast

from repro.checks.base import CheckPass, Finding, SourceModule, call_name

#: The two protocol endpoints where envelope pickling is legitimate.
ENVELOPE_MODULES = {
    "src/repro/engine/workers.py",
    "src/repro/engine/scheduler.py",
}

#: Identifiers whose appearance inside a pickled expression marks a
#: domain object crossing the boundary raw.
DOMAIN_NAMES = {
    "Atom",
    "Instance",
    "Trigger",
    "Substitution",
    "atom",
    "atoms",
    "instance",
    "trigger",
    "triggers",
    "substitution",
}

_REPLY_STATUS = {"ok", "error"}


class TransportPass(CheckPass):
    name = "transport"
    description = (
        "raw pickles, untyped pipe sends and hand-built replies in the "
        "engine's worker protocol"
    )

    def wants(self, module: SourceModule) -> bool:
        return "repro/engine/" in module.rel.replace("\\", "/")

    def run(self, module: SourceModule) -> list[Finding]:
        findings: list[Finding] = []
        rel = module.rel.replace("\\", "/")
        is_envelope = rel in ENVELOPE_MODULES or rel.endswith(
            ("engine/workers.py", "engine/scheduler.py")
        )
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Call):
                self._check_call(module, node, is_envelope, findings)
            elif isinstance(node, ast.Tuple):
                self._check_reply_tuple(module, node, findings)
        return findings

    # ------------------------------------------------------------------

    def _check_call(self, module, node: ast.Call, is_envelope, findings):
        func = node.func
        if (
            isinstance(func, ast.Attribute)
            and isinstance(func.value, ast.Name)
            and func.value.id == "pickle"
            and func.attr in {"dumps", "loads", "dump", "load"}
        ):
            if not is_envelope:
                findings.append(
                    self.finding(
                        module, "T201", node,
                        f"pickle.{func.attr} outside the protocol "
                        "endpoints — engine payloads go through "
                        "repro.engine.wire codecs",
                    )
                )
                return
            if func.attr in {"dumps", "dump"} and node.args:
                self._check_dumped(module, node, findings)
            return
        if (
            isinstance(func, ast.Attribute)
            and func.attr in {"send", "recv"}
            and self._pipe_receiver(func.value)
        ):
            findings.append(
                self.finding(
                    module, "T203", node,
                    f"untyped pipe `.{func.attr}()` pickles implicitly "
                    "with no byte accounting — use "
                    f"`.{func.attr}_bytes()` with an explicit envelope",
                )
            )

    def _check_dumped(self, module, node: ast.Call, findings):
        arg = node.args[0]
        if self._mentions_domain(arg):
            findings.append(
                self.finding(
                    module, "T202", node,
                    "pickle.dumps of an expression mentioning a domain "
                    "object — ship it through the wire codec (or "
                    "allowlist this envelope with a justification)",
                )
            )
            return
        if self._is_envelope_shaped(module, node, arg):
            return
        findings.append(
            self.finding(
                module, "T202", node,
                "pickle.dumps of a value that is neither a command tuple "
                "nor a pack_reply envelope — raw pickles bypass the wire "
                "codec and the transport budget",
            )
        )

    def _is_envelope_shaped(self, module, call: ast.Call, arg: ast.expr) -> bool:
        if isinstance(arg, ast.Tuple):
            return bool(arg.elts) and isinstance(
                arg.elts[0], ast.Constant
            ) and isinstance(arg.elts[0].value, str)
        if isinstance(arg, ast.Call):
            return call_name(arg) == "pack_reply"
        if isinstance(arg, ast.Name):
            values = self._local_bindings(module, call, arg.id)
            return bool(values) and all(
                self._is_envelope_shaped(module, call, value)
                for value in values
            )
        return False

    def _local_bindings(self, module, site: ast.AST, name: str) -> list[ast.expr]:
        """Every value assigned to ``name`` in the function around ``site``."""
        enclosing: ast.AST | None = None
        for node in ast.walk(module.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                span_end = getattr(node, "end_lineno", node.lineno)
                if node.lineno <= site.lineno <= span_end:
                    if enclosing is None or node.lineno > enclosing.lineno:
                        enclosing = node
        if enclosing is None:
            enclosing = module.tree
        values: list[ast.expr] = []
        for node in ast.walk(enclosing):
            if isinstance(node, ast.Assign):
                for target in node.targets:
                    if isinstance(target, ast.Name) and target.id == name:
                        values.append(node.value)
        return values

    def _mentions_domain(self, node: ast.expr) -> bool:
        for inner in ast.walk(node):
            if isinstance(inner, ast.Name) and inner.id in DOMAIN_NAMES:
                return True
            if isinstance(inner, ast.Attribute) and inner.attr in DOMAIN_NAMES:
                return True
        return False

    def _pipe_receiver(self, node: ast.expr) -> bool:
        tail = None
        if isinstance(node, ast.Name):
            tail = node.id
        elif isinstance(node, ast.Attribute):
            tail = node.attr
        if tail is None:
            return False
        lowered = tail.lower()
        return "conn" in lowered or "pipe" in lowered

    def _check_reply_tuple(self, module, node: ast.Tuple, findings):
        if not node.elts:
            return
        first = node.elts[0]
        if (
            isinstance(first, ast.Constant)
            and isinstance(first.value, str)
            and first.value in _REPLY_STATUS
            and len(node.elts) > 1
        ):
            findings.append(
                self.finding(
                    module, "T204", node,
                    f"hand-built reply tuple ({first.value!r}, ...) — "
                    "replies are built by repro.engine.wire.pack_reply so "
                    "the timing envelope stays fixed-size",
                )
            )
