"""Existential rules: ``∀x̄,ȳ B(x̄,ȳ) → ∃z̄ H(ȳ,z̄)`` (Section 2.1).

A :class:`Rule` stores its body and head as atom frozensets and derives the
frontier (variables shared between body and head) and the existential
variables (head variables outside the frontier).  Rules are immutable and
hashable so rule sets can be plain sets.
"""

from __future__ import annotations

from typing import Iterable

from repro.logic.atoms import Atom
from repro.logic.predicates import Predicate
from repro.logic.substitutions import Substitution
from repro.logic.terms import FreshSupply, Term, Variable


class InstantiationStats:
    """Counter of head instantiations performed *in this process*.

    Module-global (like ``MATCHER_STATS`` in the homomorphism matcher),
    registered as the ``instantiation`` group of
    :func:`repro.obs.default_registry`.
    :meth:`Rule.instantiate_head` bumps it, so the engine tests can assert
    that a claim gate which already instantiated a trigger's head (parking
    it on ``Trigger._ground_output``) is not paying for a second
    instantiation on the firing path.  Worker processes keep their own
    copy; the parent-side count is the one the equivalence tests pin.
    """

    __slots__ = ("heads",)

    def __init__(self):
        self.reset()

    def reset(self) -> None:
        self.heads = 0

    def snapshot(self) -> dict[str, int]:
        return {"heads": self.heads}


#: Global head-instantiation counter; reset before a measured run.
INSTANTIATION_STATS = InstantiationStats()


class Rule:
    """An existential rule with non-empty body and head."""

    __slots__ = (
        "body",
        "head",
        "label",
        "_hash",
        "_body_vars",
        "_body_var_order",
        "_frontier_order",
        "_existential_order",
        "_sorted_body",
    )

    def __init__(
        self,
        body: Iterable[Atom],
        head: Iterable[Atom],
        label: str = "",
    ):
        body_atoms = frozenset(body)
        head_atoms = frozenset(head)
        if not body_atoms:
            raise ValueError("a rule must have a non-empty body")
        if not head_atoms:
            raise ValueError("a rule must have a non-empty head")
        self.body = body_atoms
        self.head = head_atoms
        self.label = label
        self._hash = hash((body_atoms, head_atoms))
        # Lazily-computed caches; rules are immutable so these never
        # invalidate.  The chase asks for them once per *trigger*, which
        # makes recomputation the dominant cost on trigger-heavy levels.
        self._body_vars: frozenset[Variable] | None = None
        self._body_var_order: tuple[Variable, ...] | None = None
        self._frontier_order: tuple[Variable, ...] | None = None
        self._existential_order: tuple[Variable, ...] | None = None
        self._sorted_body: tuple[Atom, ...] | None = None

    # ------------------------------------------------------------------
    # Value semantics (label is presentation-only)
    # ------------------------------------------------------------------

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, Rule)
            and self.body == other.body
            and self.head == other.head
        )

    def __hash__(self) -> int:
        return self._hash

    def __reduce__(self):
        # Rebuild through __init__ so the cached hash (derived from the
        # atoms' seed-salted hashes) is recomputed with the unpickling
        # interpreter's seed (see Term.__reduce__).
        return (Rule, (self.body, self.head, self.label))

    def __lt__(self, other: "Rule") -> bool:
        if not isinstance(other, Rule):
            return NotImplemented
        return self.sort_key() < other.sort_key()

    def sort_key(self):
        return (
            tuple(sorted(a.sort_key() for a in self.body)),
            tuple(sorted(a.sort_key() for a in self.head)),
        )

    def __repr__(self) -> str:
        return f"Rule({self!s})"

    def __str__(self) -> str:
        body = ", ".join(str(a) for a in sorted(self.body))
        head = ", ".join(str(a) for a in sorted(self.head))
        existential = sorted(self.existential_variables(), key=lambda v: v.name)
        if existential:
            names = ", ".join(v.name for v in existential)
            return f"{body} -> exists {names}. {head}"
        return f"{body} -> {head}"

    # ------------------------------------------------------------------
    # Derived variable sets
    # ------------------------------------------------------------------

    def body_variables(self) -> frozenset[Variable]:
        """All variables of the body (``x̄ ∪ ȳ``), cached."""
        cached = self._body_vars
        if cached is None:
            cached = frozenset(
                v for atom in self.body for v in atom.variables()
            )
            self._body_vars = cached
        return cached

    def body_variable_order(self) -> tuple[Variable, ...]:
        """The body variables in the rule's canonical (sorted) order.

        Triggers derive their identity key from this tuple, so the sort
        happens once per rule instead of once per trigger.
        """
        cached = self._body_var_order
        if cached is None:
            cached = tuple(sorted(self.body_variables()))
            self._body_var_order = cached
        return cached

    def frontier_order(self) -> tuple[Variable, ...]:
        """The frontier variables in canonical (sorted) order, cached."""
        cached = self._frontier_order
        if cached is None:
            cached = tuple(sorted(self.frontier()))
            self._frontier_order = cached
        return cached

    def existential_order(self) -> tuple[Variable, ...]:
        """The existential variables in canonical (sorted) order, cached."""
        cached = self._existential_order
        if cached is None:
            cached = tuple(sorted(self.existential_variables()))
            self._existential_order = cached
        return cached

    def sorted_body(self) -> tuple[Atom, ...]:
        """The body atoms in deterministic order, cached.

        Delta-driven trigger enumeration iterates this as its pivot
        sequence.
        """
        cached = self._sorted_body
        if cached is None:
            cached = tuple(sorted(self.body))
            self._sorted_body = cached
        return cached

    def head_variables(self) -> set[Variable]:
        """All variables of the head (``ȳ ∪ z̄``)."""
        return {v for atom in self.head for v in atom.variables()}

    def frontier(self) -> set[Variable]:
        """The frontier ``ȳ``: variables shared between body and head."""
        return self.body_variables() & self.head_variables()

    def existential_variables(self) -> set[Variable]:
        """The existential variables ``z̄``: head-only variables."""
        return self.head_variables() - self.body_variables()

    def variables(self) -> set[Variable]:
        return self.body_variables() | self.head_variables()

    def terms(self) -> set[Term]:
        return {
            t for atom in (self.body | self.head) for t in atom.args
        }

    # ------------------------------------------------------------------
    # Structural predicates
    # ------------------------------------------------------------------

    @property
    def is_datalog(self) -> bool:
        """True when the rule has no existential variables (§2.1)."""
        return not self.existential_variables()

    def predicates(self) -> set[Predicate]:
        return {a.predicate for a in self.body | self.head}

    def body_predicates(self) -> set[Predicate]:
        return {a.predicate for a in self.body}

    def head_predicates(self) -> set[Predicate]:
        return {a.predicate for a in self.head}

    # ------------------------------------------------------------------
    # Head instantiation
    # ------------------------------------------------------------------

    def instantiate_head(
        self,
        mapping: Substitution,
        existential_map: "dict | None" = None,
    ) -> set[Atom]:
        """The head atoms under ``mapping`` + an existential assignment.

        The single definition of what firing a trigger produces: both the
        sequential :meth:`~repro.chase.trigger.Trigger.output` and the
        sharded firing workers (:func:`repro.engine.workers.fire_tasks`)
        call this, so the engines cannot drift apart.  For Datalog rules
        (``existential_map`` empty) the body homomorphism already grounds
        the head — no merged substitution is built.
        """
        INSTANTIATION_STATS.heads += 1
        if not existential_map:
            return mapping.apply_atoms(self.head)
        extended = Substitution._from_clean(
            {**mapping.as_dict(), **existential_map}
        )
        return extended.apply_atoms(self.head)

    # ------------------------------------------------------------------
    # Renaming
    # ------------------------------------------------------------------

    def rename_fresh(self, supply: FreshSupply) -> tuple["Rule", Substitution]:
        """Return a variant with all variables renamed fresh.

        Also returns the renaming used, so callers (e.g. piece-unifiers)
        can translate back.
        """
        renaming = {
            v: supply.variable() for v in sorted(self.variables())
        }
        sigma = Substitution(renaming)
        renamed = Rule(
            sigma.apply_atoms(self.body),
            sigma.apply_atoms(self.head),
            label=self.label,
        )
        return renamed, sigma

    def apply(self, substitution: Substitution) -> "Rule":
        """Return the rule with the substitution applied to body and head."""
        return Rule(
            substitution.apply_atoms(self.body),
            substitution.apply_atoms(self.head),
            label=self.label,
        )


def rule(body: Iterable[Atom], head: Iterable[Atom], label: str = "") -> Rule:
    """Convenience constructor mirroring :class:`Rule`."""
    return Rule(body, head, label=label)
