"""A small text DSL for rules, instances and queries.

Grammar (whitespace-insensitive)::

    rule      := conjunction "->" [ "exists" names "." ] conjunction
    conjunct  := atom { ("," | "&") atom }
    atom      := NAME [ "(" terms ")" ]
    terms     := term { "," term }
    term      := NAME

In *rule mode* (the default) argument names follow the
:func:`repro.logic.terms.as_term` convention: lowercase-first names are
variables, uppercase-first or digit-first names (and single-quoted names)
are constants.  In *instance mode* every argument is a constant.

Examples::

    parse_rule("E(x,y) -> exists z. E(y,z)")
    parse_rule("E(x,y), E(y,z) -> E(x,z)")
    parse_rule("top -> exists x, y. E(x, y)")
    parse_instance("E(a,b), E(b,c)")
    parse_query("E(x,y), E(y,z)", answers=("x", "z"))
"""

from __future__ import annotations

import re
from typing import Iterable, Sequence

from repro.errors import ParseError
from repro.logic.atoms import Atom
from repro.logic.predicates import Predicate
from repro.logic.terms import Constant, Term, Variable, as_term
from repro.rules.rule import Rule
from repro.rules.ruleset import RuleSet

_TOKEN_RE = re.compile(
    r"\s*(?:(?P<arrow>->)|(?P<lpar>\()|(?P<rpar>\))|(?P<comma>,)"
    r"|(?P<amp>&)|(?P<dot>\.)|(?P<name>'[^']*'|[A-Za-z_][A-Za-z0-9_']*))"
)


class _Tokenizer:
    """Token stream over the DSL with position-aware errors."""

    def __init__(self, text: str):
        self.text = text
        self.tokens: list[tuple[str, str, int]] = []
        position = 0
        while position < len(text):
            match = _TOKEN_RE.match(text, position)
            if match is None or match.end() == position:
                if text[position:].strip():
                    raise ParseError("unexpected character", text, position)
                break
            kind = match.lastgroup or ""
            self.tokens.append((kind, match.group(kind), match.start(kind)))
            position = match.end()
        self.index = 0

    def peek(self) -> tuple[str, str, int] | None:
        if self.index < len(self.tokens):
            return self.tokens[self.index]
        return None

    def next(self, expected_kind: str | None = None) -> tuple[str, str, int]:
        token = self.peek()
        if token is None:
            raise ParseError(
                f"unexpected end of input (expected {expected_kind or 'a token'})",
                self.text,
                len(self.text),
            )
        kind, value, position = token
        if expected_kind is not None and kind != expected_kind:
            raise ParseError(
                f"expected {expected_kind}, found {value!r}", self.text, position
            )
        self.index += 1
        return token

    def accept(self, kind: str) -> bool:
        token = self.peek()
        if token is not None and token[0] == kind:
            self.index += 1
            return True
        return False

    def at_end(self) -> bool:
        return self.peek() is None


def _make_term(name: str, instance_mode: bool) -> Term:
    if instance_mode:
        if name.startswith("'") and name.endswith("'"):
            return Constant(name[1:-1])
        return Constant(name)
    return as_term(name)


def _parse_atom(tokens: _Tokenizer, instance_mode: bool) -> Atom:
    _, name, _ = tokens.next("name")
    args: list[Term] = []
    if tokens.accept("lpar"):
        if not tokens.accept("rpar"):
            while True:
                _, arg, _ = tokens.next("name")
                args.append(_make_term(arg, instance_mode))
                if tokens.accept("rpar"):
                    break
                tokens.next("comma")
    return Atom(Predicate(name, len(args)), args)


def _parse_conjunction(
    tokens: _Tokenizer, instance_mode: bool, stop_kinds: set[str]
) -> list[Atom]:
    atoms = [_parse_atom(tokens, instance_mode)]
    while True:
        token = tokens.peek()
        if token is None or token[0] in stop_kinds:
            break
        if token[0] in ("comma", "amp"):
            tokens.index += 1
            atoms.append(_parse_atom(tokens, instance_mode))
            continue
        raise ParseError(
            f"expected ',' or end, found {token[1]!r}", tokens.text, token[2]
        )
    return atoms


def parse_atom(text: str, instance_mode: bool = False) -> Atom:
    """Parse a single atom such as ``E(x, y)`` or the nullary ``top``."""
    tokens = _Tokenizer(text)
    atom = _parse_atom(tokens, instance_mode)
    if not tokens.at_end():
        token = tokens.peek()
        raise ParseError("trailing input after atom", text, token[2])
    return atom


def parse_rule(text: str, label: str = "") -> Rule:
    """Parse a rule such as ``E(x,y) -> exists z. E(y,z)``."""
    tokens = _Tokenizer(text)
    body = _parse_conjunction(tokens, instance_mode=False, stop_kinds={"arrow"})
    tokens.next("arrow")
    declared_existentials: list[Variable] = []
    token = tokens.peek()
    if token is not None and token[0] == "name" and token[1] == "exists":
        tokens.index += 1
        while True:
            _, name, position = tokens.next("name")
            term = as_term(name)
            if not isinstance(term, Variable):
                raise ParseError(
                    f"existential name {name!r} must be a variable",
                    text,
                    position,
                )
            declared_existentials.append(term)
            if tokens.accept("dot"):
                break
            tokens.next("comma")
    head = _parse_conjunction(tokens, instance_mode=False, stop_kinds=set())
    if not tokens.at_end():
        token = tokens.peek()
        raise ParseError("trailing input after rule", text, token[2])
    rule = Rule(body, head, label=label)
    # The "exists" clause is documentation: check it matches the derived set.
    derived = {v.name for v in rule.existential_variables()}
    declared = {v.name for v in declared_existentials}
    if declared and declared != derived:
        raise ParseError(
            f"declared existential variables {sorted(declared)} do not match "
            f"derived ones {sorted(derived)}",
            text,
        )
    return rule


def parse_rules(lines: Iterable[str] | str, name: str = "") -> RuleSet:
    """Parse several rules (an iterable of lines, or one multi-line string).

    Blank lines and lines starting with ``#`` are skipped.
    """
    if isinstance(lines, str):
        lines = lines.splitlines()
    rules = []
    for index, line in enumerate(lines):
        stripped = line.strip()
        if not stripped or stripped.startswith("#"):
            continue
        rules.append(parse_rule(stripped, label=f"r{index}"))
    return RuleSet(rules, name=name)


def parse_instance(text: str):
    """Parse an instance such as ``E(a,b), E(b,c)`` (arguments are constants)."""
    from repro.logic.instances import Instance

    tokens = _Tokenizer(text)
    if tokens.at_end():
        return Instance()
    atoms = _parse_conjunction(tokens, instance_mode=True, stop_kinds=set())
    if not tokens.at_end():
        token = tokens.peek()
        raise ParseError("trailing input after instance", text, token[2])
    return Instance(atoms)


def parse_query(text: str, answers: Sequence[str] = ()):
    """Parse a CQ body with the given answer-variable names."""
    from repro.queries.cq import ConjunctiveQuery

    tokens = _Tokenizer(text)
    atoms = _parse_conjunction(tokens, instance_mode=False, stop_kinds=set())
    if not tokens.at_end():
        token = tokens.peek()
        raise ParseError("trailing input after query", text, token[2])
    answer_vars = tuple(Variable(name) for name in answers)
    return ConjunctiveQuery(atoms, answer_vars)
