"""Syntactic rule classes: Datalog, linear, guarded, sticky, and the
paper-specific classes forward-existential (Def 21) and predicate-unique
(Def 22).

These analyzers provide decidable *certificates* for bdd/UCQ-rewritability
membership — linear, sticky and non-recursive rule sets are all bdd — and
the structural prerequisites of the regal normal form (Def 27).
"""

from __future__ import annotations


from repro.logic.terms import Variable
from repro.rules.rule import Rule
from repro.rules.ruleset import RuleSet


# ----------------------------------------------------------------------
# Classical classes
# ----------------------------------------------------------------------

def is_datalog_rule(rule: Rule) -> bool:
    """True when the rule has no existential variables."""
    return rule.is_datalog


def is_datalog(rules: RuleSet) -> bool:
    """True when every rule is Datalog."""
    return all(r.is_datalog for r in rules)


def is_linear_rule(rule: Rule) -> bool:
    """True when the body is a single atom (linear theories, [6])."""
    return len(rule.body) == 1


def is_linear(rules: RuleSet) -> bool:
    """Linear rule sets are bdd/UCQ-rewritable and finitely controllable."""
    return all(is_linear_rule(r) for r in rules)


def is_guarded_rule(rule: Rule) -> bool:
    """True when some body atom contains every body variable."""
    body_vars = rule.body_variables()
    return any(body_vars <= atom.variables() for atom in rule.body)


def is_guarded(rules: RuleSet) -> bool:
    """Guarded rule sets have bounded-treewidth chases and are fc [4]."""
    return all(is_guarded_rule(r) for r in rules)


def is_frontier_guarded_rule(rule: Rule) -> bool:
    """True when some body atom contains every frontier variable."""
    frontier = rule.frontier()
    return any(frontier <= atom.variables() for atom in rule.body)


def is_frontier_guarded(rules: RuleSet) -> bool:
    return all(is_frontier_guarded_rule(r) for r in rules)


def has_atomic_heads(rules: RuleSet) -> bool:
    """True when every rule head is a single atom."""
    return all(len(r.head) == 1 for r in rules)


# ----------------------------------------------------------------------
# Paper-specific classes (Definitions 21 and 22)
# ----------------------------------------------------------------------

def is_forward_existential_rule(rule: Rule) -> bool:
    """Definition 21, per rule.

    Every binary head atom ``A(x, y)`` must have a frontier variable in the
    first position and an existential variable in the second.  Head atoms of
    arity at most one are harmless (they create no edges; the streamlining
    surgery produces such ``A_0(w)`` atoms); heads of arity three or more
    disqualify the rule.
    """
    frontier = rule.frontier()
    existential = rule.existential_variables()
    for atom in rule.head:
        if atom.predicate.arity > 2:
            return False
        if atom.predicate.arity == 2:
            first, second = atom.args
            if not (isinstance(first, Variable) and first in frontier):
                return False
            if not (isinstance(second, Variable) and second in existential):
                return False
    return True


def is_forward_existential(rules: RuleSet) -> bool:
    """Definition 21: every *non-Datalog* rule is forward-existential."""
    return all(
        is_forward_existential_rule(r) for r in rules if not r.is_datalog
    )


def is_predicate_unique_rule(rule: Rule) -> bool:
    """Definition 22, per rule: each predicate occurs at most once in the head."""
    seen = set()
    for atom in rule.head:
        if atom.predicate in seen:
            return False
        seen.add(atom.predicate)
    return True


def is_predicate_unique(rules: RuleSet) -> bool:
    """Definition 22: every non-Datalog rule has predicate-unique head."""
    return all(
        is_predicate_unique_rule(r) for r in rules if not r.is_datalog
    )


# ----------------------------------------------------------------------
# Stickiness (Calì, Gottlob & Pieris [7]) — a bdd certificate
# ----------------------------------------------------------------------

def sticky_marking(rules: RuleSet) -> dict[Rule, set[Variable]]:
    """Run the sticky marking procedure; return marked body variables per rule.

    Initial step: body variables not occurring in the head are marked.
    Propagation: whenever a predicate position carries a marked body
    variable anywhere in the rule set, head occurrences of that position
    propagate the mark back to the corresponding body variable.  Iterated to
    fixpoint.
    """
    marked: dict[Rule, set[Variable]] = {r: set() for r in rules}
    for r in rules:
        head_vars = r.head_variables()
        for v in r.body_variables():
            if v not in head_vars:
                marked[r].add(v)

    def marked_positions() -> set[tuple]:
        positions = set()
        for r in rules:
            for atom in r.body:
                for index, term in enumerate(atom.args):
                    if isinstance(term, Variable) and term in marked[r]:
                        positions.add((atom.predicate, index))
        return positions

    changed = True
    while changed:
        changed = False
        positions = marked_positions()
        for r in rules:
            for atom in r.head:
                for index, term in enumerate(atom.args):
                    if (
                        isinstance(term, Variable)
                        and (atom.predicate, index) in positions
                        and term in r.body_variables()
                        and term not in marked[r]
                    ):
                        marked[r].add(term)
                        changed = True
    return marked


def is_sticky(rules: RuleSet) -> bool:
    """True when no marked variable occurs twice in a rule body.

    Sticky rule sets are bdd [7] and finitely controllable [18], which is
    why the paper lists them among the known (bdd ⇒ fc) fragments.
    """
    marked = sticky_marking(rules)
    for r in rules:
        occurrences: dict[Variable, int] = {}
        for atom in r.body:
            for term in atom.args:
                if isinstance(term, Variable):
                    occurrences[term] = occurrences.get(term, 0) + 1
        for v in marked[r]:
            if occurrences.get(v, 0) > 1:
                return False
    return True


# ----------------------------------------------------------------------
# Summary report
# ----------------------------------------------------------------------

def classify(rules: RuleSet) -> dict[str, bool]:
    """Return a dictionary of all class memberships for ``rules``."""
    return {
        "datalog": is_datalog(rules),
        "linear": is_linear(rules),
        "guarded": is_guarded(rules),
        "frontier_guarded": is_frontier_guarded(rules),
        "sticky": is_sticky(rules),
        "atomic_heads": has_atomic_heads(rules),
        "forward_existential": is_forward_existential(rules),
        "predicate_unique": is_predicate_unique(rules),
        "binary_signature": rules.signature().is_binary(),
    }
