"""Existential rules, rule sets, the text DSL, and class analyzers."""

from repro.rules.acyclicity import (
    chase_terminates_certificate,
    is_non_recursive,
    is_weakly_acyclic,
    predicate_dependency_graph,
    position_dependency_graph,
    stratification,
)
from repro.rules.classes import (
    classify,
    has_atomic_heads,
    is_datalog,
    is_forward_existential,
    is_forward_existential_rule,
    is_frontier_guarded,
    is_guarded,
    is_linear,
    is_predicate_unique,
    is_predicate_unique_rule,
    is_sticky,
    sticky_marking,
)
from repro.rules.parser import (
    parse_atom,
    parse_instance,
    parse_query,
    parse_rule,
    parse_rules,
)
from repro.rules.rule import Rule, rule
from repro.rules.ruleset import RuleSet, ruleset

__all__ = [
    "Rule",
    "RuleSet",
    "chase_terminates_certificate",
    "classify",
    "has_atomic_heads",
    "is_datalog",
    "is_forward_existential",
    "is_forward_existential_rule",
    "is_frontier_guarded",
    "is_guarded",
    "is_linear",
    "is_non_recursive",
    "is_predicate_unique",
    "is_predicate_unique_rule",
    "is_sticky",
    "is_weakly_acyclic",
    "parse_atom",
    "parse_instance",
    "parse_query",
    "parse_rule",
    "parse_rules",
    "position_dependency_graph",
    "predicate_dependency_graph",
    "rule",
    "ruleset",
    "stratification",
    "sticky_marking",
]
