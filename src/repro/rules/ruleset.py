"""Rule sets: ordered collections of existential rules over a signature."""

from __future__ import annotations

from typing import Iterable, Iterator

from repro.logic.predicates import Predicate
from repro.logic.signatures import Signature
from repro.rules.rule import Rule


class RuleSet:
    """An immutable, deterministic-ordered set of rules.

    Iteration order is the insertion order with duplicates removed, so all
    downstream algorithms (chase, rewriting, surgeries) are reproducible.
    """

    __slots__ = ("_rules", "name")

    def __init__(self, rules: Iterable[Rule] = (), name: str = ""):
        unique: list[Rule] = []
        seen: set[Rule] = set()
        for r in rules:
            if r not in seen:
                seen.add(r)
                unique.append(r)
        self._rules: tuple[Rule, ...] = tuple(unique)
        self.name = name

    def __iter__(self) -> Iterator[Rule]:
        return iter(self._rules)

    def __len__(self) -> int:
        return len(self._rules)

    def __contains__(self, rule: Rule) -> bool:
        return rule in set(self._rules)

    def __eq__(self, other) -> bool:
        return isinstance(other, RuleSet) and set(self._rules) == set(other._rules)

    def __hash__(self) -> int:
        return hash(frozenset(self._rules))

    def __repr__(self) -> str:
        label = f" {self.name!r}" if self.name else ""
        return f"RuleSet{label}({len(self._rules)} rules)"

    def __str__(self) -> str:
        return "\n".join(str(r) for r in self._rules)

    def __or__(self, other: "RuleSet | Iterable[Rule]") -> "RuleSet":
        other_rules = list(other)
        return RuleSet(list(self._rules) + other_rules, name=self.name)

    # ------------------------------------------------------------------
    # Views
    # ------------------------------------------------------------------

    def rules(self) -> tuple[Rule, ...]:
        return self._rules

    def signature(self) -> Signature:
        """The predicates occurring anywhere in the rules."""
        predicates: set[Predicate] = set()
        for r in self._rules:
            predicates |= r.predicates()
        return Signature(predicates)

    def datalog_rules(self) -> "RuleSet":
        """The subset of Datalog rules (``S_DL`` in Section 5)."""
        return RuleSet(
            (r for r in self._rules if r.is_datalog),
            name=f"{self.name}_DL" if self.name else "",
        )

    def existential_rules(self) -> "RuleSet":
        """The subset of non-Datalog rules (``S_∃`` in Section 5)."""
        return RuleSet(
            (r for r in self._rules if not r.is_datalog),
            name=f"{self.name}_ex" if self.name else "",
        )

    def with_rule(self, rule: Rule) -> "RuleSet":
        """Return a rule set extended with one rule."""
        return RuleSet(list(self._rules) + [rule], name=self.name)

    def renamed(self, name: str) -> "RuleSet":
        return RuleSet(self._rules, name=name)

    def head_predicates(self) -> set[Predicate]:
        result: set[Predicate] = set()
        for r in self._rules:
            result |= r.head_predicates()
        return result

    def body_predicates(self) -> set[Predicate]:
        result: set[Predicate] = set()
        for r in self._rules:
            result |= r.body_predicates()
        return result


def ruleset(*rules: Rule, name: str = "") -> RuleSet:
    """Convenience constructor: ``ruleset(r1, r2, name="example")``."""
    return RuleSet(rules, name=name)
