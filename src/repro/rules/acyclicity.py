"""Acyclicity analyses: predicate dependency graphs and weak acyclicity.

Two decidable certificates used throughout the experiment corpus:

* **non-recursiveness** — the predicate dependency graph (body predicate →
  head predicate) is acyclic; such rule sets are bdd (a finite rewriting
  exists because backward chaining strictly descends the dependency order)
  and their chase terminates;
* **weak acyclicity** (Fagin et al. [13]) — the position dependency graph
  has no cycle through a "special" (existential-creating) edge; this
  certifies chase termination.
"""

from __future__ import annotations

import networkx as nx

from repro.logic.predicates import Predicate
from repro.logic.terms import Variable
from repro.rules.ruleset import RuleSet


def predicate_dependency_graph(rules: RuleSet) -> nx.DiGraph:
    """Directed graph with an edge ``P -> Q`` when some rule has ``P`` in the
    body and ``Q`` in the head."""
    graph = nx.DiGraph()
    for rule in rules:
        for p in rule.predicates():
            graph.add_node(p)
        for p in rule.body_predicates():
            for q in rule.head_predicates():
                graph.add_edge(p, q)
    return graph


def is_non_recursive(rules: RuleSet) -> bool:
    """True when the predicate dependency graph is acyclic.

    Non-recursive rule sets are bdd: every CQ has a UCQ rewriting obtained
    by finitely many backward-chaining steps (each strictly descends the
    predicate order).
    """
    return nx.is_directed_acyclic_graph(predicate_dependency_graph(rules))


def stratification(rules: RuleSet) -> list[set[Predicate]]:
    """Return predicate strata (topological generations) of a non-recursive
    rule set; raises ValueError when the rule set is recursive."""
    graph = predicate_dependency_graph(rules)
    if not nx.is_directed_acyclic_graph(graph):
        raise ValueError("stratification requires a non-recursive rule set")
    return [set(layer) for layer in nx.topological_generations(graph)]


def position_dependency_graph(rules: RuleSet) -> nx.DiGraph:
    """The weak-acyclicity position graph.

    Nodes are positions ``(P, i)``.  For every rule, every body occurrence
    of a frontier variable at ``(P, i)``:

    * adds a regular edge to every head occurrence ``(Q, j)`` of the same
      variable, and
    * adds a *special* edge (attribute ``special=True``) to every head
      position holding an existential variable.
    """
    graph = nx.DiGraph()
    for rule in rules:
        frontier = rule.frontier()
        existential = rule.existential_variables()
        body_positions: dict[Variable, list[tuple[Predicate, int]]] = {}
        for atom in rule.body:
            for index, term in enumerate(atom.args):
                graph.add_node((atom.predicate, index))
                if isinstance(term, Variable):
                    body_positions.setdefault(term, []).append(
                        (atom.predicate, index)
                    )
        head_positions: dict[Variable, list[tuple[Predicate, int]]] = {}
        existential_positions: list[tuple[Predicate, int]] = []
        for atom in rule.head:
            for index, term in enumerate(atom.args):
                graph.add_node((atom.predicate, index))
                if isinstance(term, Variable):
                    if term in existential:
                        existential_positions.append((atom.predicate, index))
                    else:
                        head_positions.setdefault(term, []).append(
                            (atom.predicate, index)
                        )
        for variable in frontier:
            for source in body_positions.get(variable, ()):
                for target in head_positions.get(variable, ()):
                    _add_edge(graph, source, target, special=False)
                for target in existential_positions:
                    _add_edge(graph, source, target, special=True)
    return graph


def _add_edge(graph: nx.DiGraph, source, target, special: bool) -> None:
    if graph.has_edge(source, target):
        graph[source][target]["special"] = (
            graph[source][target]["special"] or special
        )
    else:
        graph.add_edge(source, target, special=special)


def is_weakly_acyclic(rules: RuleSet) -> bool:
    """True when no cycle of the position graph traverses a special edge.

    Weak acyclicity certifies termination of the chase on every instance
    [13]; the library's chase uses it to pick an honest step budget.
    """
    graph = position_dependency_graph(rules)
    for component in nx.strongly_connected_components(graph):
        if len(component) == 1:
            node = next(iter(component))
            if not graph.has_edge(node, node):
                continue
        for source in component:
            for target in graph.successors(source):
                if target in component and graph[source][target]["special"]:
                    return False
    return True


def chase_terminates_certificate(rules: RuleSet) -> str | None:
    """Return the name of a termination certificate or None.

    ``"datalog"`` (no invention at all), ``"non-recursive"`` or
    ``"weakly-acyclic"``.
    """
    if all(r.is_datalog for r in rules):
        return "datalog"
    if is_non_recursive(rules):
        return "non-recursive"
    if is_weakly_acyclic(rules):
        return "weakly-acyclic"
    return None
