"""Conjunctive queries (Section 2.1).

A CQ ``q(x̄)`` pairs a non-empty conjunction of atoms with a tuple of
*answer variables* (free variables).  Boolean CQs have no answer
variables.  CQs are immutable and hashable, and expose the graph view used
by the valley-query machinery (binary atoms as directed edges between
variables).
"""

from __future__ import annotations

from typing import Iterable, Sequence

import networkx as nx

from repro.datastructures.orders import ReachabilityOrder
from repro.logic.atoms import Atom
from repro.logic.substitutions import Substitution
from repro.logic.terms import FreshSupply, Term, Variable


class ConjunctiveQuery:
    """A conjunctive query ``∃z̄ B(x̄, z̄)`` with answer tuple ``x̄``."""

    __slots__ = ("atoms", "answers", "_hash")

    def __init__(
        self, atoms: Iterable[Atom], answers: Sequence[Variable] = ()
    ):
        atom_set = frozenset(atoms)
        if not atom_set:
            raise ValueError("a CQ must have a non-empty body")
        answer_tuple = tuple(answers)
        query_vars = {v for a in atom_set for v in a.variables()}
        for v in answer_tuple:
            if v not in query_vars:
                raise ValueError(
                    f"answer variable {v} does not occur in the query body"
                )
        self.atoms = atom_set
        self.answers = answer_tuple
        self._hash = hash((atom_set, answer_tuple))

    # ------------------------------------------------------------------
    # Value semantics
    # ------------------------------------------------------------------

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, ConjunctiveQuery)
            and self.atoms == other.atoms
            and self.answers == other.answers
        )

    def __hash__(self) -> int:
        return self._hash

    def __lt__(self, other: "ConjunctiveQuery") -> bool:
        if not isinstance(other, ConjunctiveQuery):
            return NotImplemented
        return self.sort_key() < other.sort_key()

    def sort_key(self):
        return (
            tuple(sorted(a.sort_key() for a in self.atoms)),
            tuple(v.name for v in self.answers),
        )

    def __repr__(self) -> str:
        return f"ConjunctiveQuery({self!s})"

    def __str__(self) -> str:
        body = ", ".join(str(a) for a in sorted(self.atoms))
        if self.answers:
            heads = ", ".join(v.name for v in self.answers)
            return f"?({heads}) :- {body}"
        return f"? :- {body}"

    def __len__(self) -> int:
        return len(self.atoms)

    # ------------------------------------------------------------------
    # Variable views
    # ------------------------------------------------------------------

    @property
    def is_boolean(self) -> bool:
        return not self.answers

    def variables(self) -> set[Variable]:
        return {v for a in self.atoms for v in a.variables()}

    def existential_variables(self) -> set[Variable]:
        """Variables that are not answer variables (``∃vars(q)``)."""
        return self.variables() - set(self.answers)

    def terms(self) -> set[Term]:
        return {t for a in self.atoms for t in a.args}

    # ------------------------------------------------------------------
    # Operations
    # ------------------------------------------------------------------

    def apply(self, substitution: Substitution) -> "ConjunctiveQuery":
        """Apply a substitution to body and answers simultaneously.

        An answer variable mapped to a non-variable term is dropped from
        the answer tuple position-wise only if it leaves the body —
        standard quotienting keeps substituted answer tuples compatible, so
        we require images of answer variables to be variables.
        """
        new_answers = []
        for v in self.answers:
            image = substitution.apply_term(v)
            if not isinstance(image, Variable):
                raise ValueError(
                    f"substitution maps answer variable {v} to non-variable {image}"
                )
            new_answers.append(image)
        return ConjunctiveQuery(
            substitution.apply_atoms(self.atoms), tuple(new_answers)
        )

    def rename_fresh(
        self, supply: FreshSupply
    ) -> tuple["ConjunctiveQuery", Substitution]:
        """Rename every variable fresh; return the renamed CQ and renaming."""
        renaming = Substitution(
            {v: supply.variable() for v in sorted(self.variables())}
        )
        return self.apply(renaming), renaming

    def with_answers(self, answers: Sequence[Variable]) -> "ConjunctiveQuery":
        return ConjunctiveQuery(self.atoms, answers)

    def boolean(self) -> "ConjunctiveQuery":
        """Drop the answer tuple."""
        return ConjunctiveQuery(self.atoms, ())

    # ------------------------------------------------------------------
    # Graph views (binary signature; Definitions 38/39)
    # ------------------------------------------------------------------

    def digraph(self) -> nx.DiGraph:
        """The directed graph over the query's terms: binary atoms as edges."""
        graph = nx.DiGraph()
        for atom in self.atoms:
            for term in atom.args:
                graph.add_node(term)
            if atom.predicate.arity == 2:
                graph.add_edge(atom.args[0], atom.args[1])
        return graph

    def is_dag(self) -> bool:
        """True when the query's binary-atom graph is acyclic."""
        return nx.is_directed_acyclic_graph(self.digraph())

    def reachability_order(self) -> ReachabilityOrder:
        """The strict order ``<_q`` of Definition 38 (requires a DAG)."""
        return ReachabilityOrder.from_binary_atoms(self.atoms)

    def is_connected(self) -> bool:
        """True when the underlying undirected term graph is connected.

        Terms sharing any atom (of any arity) are adjacent.
        """
        graph = nx.Graph()
        for atom in self.atoms:
            terms = list(atom.args)
            for term in terms:
                graph.add_node(term)
            for i in range(len(terms)):
                for j in range(i + 1, len(terms)):
                    graph.add_edge(terms[i], terms[j])
        if graph.number_of_nodes() <= 1:
            return True
        return nx.is_connected(graph)


def cq(atoms: Iterable[Atom], answers: Sequence[Variable] = ()) -> ConjunctiveQuery:
    """Convenience constructor."""
    return ConjunctiveQuery(atoms, answers)
