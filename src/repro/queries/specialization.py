"""Injective closures of queries — Proposition 6.

For every UCQ ``Q`` there is a UCQ ``Q_inj`` such that, for every instance
and binding::

    I ⊨ Q(ā)  ⇔  ∃ q ∈ Q_inj, I ⊨inj q(ā)  ⇔  I ⊨ Q_inj(ā)

The construction quotients each disjunct by every *specialization* of its
variable tuple: whenever a homomorphism identifies two query variables, the
corresponding quotient maps injectively.  The construction is idempotent
(Proposition 6's second equivalence).
"""

from __future__ import annotations

from repro.logic.substitutions import Substitution, specializations
from repro.queries.cq import ConjunctiveQuery
from repro.queries.ucq import UCQ


def cq_specializations(query: ConjunctiveQuery) -> list[ConjunctiveQuery]:
    """All quotients ``q[x̄ -> ȳ]`` over specializations ``ȳ`` of ``x̄``.

    Following the proof of Proposition 6, ``x̄`` is the tuple of *all*
    variables of the query, so every way of identifying existential and/or
    answer variables appears.  Answer variables are only ever identified
    with other answer variables (identifying an answer variable away would
    change the answer arity, which the specialization discipline of UCQs
    forbids) — when a class mixes answer and existential variables the
    representative is chosen to be the answer variable.
    """
    variables = sorted(query.variables(), key=lambda v: v.name)
    answer_set = set(query.answers)
    # Order answer variables first so retraction maps collapse onto them.
    ordered = sorted(
        variables, key=lambda v: (v not in answer_set, v.name)
    )
    results: list[ConjunctiveQuery] = []
    seen: set[ConjunctiveQuery] = set()
    for image in specializations(tuple(ordered)):
        mapping = {
            source: target
            for source, target in zip(ordered, image)
            if source != target
        }
        # Reject maps that merge an answer variable into a non-answer one.
        if any(
            source in answer_set and target not in answer_set
            for source, target in mapping.items()
        ):
            continue
        quotient = query.apply(Substitution(mapping))
        if quotient not in seen:
            seen.add(quotient)
            results.append(quotient)
    return results


def injective_closure(query: UCQ) -> UCQ:
    """Build ``Q_inj`` of Proposition 6 for a UCQ."""
    disjuncts: list[ConjunctiveQuery] = []
    for disjunct in query:
        disjuncts.extend(cq_specializations(disjunct))
    return UCQ(disjuncts, answers=query.answers)


def is_injectively_closed(query: UCQ) -> bool:
    """True when applying :func:`injective_closure` adds no disjunct.

    Proposition 6 notes the construction is idempotent; this checker
    verifies that property on concrete queries.
    """
    closed = injective_closure(query)
    return set(closed.disjuncts) == set(query.disjuncts)
