"""CQs, UCQs, entailment (incl. injective), specializations, minimization.

These are the *instance-level* evaluation primitives.  Certain-answer
requests against a rule set (``⟨R, I⟩ ⊨ Q(t̄)``) go through the serving
front door, :func:`repro.serving.answer`, which picks a strategy
(goal-directed chase, complete UCQ rewriting, or their hybrid) and
reports an explicit soundness/completeness verdict; the
:func:`certain_answer` re-exported here is its deprecated alias.
"""

from repro.queries.cq import ConjunctiveQuery, cq
from repro.queries.freezing import (
    entails_via_canonical_database,
    freeze,
    frozen_answer,
)
from repro.queries.entailment import (
    answer_homomorphisms,
    answers,
    certain_answer,
    entails_cq,
    entails_ucq,
)
from repro.queries.minimization import (
    cq_core,
    equivalent,
    is_subsumed_by_any,
    minimize_ucq,
    subsumes,
)
from repro.queries.specialization import (
    cq_specializations,
    injective_closure,
    is_injectively_closed,
)
from repro.queries.ucq import UCQ, UnionOfConjunctiveQueries, ucq

__all__ = [
    "ConjunctiveQuery",
    "UCQ",
    "UnionOfConjunctiveQueries",
    "answer_homomorphisms",
    "answers",
    "certain_answer",
    "cq",
    "cq_core",
    "cq_specializations",
    "entails_cq",
    "entails_ucq",
    "entails_via_canonical_database",
    "equivalent",
    "freeze",
    "frozen_answer",
    "injective_closure",
    "is_injectively_closed",
    "is_subsumed_by_any",
    "minimize_ucq",
    "subsumes",
    "ucq",
]
