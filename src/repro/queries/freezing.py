"""Freezing queries into instances (the canonical database).

Backward-chaining soundness arguments repeatedly need "the CQ viewed as
data": replace each variable by a distinct frozen term.  Freezing to
*nulls* keeps the result in the paper's variable-only regime; freezing to
*constants* makes the terms rigid (useful to test injective matching).
"""

from __future__ import annotations

from repro.logic.instances import Instance
from repro.logic.terms import Constant, Null, Term, Variable
from repro.queries.cq import ConjunctiveQuery


def freeze(
    query: ConjunctiveQuery,
    prefix: str = "_fz",
    rigid: bool = False,
) -> tuple[Instance, dict[Variable, Term]]:
    """Return the canonical instance of ``query`` and the freezing map.

    Each variable becomes ``Null(prefix_name)`` (or ``Constant`` when
    ``rigid``); distinct variables get distinct terms.
    """
    factory = Constant if rigid else Null
    mapping: dict[Variable, Term] = {
        v: factory(f"{prefix}_{v.name}")
        for v in sorted(query.variables(), key=lambda v: v.name)
    }
    atoms = [atom.apply(mapping) for atom in sorted(query.atoms)]
    return Instance(atoms, add_top=True), mapping


def frozen_answer(
    query: ConjunctiveQuery, mapping: dict[Variable, Term]
) -> tuple[Term, ...]:
    """The query's answer tuple under a freezing map."""
    return tuple(mapping[v] for v in query.answers)


def entails_via_canonical_database(
    general: ConjunctiveQuery, specific: ConjunctiveQuery
) -> bool:
    """The classical characterization: ``specific ⊨ general`` iff
    ``general`` matches the frozen ``specific`` (answers aligned).

    Equivalent to :func:`repro.queries.minimization.subsumes`; provided as
    an independently implemented cross-check used by the test suite.
    """
    if len(general.answers) != len(specific.answers):
        return False
    frozen, mapping = freeze(specific)
    from repro.queries.entailment import entails_cq

    bindings = frozen_answer(specific, mapping)
    return entails_cq(frozen, general, bindings)
