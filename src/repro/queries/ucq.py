"""Unions of conjunctive queries (Section 2.1).

A UCQ ``Q(x̄)`` is a finite set of CQs; following the paper, each disjunct's
answer tuple must be a *specialization* of the UCQ's answer tuple (the
disjuncts may identify answer variables).
"""

from __future__ import annotations

from typing import Iterable, Iterator, Sequence

from repro.logic.substitutions import is_specialization
from repro.logic.terms import Variable
from repro.queries.cq import ConjunctiveQuery


class UnionOfConjunctiveQueries:
    """An immutable set of CQ disjuncts with a shared answer tuple."""

    __slots__ = ("disjuncts", "answers", "_hash")

    def __init__(
        self,
        disjuncts: Iterable[ConjunctiveQuery],
        answers: Sequence[Variable] | None = None,
    ):
        unique: list[ConjunctiveQuery] = []
        seen: set[ConjunctiveQuery] = set()
        for disjunct in disjuncts:
            if disjunct not in seen:
                seen.add(disjunct)
                unique.append(disjunct)
        if answers is None:
            if not unique:
                raise ValueError(
                    "an empty UCQ needs an explicit answer tuple"
                )
            answers = unique[0].answers
        answer_tuple = tuple(answers)
        for disjunct in unique:
            if len(disjunct.answers) != len(answer_tuple):
                raise ValueError(
                    f"disjunct {disjunct} has {len(disjunct.answers)} answer "
                    f"variables, expected {len(answer_tuple)}"
                )
            if not is_specialization(answer_tuple, disjunct.answers):
                raise ValueError(
                    f"answer tuple of {disjunct} is not a specialization of "
                    f"{tuple(v.name for v in answer_tuple)}"
                )
        self.disjuncts = tuple(sorted(unique))
        self.answers = answer_tuple
        self._hash = hash((frozenset(unique), answer_tuple))

    def __iter__(self) -> Iterator[ConjunctiveQuery]:
        return iter(self.disjuncts)

    def __len__(self) -> int:
        return len(self.disjuncts)

    def __contains__(self, disjunct: ConjunctiveQuery) -> bool:
        return disjunct in set(self.disjuncts)

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, UnionOfConjunctiveQueries)
            and set(self.disjuncts) == set(other.disjuncts)
            and self.answers == other.answers
        )

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        return f"UCQ({len(self.disjuncts)} disjuncts, answers={[v.name for v in self.answers]})"

    def __str__(self) -> str:
        return "\n".join(str(q) for q in self.disjuncts)

    @property
    def is_boolean(self) -> bool:
        return not self.answers

    def union(
        self, other: "UnionOfConjunctiveQueries"
    ) -> "UnionOfConjunctiveQueries":
        if len(self.answers) != len(other.answers):
            raise ValueError("cannot union UCQs with different answer arity")
        return UnionOfConjunctiveQueries(
            list(self.disjuncts) + list(other.disjuncts), self.answers
        )

    def max_disjunct_size(self) -> int:
        """``max{|q'| : q' ∈ Q}`` — the size bound of Lemma 40's measure."""
        return max((len(q) for q in self.disjuncts), default=0)


#: Short alias used throughout the library.
UCQ = UnionOfConjunctiveQueries


def ucq(*disjuncts: ConjunctiveQuery) -> UCQ:
    """Convenience constructor."""
    return UCQ(disjuncts)
