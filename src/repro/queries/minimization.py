"""CQ subsumption, cores, and UCQ minimization.

The rewriting engine prunes its search space with subsumption: a disjunct
``q2`` is redundant in a UCQ containing ``q1`` when ``q1`` maps
homomorphically into ``q2`` (answer variables corresponding) — every
instance satisfying ``q2`` then satisfies ``q1``.  Minimal rewritings are
unique up to bijective renaming [22]; :func:`minimize_ucq` computes that
normal form's disjunct set.
"""

from __future__ import annotations

from typing import Iterable

from repro.logic.homomorphisms import find_homomorphism
from repro.queries.cq import ConjunctiveQuery
from repro.queries.ucq import UCQ


def subsumes(
    general: ConjunctiveQuery, specific: ConjunctiveQuery
) -> bool:
    """True when ``general`` maps into ``specific`` preserving answers.

    ``specific`` is then logically stronger: any match of ``specific``
    yields a match of ``general``, so ``specific`` is redundant in a UCQ
    already containing ``general``.
    """
    if len(general.answers) != len(specific.answers):
        return False
    seed: dict = {}
    for g_var, s_var in zip(general.answers, specific.answers):
        if g_var in seed and seed[g_var] != s_var:
            return False
        seed[g_var] = s_var
    return (
        find_homomorphism(general.atoms, specific.atoms, seed=seed)
        is not None
    )


def equivalent(left: ConjunctiveQuery, right: ConjunctiveQuery) -> bool:
    """Homomorphic equivalence of CQs with answers preserved."""
    return subsumes(left, right) and subsumes(right, left)


def cq_core(query: ConjunctiveQuery) -> ConjunctiveQuery:
    """The core of a CQ: minimal equivalent sub-query.

    Answer variables are frozen (temporarily treated as constants is the
    classical trick; here we retract only with endomorphisms fixing them).
    """
    current = query
    changed = True
    while changed:
        changed = False
        for atom in sorted(current.atoms):
            if len(current.atoms) == 1:
                break
            remaining = ConjunctiveQuery(
                current.atoms - {atom}, current.answers
            ) if _answers_survive(current, atom) else None
            if remaining is not None and subsumes(remaining, current) and subsumes(
                current, remaining
            ):
                current = remaining
                changed = True
                break
    return current


def _answers_survive(query: ConjunctiveQuery, atom) -> bool:
    """True when dropping ``atom`` keeps every answer variable in the body."""
    rest = query.atoms - {atom}
    remaining_vars = {v for a in rest for v in a.variables()}
    return set(query.answers) <= remaining_vars


def minimize_ucq(query: UCQ, compute_cores: bool = True) -> UCQ:
    """Remove subsumed disjuncts (and optionally core each survivor).

    Of two homomorphically equivalent disjuncts, exactly one (the
    deterministically smaller) is kept.
    """
    disjuncts = list(query.disjuncts)
    if compute_cores:
        disjuncts = [cq_core(q) for q in disjuncts]
        unique: list[ConjunctiveQuery] = []
        seen: set[ConjunctiveQuery] = set()
        for q in disjuncts:
            if q not in seen:
                seen.add(q)
                unique.append(q)
        disjuncts = unique
    kept: list[ConjunctiveQuery] = []
    for candidate in sorted(disjuncts):
        redundant = any(
            subsumes(existing, candidate) for existing in kept
        )
        if redundant:
            continue
        kept = [q for q in kept if not subsumes(candidate, q)]
        kept.append(candidate)
    return UCQ(kept, answers=query.answers)


def is_subsumed_by_any(
    candidate: ConjunctiveQuery, existing: Iterable[ConjunctiveQuery]
) -> bool:
    """True when some existing disjunct subsumes ``candidate``."""
    return any(subsumes(q, candidate) for q in existing)
