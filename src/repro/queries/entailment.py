"""Query entailment: ``I ⊨ Q(t̄)`` and the injective ``I ⊨inj Q(t̄)``.

Also the certain-answer semantics ``⟨R, I⟩ ⊨ Q(t̄)`` via the chase: for
bdd rule sets, ``⟨I,R⟩ ⊨ q`` iff ``Ch_k(I,R) ⊨ q`` at the bdd constant
(Definition 3), so evaluating on a sufficiently deep chase prefix is exact.
"""

from __future__ import annotations

from typing import Iterator, Sequence

from repro.logic.homomorphisms import find_homomorphism, homomorphisms
from repro.logic.instances import Instance
from repro.logic.substitutions import Substitution
from repro.logic.terms import Term
from repro.queries.cq import ConjunctiveQuery
from repro.queries.ucq import UCQ
from repro.rules.ruleset import RuleSet


def _seed_for(
    query: ConjunctiveQuery, bindings: Sequence[Term]
) -> dict | None:
    """Build the answer-variable seed, or None when inconsistent.

    An empty ``bindings`` leaves all answer variables free (the query is
    then evaluated as if Boolean, e.g. to enumerate its answers).
    """
    if not bindings:
        return {}
    if len(bindings) != len(query.answers):
        raise ValueError(
            f"expected {len(query.answers)} binding(s), got {len(bindings)}"
        )
    seed: dict = {}
    for variable, value in zip(query.answers, bindings):
        if variable in seed and seed[variable] != value:
            return None
        seed[variable] = value
    return seed


def entails_cq(
    instance: Instance,
    query: ConjunctiveQuery,
    bindings: Sequence[Term] = (),
    injective: bool = False,
) -> bool:
    """``I ⊨ q(t̄)`` (or ``⊨inj`` with ``injective=True``)."""
    seed = _seed_for(query, bindings)
    if seed is None:
        return False
    return (
        find_homomorphism(
            query.atoms, instance, seed=seed, injective=injective
        )
        is not None
    )


def entails_ucq(
    instance: Instance,
    query: UCQ,
    bindings: Sequence[Term] = (),
    injective: bool = False,
) -> bool:
    """``I ⊨ Q(t̄)``: some disjunct maps (answer variables pinned).

    A disjunct whose answer tuple identifies variables is evaluated on the
    correspondingly identified binding; incompatible bindings simply fail
    for that disjunct.
    """
    return any(
        entails_cq(instance, disjunct, bindings, injective=injective)
        for disjunct in query
    )


def answer_homomorphisms(
    instance: Instance,
    query: ConjunctiveQuery,
    bindings: Sequence[Term] = (),
    injective: bool = False,
) -> Iterator[Substitution]:
    """Yield the homomorphisms witnessing ``I ⊨ q(t̄)``."""
    seed = _seed_for(query, bindings)
    if seed is None:
        return
    yield from homomorphisms(
        query.atoms, instance, seed=seed, injective=injective
    )


def answers(
    instance: Instance, query: ConjunctiveQuery
) -> set[tuple[Term, ...]]:
    """All answer tuples of ``query`` over ``instance``."""
    result: set[tuple[Term, ...]] = set()
    for hom in homomorphisms(query.atoms, instance):
        result.add(tuple(hom.apply_term(v) for v in query.answers))
    return result


def certain_answer(
    instance: Instance,
    rules: RuleSet,
    query: ConjunctiveQuery | UCQ,
    bindings: Sequence[Term] = (),
    max_levels: int = 6,
) -> bool:
    """``⟨R, I⟩ ⊨ Q(t̄)`` evaluated on a chase prefix of depth ``max_levels``.

    Sound always (the chase is a universal model, so a match on a prefix
    witnesses entailment); complete when ``max_levels`` is at least the bdd
    constant of the query (Definition 3) or the chase terminates earlier.
    """
    from repro.chase.oblivious import oblivious_chase

    result = oblivious_chase(instance, rules, max_levels=max_levels)
    if isinstance(query, UCQ):
        return entails_ucq(result.instance, query, bindings)
    return entails_cq(result.instance, query, bindings)
