"""Query entailment: ``I ⊨ Q(t̄)`` and the injective ``I ⊨inj Q(t̄)``.

Certain-answer semantics ``⟨R, I⟩ ⊨ Q(t̄)`` is served by the front door
:func:`repro.serving.answer` (goal-directed chase, UCQ rewriting, or
their hybrid — with budgets, engine selection and verdicts); the
:func:`certain_answer` here is a deprecated thin alias onto it.  The
instance-level checks below are the evaluation primitives serving builds
on; each accepts an optional ``trace`` recording the probe as one
``plan="probe"`` round, so their cost shows up in the same structured
traces as chase rounds.
"""

from __future__ import annotations

import warnings
from typing import Iterator, Sequence

from repro.logic.homomorphisms import find_homomorphism, homomorphisms
from repro.logic.instances import Instance
from repro.logic.substitutions import Substitution
from repro.logic.terms import Term
from repro.obs.trace import RunTrace
from repro.queries.cq import ConjunctiveQuery
from repro.queries.ucq import UCQ
from repro.rules.ruleset import RuleSet


def _seed_for(
    query: ConjunctiveQuery, bindings: Sequence[Term]
) -> dict | None:
    """Build the answer-variable seed, or None when inconsistent.

    An empty ``bindings`` leaves all answer variables free (the query is
    then evaluated as if Boolean, e.g. to enumerate its answers).
    """
    if not bindings:
        return {}
    if len(bindings) != len(query.answers):
        raise ValueError(
            f"expected {len(query.answers)} binding(s), got {len(bindings)}"
        )
    seed: dict = {}
    for variable, value in zip(query.answers, bindings):
        if variable in seed and seed[variable] != value:
            return None
        seed[variable] = value
    return seed


def entails_cq(
    instance: Instance,
    query: ConjunctiveQuery,
    bindings: Sequence[Term] = (),
    injective: bool = False,
    *,
    trace: RunTrace | None = None,
) -> bool:
    """``I ⊨ q(t̄)`` (or ``⊨inj`` with ``injective=True``).

    With a ``trace``, the probe lands as one ``plan="probe"`` round
    record (the search time on the ``enumerate`` phase), uniform with
    the chase entry points' round tracing.
    """
    seed = _seed_for(query, bindings)
    if seed is None:
        return False
    if trace is None:
        return (
            find_homomorphism(
                query.atoms, instance, seed=seed, injective=injective
            )
            is not None
        )
    recorder = trace.begin_round(len(trace.rounds) + 1)
    recorder.plan = "probe"
    found = False
    try:
        with recorder.outer_phase("enumerate"):
            found = (
                find_homomorphism(
                    query.atoms, instance, seed=seed, injective=injective
                )
                is not None
            )
    finally:
        trace.end_round(
            recorder,
            triggers=len(query.atoms),
            applied=int(found),
            new_atoms=0,
        )
    return found


def entails_ucq(
    instance: Instance,
    query: UCQ,
    bindings: Sequence[Term] = (),
    injective: bool = False,
    *,
    trace: RunTrace | None = None,
) -> bool:
    """``I ⊨ Q(t̄)``: some disjunct maps (answer variables pinned).

    A disjunct whose answer tuple identifies variables is evaluated on the
    correspondingly identified binding; incompatible bindings simply fail
    for that disjunct.  ``trace`` records one ``plan="probe"`` round per
    disjunct actually probed.
    """
    return any(
        entails_cq(instance, disjunct, bindings, injective=injective, trace=trace)
        for disjunct in query
    )


def answer_homomorphisms(
    instance: Instance,
    query: ConjunctiveQuery,
    bindings: Sequence[Term] = (),
    injective: bool = False,
) -> Iterator[Substitution]:
    """Yield the homomorphisms witnessing ``I ⊨ q(t̄)``."""
    seed = _seed_for(query, bindings)
    if seed is None:
        return
    yield from homomorphisms(
        query.atoms, instance, seed=seed, injective=injective
    )


def answers(
    instance: Instance, query: ConjunctiveQuery
) -> set[tuple[Term, ...]]:
    """All answer tuples of ``query`` over ``instance``."""
    result: set[tuple[Term, ...]] = set()
    for hom in homomorphisms(query.atoms, instance):
        result.add(tuple(hom.apply_term(v) for v in query.answers))
    return result


def certain_answer(
    instance: Instance,
    rules: RuleSet,
    query: ConjunctiveQuery | UCQ,
    bindings: Sequence[Term] = (),
    max_levels: int = 6,
) -> bool:
    """``⟨R, I⟩ ⊨ Q(t̄)`` on a chase prefix of depth ``max_levels``.

    .. deprecated::
        Use :func:`repro.serving.answer` — the same verdict with
        strategy selection, goal-directed early stopping, engine/worker
        passthrough, tracing and an explicit soundness/completeness
        verdict.  This alias delegates to
        ``answer(..., strategy="chase")``, which returns identical
        verdicts (the goal-directed run stops early on a witness and
        prunes query-irrelevant rules, but is per-level complete for the
        query, so equal depth budgets decide identically).
    """
    warnings.warn(
        "certain_answer() is deprecated; use repro.serving.answer() "
        "(strategy='chase' reproduces this behavior)",
        DeprecationWarning,
        stacklevel=2,
    )
    # Imported lazily: serving sits above queries in the layering.
    from repro.serving import answer

    return answer(
        instance,
        rules,
        query,
        bindings,
        strategy="chase",
        max_levels=max_levels,
    ).entailed
