"""Parametric rule-set families for scaling experiments.

Each family is a function ``family(k) -> RuleSet`` (or ``CorpusEntry``)
with known ground truth for all parameters, letting the benches sweep a
dimension instead of sampling a fixed corpus.
"""

from __future__ import annotations

from repro.corpus.examples import CorpusEntry
from repro.logic.instances import Instance
from repro.rules.parser import parse_instance, parse_rules
from repro.rules.ruleset import RuleSet


def inclusion_chain(length: int) -> CorpusEntry:
    """``P_0 ⊑ ∃P_1 ⊑ ... ⊑ ∃P_n``: linear, bdd, loop-free.

    The rewriting depth of a ``P_n`` query grows linearly with ``length``
    — the family behind the rewriting-depth sweeps.
    """
    if length < 1:
        raise ValueError("length must be at least 1")
    lines = [
        f"P{i}(x,y) -> exists z. P{i + 1}(y,z)" for i in range(length)
    ]
    rules = parse_rules("\n".join(lines), name=f"inclusion_chain_{length}")
    return CorpusEntry(
        name=f"inclusion_chain_{length}",
        rules=rules,
        instance=parse_instance("P0(a,b)"),
        is_bdd=True,
        entails_loop=False,
        tournaments_grow=False,
        description=f"linear inclusion chain of length {length}",
    )


def branching_tree(fanout: int) -> CorpusEntry:
    """Each node spawns ``fanout`` successors: the chase is a tree.

    Loop-free; tournaments cap at 2 (trees have no triangles).  Not
    predicate-unique for ``fanout > 1`` — exercising the streamlining
    surgery on rules it actually has to fix.
    """
    if fanout < 1:
        raise ValueError("fanout must be at least 1")
    heads = ", ".join(f"E(y,z{i})" for i in range(fanout))
    names = ", ".join(f"z{i}" for i in range(fanout))
    rules = parse_rules(
        f"E(x,y) -> exists {names}. {heads}",
        name=f"branching_tree_{fanout}",
    )
    return CorpusEntry(
        name=f"branching_tree_{fanout}",
        rules=rules,
        instance=parse_instance("E(a,b)"),
        is_bdd=True,
        entails_loop=False,
        tournaments_grow=False,
        description=f"tree-growing rule with fanout {fanout}",
    )


def merge_ladder(width: int) -> CorpusEntry:
    """The tournament builder with ``width`` parallel successor rules.

    Still bdd; the merge rule densifies all branches into tournaments, so
    the loop appears — Property (p) at increasing densities.
    """
    if width < 1:
        raise ValueError("width must be at least 1")
    lines = ["top -> exists x, y. E(x,y)"]
    for i in range(width):
        lines.append(f"E(x,y) -> exists z{i}. E(y,z{i})")
    lines.append("E(x,xp), E(y,yp) -> E(x,yp)")
    rules = parse_rules("\n".join(lines), name=f"merge_ladder_{width}")
    return CorpusEntry(
        name=f"merge_ladder_{width}",
        rules=rules,
        instance=Instance(),
        is_bdd=True,
        entails_loop=True,
        tournaments_grow=True,
        description=f"tournament builder with {width} successor rules",
    )


def datalog_grid(size: int) -> CorpusEntry:
    """Pure Datalog: transitive closure over a ``size``-path instance.

    Terminating; the closure has exactly ``size(size+1)/2`` edges — an
    exact oracle for the Datalog engines.
    """
    from repro.corpus.generators import path_instance

    rules = parse_rules(
        "E(x,y), E(y,z) -> E(x,z)", name=f"datalog_grid_{size}"
    )
    return CorpusEntry(
        name=f"datalog_grid_{size}",
        rules=rules,
        instance=path_instance(size),
        is_bdd=False,  # transitivity is not bdd
        entails_loop=False,
        tournaments_grow=False,
        description=f"transitive closure of a {size}-path (Datalog)",
    )


def family_sweep(family, parameters) -> list[CorpusEntry]:
    """Materialize a family over a parameter list."""
    return [family(parameter) for parameter in parameters]
