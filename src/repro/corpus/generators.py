"""Seeded workload generators: instances, tournaments, random bdd rule sets.

All generators take explicit seeds so every experiment run is exactly
reproducible.
"""

from __future__ import annotations

import random
from typing import Sequence

from repro.logic.atoms import Atom
from repro.logic.instances import Instance
from repro.logic.predicates import EDGE, Predicate
from repro.logic.terms import Constant, Variable
from repro.rules.rule import Rule
from repro.rules.ruleset import RuleSet


# ----------------------------------------------------------------------
# Instances
# ----------------------------------------------------------------------

def path_instance(length: int, predicate: Predicate = EDGE) -> Instance:
    """A directed path ``c0 -> c1 -> ... -> c_length``."""
    atoms = [
        Atom(predicate, (Constant(f"C{i}"), Constant(f"C{i + 1}")))
        for i in range(length)
    ]
    return Instance(atoms)


def cycle_instance(length: int, predicate: Predicate = EDGE) -> Instance:
    """A directed cycle of ``length`` vertices (length 1 is a loop)."""
    if length < 1:
        raise ValueError("cycle length must be at least 1")
    atoms = [
        Atom(
            predicate,
            (Constant(f"C{i}"), Constant(f"C{(i + 1) % length}")),
        )
        for i in range(length)
    ]
    return Instance(atoms)


def tournament_instance(
    size: int, seed: int = 0, predicate: Predicate = EDGE
) -> Instance:
    """A complete tournament on ``size`` constants, random orientation."""
    rng = random.Random(seed)
    atoms = []
    for i in range(size):
        for j in range(i + 1, size):
            source, target = (i, j) if rng.random() < 0.5 else (j, i)
            atoms.append(
                Atom(
                    predicate,
                    (Constant(f"C{source}"), Constant(f"C{target}")),
                )
            )
    return Instance(atoms)


def random_digraph_instance(
    size: int,
    edge_probability: float,
    seed: int = 0,
    predicate: Predicate = EDGE,
    allow_loops: bool = False,
) -> Instance:
    """An Erdős–Rényi style random digraph over constants."""
    rng = random.Random(seed)
    atoms = []
    for i in range(size):
        for j in range(size):
            if i == j and not allow_loops:
                continue
            if rng.random() < edge_probability:
                atoms.append(
                    Atom(predicate, (Constant(f"C{i}"), Constant(f"C{j}")))
                )
    return Instance(atoms)


def random_instance(
    signature: Sequence[Predicate],
    n_terms: int,
    n_atoms: int,
    seed: int = 0,
) -> Instance:
    """Random atoms over the given signature and ``n_terms`` constants."""
    rng = random.Random(seed)
    terms = [Constant(f"C{i}") for i in range(n_terms)]
    predicates = [p for p in signature if p.arity > 0]
    if not predicates:
        raise ValueError("need at least one non-nullary predicate")
    atoms = []
    for _ in range(n_atoms):
        predicate = rng.choice(predicates)
        args = tuple(rng.choice(terms) for _ in range(predicate.arity))
        atoms.append(Atom(predicate, args))
    return Instance(atoms)


# ----------------------------------------------------------------------
# Rule sets
# ----------------------------------------------------------------------

def random_nonrecursive_ruleset(
    n_strata: int = 3,
    predicates_per_stratum: int = 2,
    rules_per_stratum: int = 2,
    existential_probability: float = 0.6,
    seed: int = 0,
) -> RuleSet:
    """A random *non-recursive* binary rule set — bdd by construction.

    Predicates are organized in strata; every rule's body predicates come
    from strictly lower strata than its head predicate, so the predicate
    dependency graph is acyclic and backward chaining terminates.
    """
    rng = random.Random(seed)
    strata: list[list[Predicate]] = [
        [
            Predicate(f"L{level}P{index}", 2)
            for index in range(predicates_per_stratum)
        ]
        for level in range(n_strata)
    ]
    rules: list[Rule] = []
    x, y, z = Variable("x"), Variable("y"), Variable("z")
    for level in range(1, n_strata):
        lower = [p for stratum in strata[:level] for p in stratum]
        for _ in range(rules_per_stratum):
            head_predicate = rng.choice(strata[level])
            body_size = rng.choice([1, 2])
            body_predicates = [rng.choice(lower) for _ in range(body_size)]
            if body_size == 1:
                body = [Atom(body_predicates[0], (x, y))]
            else:
                body = [
                    Atom(body_predicates[0], (x, y)),
                    Atom(body_predicates[1], (y, z)),
                ]
            if rng.random() < existential_probability:
                w = Variable("w")
                head = [Atom(head_predicate, (y, w))]
            else:
                head = [Atom(head_predicate, (x, y))]
            rules.append(Rule(body, head))
    return RuleSet(rules, name=f"random_nr_{seed}")


def growing_tournament_ruleset(merge_rules: int = 1) -> RuleSet:
    """Variants of the bdd tournament builder with extra merge rules.

    Each extra merge rule adds another "jump" Datalog rule preserving
    bdd-ness while densifying the tournament faster.
    """
    lines = [
        "top -> exists x, y. E(x,y)",
        "E(x,y) -> exists z. E(y,z)",
        "E(x,xp), E(y,yp) -> E(x,yp)",
    ]
    for index in range(1, merge_rules):
        lines.append(f"E(x,y), E(u{index},v{index}) -> E(x,v{index})")
    from repro.rules.parser import parse_rules

    return parse_rules(
        "\n".join(lines), name=f"growing_tournament_{merge_rules}"
    )


def edge_coloring(
    instance: Instance,
    n_colors: int,
    seed: int = 0,
    predicate: Predicate = EDGE,
):
    """A seeded ``k``-coloring of the instance's E-edges (Theorem 7 input).

    Returns a function ``(u, v) -> color`` on unordered pairs; both
    orientations of a pair get the same color.
    """
    rng = random.Random(seed)
    colors: dict[frozenset, int] = {}
    for atom in sorted(instance.with_predicate(predicate)):
        pair = frozenset(atom.args)
        if pair not in colors:
            colors[pair] = rng.randrange(n_colors)

    def coloring(u, v) -> int:
        return colors.get(frozenset((u, v)), 0)

    return coloring
