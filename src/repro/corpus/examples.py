"""The paper's running examples and a curated rule-set corpus.

Every experiment (EXP-1 ... EXP-7) draws from this corpus.  Each entry
documents its provenance in the paper and its known classification
(bdd or not, loop-entailing or not, tournament-growing or not).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.logic.instances import Instance
from repro.rules.parser import parse_instance, parse_rules
from repro.rules.ruleset import RuleSet


@dataclass(frozen=True)
class CorpusEntry:
    """A rule set with its paper-known ground truth."""

    name: str
    rules: RuleSet
    instance: Instance
    is_bdd: bool
    entails_loop: bool
    tournaments_grow: bool
    description: str = ""


def example_1() -> CorpusEntry:
    """Example 1 of the paper: successor + transitivity over ``E(a, b)``.

    Not bdd (transitivity needs unboundedly many applications); the chase
    entails no loop, while every finite model does — the prototypical
    finite/unrestricted divergence.
    """
    rules = parse_rules(
        """
        E(x,y) -> exists z. E(y,z)
        E(x,y), E(y,z) -> E(x,z)
        """,
        name="example1",
    )
    return CorpusEntry(
        name="example1",
        rules=rules,
        instance=parse_instance("E(a,b)"),
        is_bdd=False,
        entails_loop=False,
        tournaments_grow=True,
        description="Example 1: successor + transitivity (not bdd)",
    )


def example_1_bdd() -> CorpusEntry:
    """The bdd-ified Example 1 (Section 1's Contributions discussion).

    Transitivity is replaced by ``E(x,x') ∧ E(y,y') → E(x,y')``, which
    entails it; the rule set becomes bdd, the chase entails arbitrarily
    large tournaments — and, exactly as Property (p) predicts, the loop.
    """
    rules = parse_rules(
        """
        E(x,y) -> exists z. E(y,z)
        E(x,xp), E(y,yp) -> E(x,yp)
        """,
        name="example1_bdd",
    )
    return CorpusEntry(
        name="example1_bdd",
        rules=rules,
        instance=parse_instance("E(a,b)"),
        is_bdd=True,
        entails_loop=True,
        tournaments_grow=True,
        description="bdd variant of Example 1: tournaments and loop",
    )


def tournament_builder() -> CorpusEntry:
    """Instance-free variant: ``⊤`` seeds an edge, then Example 1 bdd rules.

    The chase of ``{⊤}`` grows tournaments of every size and entails the
    loop — the Theorem 28 shape (instance is ``{⊤}``).
    """
    rules = parse_rules(
        """
        top -> exists x, y. E(x,y)
        E(x,y) -> exists z. E(y,z)
        E(x,xp), E(y,yp) -> E(x,yp)
        """,
        name="tournament_builder",
    )
    return CorpusEntry(
        name="tournament_builder",
        rules=rules,
        instance=Instance(),
        is_bdd=True,
        entails_loop=True,
        tournaments_grow=True,
        description="top-seeded tournament builder (Theorem 28 shape)",
    )


def infinite_path() -> CorpusEntry:
    """A single linear rule: the chase is an infinite simple path.

    bdd (linear), loop-free, and its tournaments cap at size 2 (adjacent
    pairs) — the canonical Property (p)-consistent, loop-free rule set.
    """
    rules = parse_rules("E(x,y) -> exists z. E(y,z)", name="infinite_path")
    return CorpusEntry(
        name="infinite_path",
        rules=rules,
        instance=parse_instance("E(a,b)"),
        is_bdd=True,
        entails_loop=False,
        tournaments_grow=False,
        description="single linear successor rule (infinite path)",
    )


def two_relation_linear() -> CorpusEntry:
    """Mutually recursive inclusion dependencies (linear, hence bdd & fc).

    Rosati's fragment [27]: the chase alternates ``P``/``Q`` atoms forever
    but stays a path; no ``E``-tournaments at all.
    """
    rules = parse_rules(
        """
        P(x,y) -> exists z. Q(y,z)
        Q(x,y) -> exists z. P(y,z)
        """,
        name="two_relation_linear",
    )
    return CorpusEntry(
        name="two_relation_linear",
        rules=rules,
        instance=parse_instance("P(a,b)"),
        is_bdd=True,
        entails_loop=False,
        tournaments_grow=False,
        description="mutually recursive inclusion dependencies",
    )


def dense_overlay() -> CorpusEntry:
    """Linear growth plus a Datalog rule overlaying edges two steps apart.

    bdd?  The Datalog rule ``E(x,y), E(y,z) -> F(x,z)`` is non-recursive
    over ``F`` so rewriting terminates; the ``E``-graph stays a path
    (loop-free), while ``F`` collects the 2-step pairs.
    """
    rules = parse_rules(
        """
        E(x,y) -> exists z. E(y,z)
        E(x,y), E(y,z) -> F(x,z)
        """,
        name="dense_overlay",
    )
    return CorpusEntry(
        name="dense_overlay",
        rules=rules,
        instance=parse_instance("E(a,b)"),
        is_bdd=True,
        entails_loop=False,
        tournaments_grow=False,
        description="path growth with a non-recursive Datalog overlay",
    )


def wide_signature() -> CorpusEntry:
    """A ternary-predicate rule set for the reification experiments."""
    rules = parse_rules(
        """
        T(x,y,u) -> exists z. T(y,z,u)
        T(x,y,u) -> E(x,y)
        """,
        name="wide_signature",
    )
    return CorpusEntry(
        name="wide_signature",
        rules=rules,
        instance=parse_instance("T(a,b,c)"),
        is_bdd=True,
        entails_loop=False,
        tournaments_grow=False,
        description="ternary signature: exercises reification (§4.2)",
    )


def datalog_chain(length: int = 3) -> CorpusEntry:
    """``P_0 ⊆ P_1 ⊆ ... ⊆ P_n``: quickness fails before ``rew`` (§4.4).

    The atom ``P_n(a, b)`` has all frontier terms in ``adom(I)`` but needs
    ``length`` chase levels — body rewriting shortcuts it to one.
    """
    lines = [
        f"P{i}(x,y) -> P{i + 1}(x,y)" for i in range(length)
    ]
    rules = parse_rules("\n".join(lines), name=f"datalog_chain_{length}")
    return CorpusEntry(
        name=f"datalog_chain_{length}",
        rules=rules,
        instance=parse_instance("P0(a,b)"),
        is_bdd=True,
        entails_loop=False,
        tournaments_grow=False,
        description=f"datalog inclusion chain of length {length}",
    )


def sticky_pair() -> CorpusEntry:
    """A small sticky, non-linear rule set (Calì-Gottlob-Pieris style).

    Sticky sets are bdd and fc [7, 18]; this one keeps all join variables
    in heads so the marking procedure marks nothing join-relevant.
    """
    rules = parse_rules(
        """
        R(x,y), S(y,z) -> T(y)
        T(y) -> exists w. R(y,w)
        """,
        name="sticky_pair",
    )
    return CorpusEntry(
        name="sticky_pair",
        rules=rules,
        instance=parse_instance("R(a,b), S(b,c)"),
        is_bdd=True,
        entails_loop=False,
        tournaments_grow=False,
        description="sticky non-linear pair",
    )


def bowtie_merge() -> CorpusEntry:
    """A predicate-unique, forward-existential multi-head rule (§4.3 note).

    The paper's example ``A(x), B(y) → ∃z D(x,z), E(y,z)`` showing
    predicate-unique + forward-existential does not imply single-head.
    """
    rules = parse_rules(
        """
        A(x), B(y) -> exists z. D(x,z), E(y,z)
        """,
        name="bowtie_merge",
    )
    return CorpusEntry(
        name="bowtie_merge",
        rules=rules,
        instance=parse_instance("A(a), B(b)"),
        is_bdd=True,
        entails_loop=False,
        tournaments_grow=False,
        description="two-head predicate-unique forward-existential rule",
    )


def guarded_triangle() -> CorpusEntry:
    """A guarded, non-linear rule set (the bounded-treewidth route [5]).

    The guard ``G(x,y,z)`` covers every body variable; the chase stays
    tree-like over the guards.
    """
    rules = parse_rules(
        """
        G(x,y,z), E(x,y) -> exists w. E(z,w)
        G(x,y,z) -> E(x,y)
        """,
        name="guarded_triangle",
    )
    return CorpusEntry(
        name="guarded_triangle",
        rules=rules,
        instance=parse_instance("G(a,b,c)"),
        is_bdd=True,
        entails_loop=False,
        tournaments_grow=False,
        description="guarded non-linear rules (bounded treewidth route)",
    )


def backward_growth() -> CorpusEntry:
    """A *backward*-existential rule: ``E(x,y) → ∃z E(z,x)``.

    Grows predecessors instead of successors — not forward-existential,
    so the streamlining surgery has real work to do; still linear (bdd)
    and loop-free.
    """
    rules = parse_rules(
        "E(x,y) -> exists z. E(z,x)", name="backward_growth"
    )
    return CorpusEntry(
        name="backward_growth",
        rules=rules,
        instance=parse_instance("E(a,b)"),
        is_bdd=True,
        entails_loop=False,
        tournaments_grow=False,
        description="backward-existential linear rule",
    )


def full_corpus() -> list[CorpusEntry]:
    """All curated entries, deterministic order."""
    return [
        example_1(),
        example_1_bdd(),
        tournament_builder(),
        infinite_path(),
        two_relation_linear(),
        dense_overlay(),
        wide_signature(),
        datalog_chain(3),
        sticky_pair(),
        bowtie_merge(),
        guarded_triangle(),
        backward_growth(),
    ]


def bdd_corpus() -> list[CorpusEntry]:
    """The bdd subset — inputs of every Theorem 1 experiment."""
    return [entry for entry in full_corpus() if entry.is_bdd]
