"""One-call analysis reports for rule sets.

``analyze(entry)`` runs the whole battery — classification, termination
certificates, Property (p), bdd probing, chromatic/girth measurements —
and returns a flat dictionary, which the ``corpus_report`` example and the
CLI render as a table.
"""

from __future__ import annotations

from typing import Any

from repro.chase.bounds import suggested_level_budget
from repro.chase.oblivious import oblivious_chase
from repro.core.coloring import chromatic_number, girth
from repro.core.egraph import egraph
from repro.core.theorem import check_property_p
from repro.core.tournament import entails_loop
from repro.corpus.examples import CorpusEntry
from repro.logic.instances import Instance
from repro.rewriting.bdd import ucq_rewritability_certificate
from repro.rules.acyclicity import chase_terminates_certificate
from repro.rules.classes import classify
from repro.rules.parser import parse_query
from repro.rules.ruleset import RuleSet


def analyze(
    rules: RuleSet,
    instance: Instance | None = None,
    max_levels: int = 4,
    max_atoms: int = 30_000,
    rewriting_depth: int = 8,
) -> dict[str, Any]:
    """Run the full analysis battery on one rule set.

    Returns a flat dict with: syntactic classes, termination certificate,
    a bdd probe (fixpoint of the loop query's rewriting), the Property (p)
    report fields, and chromatic/girth measurements of the chase prefix's
    E-graph.
    """
    start = instance if instance is not None else Instance()
    report: dict[str, Any] = {"rules": len(rules)}
    report.update(classify(rules))
    report["termination_certificate"] = chase_terminates_certificate(rules)

    loop_certificate = ucq_rewritability_certificate(
        parse_query("E(x,x)"), rules, max_depth=rewriting_depth
    )
    report["loop_query_rewritable"] = loop_certificate is not None
    if loop_certificate is not None:
        report["loop_rewriting_size"] = len(loop_certificate.rewriting)

    p_report = check_property_p(
        rules, start, max_levels=max_levels, max_atoms=max_atoms
    )
    report["tournament_sizes"] = p_report.tournament_sizes
    report["loop_level"] = p_report.loop_level
    report["property_p_consistent"] = p_report.consistent_with_property_p
    report["chase_terminated"] = p_report.terminated

    chase_result = oblivious_chase(
        start, rules, max_levels=max_levels, max_atoms=max_atoms
    )
    graph = egraph(chase_result.instance)
    if entails_loop(chase_result.instance):
        report["chromatic_number"] = None  # loops are uncolorable
    else:
        try:
            report["chromatic_number"] = chromatic_number(graph)
        except ValueError:
            report["chromatic_number"] = None
    graph_girth = girth(graph)
    report["girth"] = None if graph_girth == float("inf") else graph_girth
    report["suggested_level_budget"] = suggested_level_budget(rules)
    return report


def analyze_entry(entry: CorpusEntry, **kwargs) -> dict[str, Any]:
    """Analyze a corpus entry and check its recorded ground truth."""
    report = analyze(entry.rules, entry.instance, **kwargs)
    report["name"] = entry.name
    report["expected_loop"] = entry.entails_loop
    observed_loop = report["loop_level"] is not None
    if observed_loop == entry.entails_loop:
        consistent = True
    else:
        # A missing loop on an unfinished chase may still appear deeper;
        # an observed loop that should not exist is a hard inconsistency.
        consistent = entry.entails_loop and not report["chase_terminated"]
    report["ground_truth_consistent"] = consistent
    return report
