"""One-call analysis batteries over rule sets and corpus entries."""

from repro.analysis.report import analyze, analyze_entry

__all__ = ["analyze", "analyze_entry"]
