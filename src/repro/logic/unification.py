"""Term partitions and most-general unifiers.

Piece-unifiers (the heart of the UCQ-rewriting engine, see
:mod:`repro.rewriting.piece_unifier`) are built on *admissible term
partitions*: equivalence classes over the terms of a query and a rule head
such that unified positions fall in the same class.  This module provides
the union-find based :class:`TermPartition` together with validity checks
and representative selection.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.datastructures.unionfind import UnionFind
from repro.logic.atoms import Atom
from repro.logic.substitutions import Substitution
from repro.logic.terms import Term


class TermPartition:
    """A partition of terms induced by unification constraints."""

    def __init__(self) -> None:
        self._uf: UnionFind[Term] = UnionFind()

    def add(self, term: Term) -> None:
        self._uf.add(term)

    def union(self, left: Term, right: Term) -> None:
        self._uf.union(left, right)

    def unify_atoms(self, left: Atom, right: Atom) -> bool:
        """Add constraints equating ``left`` and ``right`` positionwise.

        Returns False (leaving spurious unions in place — callers discard
        the partition on failure) when the predicates differ.
        """
        if left.predicate != right.predicate:
            return False
        for l_term, r_term in zip(left.args, right.args):
            self.union(l_term, r_term)
        return True

    def together(self, left: Term, right: Term) -> bool:
        """True when the two terms are in the same class."""
        return self._uf.connected(left, right)

    def classes(self) -> list[set[Term]]:
        """Return the equivalence classes, deterministically ordered."""
        groups = self._uf.groups()
        return sorted(groups, key=lambda g: min((t._rank, t.name) for t in g))

    def class_of(self, term: Term) -> set[Term]:
        """Return the class containing ``term`` (singleton if unseen)."""
        self._uf.add(term)
        return self._uf.group_of(term)

    def is_admissible(self) -> bool:
        """True when no class contains two distinct constants."""
        for group in self._uf.groups():
            constants = {t for t in group if t.is_constant}
            if len(constants) > 1:
                return False
        return True

    def representative_substitution(
        self, prefer: Sequence[Term] = ()
    ) -> Substitution:
        """Return a substitution mapping each term to its class representative.

        Representatives are chosen as: the constant of the class if any,
        otherwise the first ``prefer`` term present in the class, otherwise
        the smallest term of the class.  The result is idempotent.
        """
        mapping: dict[Term, Term] = {}
        for group in self._uf.groups():
            constants = sorted(t for t in group if t.is_constant)
            if constants:
                representative = constants[0]
            else:
                preferred = [t for t in prefer if t in group]
                representative = preferred[0] if preferred else min(group)
            for term in group:
                if term != representative:
                    mapping[term] = representative
        return Substitution(mapping)


def mgu_of_atom_pairs(
    pairs: Iterable[tuple[Atom, Atom]]
) -> Substitution | None:
    """Return a most-general unifier for the given atom pairs, or None.

    All pairs must unify simultaneously; the unifier maps each term to a
    canonical representative of its class.  Distinct constants in one class
    make unification fail.
    """
    partition = TermPartition()
    for left, right in pairs:
        if not partition.unify_atoms(left, right):
            return None
    if not partition.is_admissible():
        return None
    return partition.representative_substitution()
