"""Terms of first-order logic: constants, variables and labelled nulls.

The paper (Section 2.1) works with instances whose active domain consists of
variables only.  For engineering purposes we distinguish three kinds of
terms:

* :class:`Constant` — a rigid database value; homomorphisms map it to itself.
* :class:`Variable` — a query/rule variable; homomorphisms map it freely.
* :class:`Null` — a labelled null invented by the chase; like a variable it
  is mapped freely by homomorphisms, but carries a globally unique identity
  so that distinct chase steps never collide.

All terms are immutable, hashable and totally ordered (constants < variables
< nulls, then by name), which keeps every iteration in the library
deterministic.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Union


class Term:
    """Abstract base class of all terms."""

    __slots__ = ("name", "_hash")

    # Order rank used for the deterministic total order across term kinds.
    _rank = 0

    def __init__(self, name: str):
        self.name = name
        # Terms are hashed constantly (every index lookup, every binding
        # probe); caching saves a tuple build per call.
        self._hash = hash((type(self).__name__, name))

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.name!r})"

    def __str__(self) -> str:
        return self.name

    def __eq__(self, other) -> bool:
        return type(self) is type(other) and self.name == other.name

    def __hash__(self) -> int:
        return self._hash

    def __reduce__(self):
        # Rebuild through __init__ so the cached hash is recomputed with
        # the unpickling interpreter's seed: a verbatim-copied _hash from
        # another process (spawned workers, different PYTHONHASHSEED)
        # would silently break equality and set membership.
        return (type(self), (self.name,))

    def __lt__(self, other: "Term") -> bool:
        if not isinstance(other, Term):
            return NotImplemented
        return (self._rank, self.name) < (other._rank, other.name)

    def __le__(self, other: "Term") -> bool:
        if not isinstance(other, Term):
            return NotImplemented
        return (self._rank, self.name) <= (other._rank, other.name)

    @property
    def is_constant(self) -> bool:
        return isinstance(self, Constant)

    @property
    def is_variable(self) -> bool:
        return isinstance(self, Variable)

    @property
    def is_null(self) -> bool:
        return isinstance(self, Null)


class Constant(Term):
    """A rigid database constant.  Homomorphisms fix constants pointwise."""

    __slots__ = ()
    _rank = 0


class Variable(Term):
    """A rule or query variable.  Mapped freely by substitutions."""

    __slots__ = ()
    _rank = 1


class Null(Term):
    """A labelled null created by the chase.

    Nulls behave like variables for homomorphism purposes but their names
    come from a :class:`FreshSupply` so each chase run produces globally
    distinct terms.
    """

    __slots__ = ()
    _rank = 2


#: Term kinds indexed by their ``_rank`` — the wire spec of a term is
#: ``(rank, name)``, so :func:`term_from_wire` is the inverse of
#: ``(type(t)._rank, t.name)``.  Used by the engine's interned-term
#: transport (:mod:`repro.engine.wire`).
TERM_KINDS: tuple[type, ...] = (Constant, Variable, Null)


def term_from_wire(rank: int, name: str) -> Term:
    """Rebuild a term from its wire spec ``(rank, name)``.

    The interned-term transport ships each distinct term **once** as this
    spec; rebuilding through the class constructor recomputes the cached
    hash under the receiving interpreter's own ``PYTHONHASHSEED`` — the
    same guarantee :meth:`Term.__reduce__` gives pickled terms.
    """
    return TERM_KINDS[rank](name)


class FreshSupply:
    """Deterministic supply of fresh variables and nulls.

    A supply hands out names ``prefix0, prefix1, ...``; two supplies with
    different prefixes never collide.  Supplies are cheap; create one per
    chase run or per rewriting run for reproducible names.

    The supply exposes its :attr:`position` (how many names were handed
    out) and can :meth:`rewind` to an earlier position.  The sharded
    firing path uses this to keep the supply bit-identical to the
    sequential engines on a mid-round budget stop: it draws names for a
    whole round speculatively and rewinds to the stop position when the
    atom budget cuts the round short.
    """

    def __init__(self, prefix: str = "_n"):
        self._prefix = prefix
        self._counter = 0

    @property
    def position(self) -> int:
        """How many names this supply has handed out so far."""
        return self._counter

    def rewind(self, position: int) -> None:
        """Move the supply back to an earlier :attr:`position`.

        Names drawn after ``position`` will be handed out again, so the
        caller must guarantee none of them escaped (the sharded firing
        path discards every atom instantiated past a budget stop).
        """
        if position < 0 or position > self._counter:
            raise ValueError(
                f"cannot rewind supply to position {position} "
                f"(current position: {self._counter})"
            )
        self._counter = position

    def null(self) -> Null:
        """Return a fresh labelled null."""
        count = self._counter
        self._counter = count + 1
        return Null(f"{self._prefix}{count}")

    def variable(self) -> Variable:
        """Return a fresh variable."""
        count = self._counter
        self._counter = count + 1
        return Variable(f"{self._prefix}{count}")

    def nulls(self, count: int) -> list[Null]:
        """Return ``count`` fresh nulls."""
        return [self.null() for _ in range(count)]

    def variables(self, count: int) -> list[Variable]:
        """Return ``count`` fresh variables."""
        return [self.variable() for _ in range(count)]


TermLike = Union[Term, str]


def as_term(value: TermLike) -> Term:
    """Coerce ``value`` into a :class:`Term`.

    Strings follow the DSL convention: names starting with an uppercase
    letter or a digit, or quoted with single quotes, become constants; all
    other names become variables.
    """
    if isinstance(value, Term):
        return value
    if not isinstance(value, str) or not value:
        raise TypeError(f"cannot interpret {value!r} as a term")
    if value.startswith("'") and value.endswith("'") and len(value) >= 3:
        return Constant(value[1:-1])
    first = value[0]
    if first.isupper() or first.isdigit():
        return Constant(value)
    return Variable(value)


def variables_of(terms: Iterable[Term]) -> Iterator[Variable]:
    """Yield the variables among ``terms`` in order of appearance."""
    for term in terms:
        if isinstance(term, Variable):
            yield term


def fresh_renaming(terms: Iterable[Term], supply: FreshSupply) -> dict[Term, Term]:
    """Return a renaming of all non-constant ``terms`` to fresh variables.

    The same input term is always mapped to the same fresh variable, so the
    renaming is injective on its domain.
    """
    renaming: dict[Term, Term] = {}
    for term in terms:
        if term.is_constant or term in renaming:
            continue
        renaming[term] = supply.variable()
    return renaming
