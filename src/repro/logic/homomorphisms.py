"""Homomorphism search between atom sets.

A homomorphism from atom set ``A`` to atom set ``B`` is a substitution
``π`` with ``π(A) ⊆ B`` (constants fixed, variables and nulls free).  The
searcher is a backtracking matcher with two standard optimizations:

* atoms of ``A`` are processed most-constrained-first (fewest candidate
  atoms in ``B``, then most already-bound terms), and
* candidates are drawn from a per-predicate index of ``B``.

The module also provides injective homomorphisms (for ``⊨inj``),
isomorphism checking, and homomorphic equivalence ``↔`` (used pervasively in
Section 4 to compare chases before and after surgeries).
"""

from __future__ import annotations

from typing import Iterable, Iterator

from repro.logic.atoms import Atom
from repro.logic.instances import Instance
from repro.logic.substitutions import Substitution
from repro.logic.terms import Term


def _as_instance(atoms: Iterable[Atom] | Instance) -> Instance:
    if isinstance(atoms, Instance):
        return atoms
    return Instance(atoms, add_top=False)


def _match_atom(
    atom: Atom,
    candidate: Atom,
    binding: dict[Term, Term],
    used_targets: set[Term] | None,
) -> list[Term] | None:
    """Try to extend ``binding`` so that ``binding(atom) == candidate``.

    Returns the list of newly-bound source terms on success (so the caller
    can undo), or None when the match is impossible.  When ``used_targets``
    is given the extension must keep the binding injective.
    """
    newly_bound: list[Term] = []
    for source, target in zip(atom.args, candidate.args):
        if source.is_constant:
            if source != target:
                for t in newly_bound:
                    if used_targets is not None:
                        used_targets.discard(binding[t])
                    del binding[t]
                return None
            continue
        bound = binding.get(source)
        if bound is not None:
            if bound != target:
                for t in newly_bound:
                    if used_targets is not None:
                        used_targets.discard(binding[t])
                    del binding[t]
                return None
            continue
        if used_targets is not None and target in used_targets:
            for t in newly_bound:
                used_targets.discard(binding[t])
                del binding[t]
            return None
        binding[source] = target
        if used_targets is not None:
            used_targets.add(target)
        newly_bound.append(source)
    return newly_bound


def _order_atoms(
    source_atoms: list[Atom], target: Instance
) -> list[Atom]:
    """Order atoms most-constrained-first for the backtracking search."""
    remaining = sorted(source_atoms)
    ordered: list[Atom] = []
    bound: set[Term] = set()
    while remaining:
        def score(a: Atom):
            candidates = target.count(a.predicate)
            anchored = sum(
                1 for t in a.args if t.is_constant or t in bound
            )
            return (-anchored, candidates, a.sort_key())

        best = min(remaining, key=score)
        remaining.remove(best)
        ordered.append(best)
        bound.update(t for t in best.args if not t.is_constant)
    return ordered


def homomorphisms(
    source: Iterable[Atom] | Instance,
    target: Iterable[Atom] | Instance,
    seed: dict[Term, Term] | None = None,
    injective: bool = False,
) -> Iterator[Substitution]:
    """Yield all homomorphisms from ``source`` to ``target``.

    Parameters
    ----------
    seed:
        A partial binding that every returned homomorphism must extend
        (e.g. answer variables pinned to given elements).
    injective:
        When True, only injective homomorphisms are produced (``⊨inj``).
    """
    target_inst = _as_instance(target)
    source_atoms = list(source)
    binding: dict[Term, Term] = dict(seed or {})
    for key in binding:
        if key.is_constant:
            raise ValueError(f"seed cannot bind constant {key}")
    used_targets: set[Term] | None = None
    if injective:
        used_targets = set(binding.values())
        if len(used_targets) != len(binding):
            return  # seed itself is not injective

    ordered = _order_atoms(source_atoms, target_inst)

    def search(index: int) -> Iterator[Substitution]:
        if index == len(ordered):
            yield Substitution(dict(binding))
            return
        atom = ordered[index]
        for candidate in sorted(target_inst.with_predicate(atom.predicate)):
            newly = _match_atom(atom, candidate, binding, used_targets)
            if newly is None:
                continue
            yield from search(index + 1)
            for t in newly:
                if used_targets is not None:
                    used_targets.discard(binding[t])
                del binding[t]

    yield from search(0)


def find_homomorphism(
    source: Iterable[Atom] | Instance,
    target: Iterable[Atom] | Instance,
    seed: dict[Term, Term] | None = None,
    injective: bool = False,
) -> Substitution | None:
    """Return one homomorphism from ``source`` to ``target`` or None."""
    for hom in homomorphisms(source, target, seed=seed, injective=injective):
        return hom
    return None


def has_homomorphism(
    source: Iterable[Atom] | Instance,
    target: Iterable[Atom] | Instance,
    seed: dict[Term, Term] | None = None,
    injective: bool = False,
) -> bool:
    """Return True when some homomorphism from ``source`` to ``target`` exists."""
    return find_homomorphism(source, target, seed=seed, injective=injective) is not None


def homomorphically_equivalent(
    left: Iterable[Atom] | Instance, right: Iterable[Atom] | Instance
) -> bool:
    """The paper's ``↔``: homomorphisms exist in both directions."""
    left_inst = _as_instance(left)
    right_inst = _as_instance(right)
    return has_homomorphism(left_inst, right_inst) and has_homomorphism(
        right_inst, left_inst
    )


def find_isomorphism(
    left: Iterable[Atom] | Instance, right: Iterable[Atom] | Instance
) -> Substitution | None:
    """Return an isomorphism (bijective homomorphism whose inverse is one).

    Following §2.1 an isomorphism is an injective and surjective
    homomorphism; we additionally require the atom sets to correspond
    one-to-one, which is the standard reading for relational structures.
    """
    left_inst = _as_instance(left)
    right_inst = _as_instance(right)
    if len(left_inst) != len(right_inst):
        return None
    if len(left_inst.active_domain()) != len(right_inst.active_domain()):
        return None
    for hom in homomorphisms(left_inst, right_inst, injective=True):
        mapped = {hom.apply_atom(a) for a in left_inst}
        if mapped == right_inst.atoms():
            return hom
    return None


def is_isomorphic(
    left: Iterable[Atom] | Instance, right: Iterable[Atom] | Instance
) -> bool:
    """Return True when the two atom sets are isomorphic."""
    return find_isomorphism(left, right) is not None


def endomorphisms(instance: Instance) -> Iterator[Substitution]:
    """Yield all homomorphisms from an instance to itself."""
    yield from homomorphisms(instance, instance)


def retract_once(instance: Instance) -> Instance | None:
    """Return a proper retract of ``instance`` or None when it is a core.

    A retract is the image of a non-surjective endomorphism; iterating
    this to a fixpoint yields the core (used for CQ minimization).
    """
    domain = instance.active_domain()
    for endo in endomorphisms(instance):
        image = {endo.apply_term(t) for t in domain}
        if len(image) < len(domain):
            return instance.apply(endo)
    return None


def core(instance: Instance) -> Instance:
    """Return the core of ``instance`` (unique up to isomorphism)."""
    current = instance
    while True:
        smaller = retract_once(current)
        if smaller is None:
            return current
        current = smaller
