"""Homomorphism search between atom sets.

A homomorphism from atom set ``A`` to atom set ``B`` is a substitution
``π`` with ``π(A) ⊆ B`` (constants fixed, variables and nulls free).  The
searcher is a backtracking matcher with three standard optimizations:

* atoms of ``A`` are processed most-constrained-first (fewest candidate
  atoms in ``B``, then most already-bound terms),
* candidates are seeded from the *positional* index of ``B`` — the most
  selective ``(predicate, position, term)`` bucket among the bound
  argument positions — instead of scanning every atom over the predicate,
* the per-node deterministic candidate ordering is cached on the target
  instance (one sort per predicate/bucket per mutation epoch), and the
  search itself runs on an explicit stack rather than nested generator
  frames.

The module also provides injective homomorphisms (for ``⊨inj``),
isomorphism checking, and homomorphic equivalence ``↔`` (used pervasively in
Section 4 to compare chases before and after surgeries).
"""

from __future__ import annotations

from typing import Iterable, Iterator, Sequence

from repro.logic.atoms import Atom
from repro.logic.instances import Instance
from repro.logic.substitutions import Substitution
from repro.logic.terms import Term


class MatcherStats:
    """Cheap counters exposing how hard the matcher is working.

    ``searches`` counts matcher invocations (one per homomorphism
    enumeration started) and ``candidates`` counts candidate atoms tested.
    The incremental-chase benchmarks read these to check that trigger
    enumeration scales with the delta, not the instance.  Registered as
    the ``matcher`` group of :func:`repro.obs.default_registry`, which is
    how run-scoped deltas (``ChaseResult.telemetry``, ``repro analyze
    --json``) read it.

    The counters are exact for the sequential engines (which is what the
    benchmarks measure).  Under the parallel scheduler's thread pool the
    unsynchronized ``+=`` updates may race and undercount, and process
    workers don't report back at all — treat the numbers as sequential
    diagnostics, not parallel-run accounting.
    """

    __slots__ = ("searches", "candidates")

    def __init__(self):
        self.reset()

    def reset(self) -> None:
        self.searches = 0
        self.candidates = 0

    def snapshot(self) -> dict[str, int]:
        return {"searches": self.searches, "candidates": self.candidates}


#: Global matcher counters; reset via ``MATCHER_STATS.reset()``.
MATCHER_STATS = MatcherStats()


def _as_instance(atoms: Iterable[Atom] | Instance) -> Instance:
    if isinstance(atoms, Instance):
        return atoms
    return Instance(atoms, add_top=False)


# checks: hot
def _match_atom(
    atom: Atom,
    candidate: Atom,
    binding: dict[Term, Term],
    used_targets: set[Term] | None,
) -> list[Term] | None:
    """Try to extend ``binding`` so that ``binding(atom) == candidate``.

    Returns the list of newly-bound source terms on success (so the caller
    can undo), or None when the match is impossible.  When ``used_targets``
    is given the extension must keep the binding injective.
    """
    newly_bound: list[Term] = []
    for source, target in zip(atom.args, candidate.args):
        if source.is_constant:
            if source != target:
                for t in newly_bound:
                    if used_targets is not None:
                        used_targets.discard(binding[t])
                    del binding[t]
                return None
            continue
        bound = binding.get(source)
        if bound is not None:
            if bound != target:
                for t in newly_bound:
                    if used_targets is not None:
                        used_targets.discard(binding[t])
                    del binding[t]
                return None
            continue
        if used_targets is not None and target in used_targets:
            for t in newly_bound:
                used_targets.discard(binding[t])
                del binding[t]
            return None
        binding[source] = target
        if used_targets is not None:
            used_targets.add(target)
        newly_bound.append(source)
    return newly_bound


def _order_atoms(
    source_atoms: Sequence[Atom],
    target: Instance,
    bound: set[Term] | None = None,
) -> list[Atom]:
    """Order atoms most-constrained-first for the backtracking search.

    One greedy pass: candidate counts and sort keys are computed once per
    atom, and each round scans the remaining atoms for the best
    ``(-anchored, candidates, key)`` score — no up-front sort, no closure
    re-created per round.  ``bound`` pre-anchors terms already pinned by a
    pivot or seed.
    """
    n = len(source_atoms)
    if n <= 1:
        return list(source_atoms)
    counts = [target.count(a.predicate) for a in source_atoms]
    keys = [a.sort_key() for a in source_atoms]
    bound = set(bound) if bound else set()
    remaining = list(range(n))
    ordered: list[Atom] = []
    while remaining:
        best = -1
        best_score = None
        for i in remaining:
            atom = source_atoms[i]
            anchored = 0
            for t in atom.args:
                if t.is_constant or t in bound:
                    anchored += 1
            score = (-anchored, counts[i], keys[i])
            if best_score is None or score < best_score:
                best_score = score
                best = i
        remaining.remove(best)
        chosen = source_atoms[best]
        ordered.append(chosen)
        bound.update(t for t in chosen.args if not t.is_constant)
    return ordered


# checks: hot
def _candidates(
    atom: Atom, target: Instance, binding: dict[Term, Term]
) -> tuple[Atom, ...]:
    """Deterministic candidate atoms for ``atom`` under ``binding``.

    Seeds from the most selective bound argument position via the target's
    positional index; falls back to all atoms over the predicate (cached
    sorted order) when nothing is bound yet.
    """
    predicate = atom.predicate
    best_position = -1
    best_term: Term | None = None
    best_count = -1
    for position, term in enumerate(atom.args):
        if not term.is_constant:
            term = binding.get(term)  # type: ignore[assignment]
            if term is None:
                continue
        count = target.position_count(predicate, position, term)
        if count == 0:
            return ()
        if best_count < 0 or count < best_count:
            best_count = count
            best_position = position
            best_term = term
    if best_term is None:
        return target.sorted_with_predicate(predicate)
    return target.matching_position(predicate, best_position, best_term)


# checks: hot
def _search(
    ordered: list[Atom],
    target: Instance,
    binding: dict[Term, Term],
    used_targets: set[Term] | None,
    first_candidates: Sequence[Atom] | None = None,
    raw: bool = False,
) -> Iterator[Substitution]:
    """Enumerate extensions of ``binding`` matching ``ordered`` into ``target``.

    Explicit-stack DFS over one frame per source atom; each frame holds its
    candidate iterator and the undo list of its current choice.  When
    ``first_candidates`` is given it replaces the index lookup for the
    first atom (the pivot of delta-driven trigger enumeration).

    With ``raw=True`` each solution is yielded as the *live* binding dict
    instead of a cleaned :class:`Substitution` copy: the consumer must use
    it before advancing the iterator (it may still contain identity pairs
    and is mutated by backtracking).  The batched derivation mode of the
    engine subsystem uses this to instantiate heads without one dict copy
    per match.
    """
    MATCHER_STATS.searches += 1
    n = len(ordered)
    if n == 0:
        if raw:
            yield binding
        else:
            yield Substitution._from_clean(
                {k: v for k, v in binding.items() if k != v}
            )
        return
    stats = MATCHER_STATS
    initial = (
        first_candidates
        if first_candidates is not None
        else _candidates(ordered[0], target, binding)
    )
    # Each frame: [candidate iterator, undo list of the current choice].
    frames: list[list] = [[iter(initial), None]]
    while frames:
        frame = frames[-1]
        undo = frame[1]
        if undo is not None:
            for t in undo:
                if used_targets is not None:
                    used_targets.discard(binding[t])
                del binding[t]
            frame[1] = None
        depth = len(frames) - 1
        atom = ordered[depth]
        descended = False
        for candidate in frame[0]:
            stats.candidates += 1
            newly = _match_atom(atom, candidate, binding, used_targets)
            if newly is None:
                continue
            if depth + 1 == n:
                if raw:
                    yield binding
                else:
                    # checks: allow[H401] -- per-solution, not per-candidate:
                    # this dict IS the yielded output (raw=True is the
                    # allocation-free path for consumers that can share).
                    yield Substitution._from_clean(
                        {k: v for k, v in binding.items() if k != v}
                    )
                for t in newly:
                    if used_targets is not None:
                        used_targets.discard(binding[t])
                    del binding[t]
                continue
            frame[1] = newly
            frames.append(
                [iter(_candidates(ordered[depth + 1], target, binding)), None]
            )
            descended = True
            break
        if not descended:
            frames.pop()


def homomorphisms(
    source: Iterable[Atom] | Instance,
    target: Iterable[Atom] | Instance,
    seed: dict[Term, Term] | None = None,
    injective: bool = False,
) -> Iterator[Substitution]:
    """Yield all homomorphisms from ``source`` to ``target``.

    Parameters
    ----------
    seed:
        A partial binding that every returned homomorphism must extend
        (e.g. answer variables pinned to given elements).
    injective:
        When True, only injective homomorphisms are produced (``⊨inj``).
    """
    target_inst = _as_instance(target)
    source_atoms = list(source)
    binding: dict[Term, Term] = dict(seed or {})
    for key in binding:
        if key.is_constant:
            raise ValueError(f"seed cannot bind constant {key}")
    used_targets: set[Term] | None = None
    if injective:
        used_targets = set(binding.values())
        if len(used_targets) != len(binding):
            return  # seed itself is not injective

    ordered = _order_atoms(source_atoms, target_inst, bound=set(binding))
    yield from _search(ordered, target_inst, binding, used_targets)


def homomorphisms_with_pivot(
    source: Iterable[Atom],
    target: Instance,
    pivot: Atom,
    pivot_candidates: Sequence[Atom],
    seed: dict[Term, Term] | None = None,
    raw: bool = False,
) -> Iterator[Substitution]:
    """Homomorphisms of ``source`` into ``target`` mapping ``pivot`` into
    ``pivot_candidates``.

    The pivot atom (which must occur in ``source``) is matched first,
    against the supplied candidates only — typically the delta of a chase
    level; the remaining atoms are matched against the full target via the
    positional index.  This is the building block of semi-naive trigger
    enumeration.  ``raw`` is passed through to :func:`_search` (live
    binding dicts instead of substitutions).
    """
    source_atoms = list(source)
    rest = list(source_atoms)
    rest.remove(pivot)
    binding: dict[Term, Term] = dict(seed or {})
    pinned = set(binding)
    pinned.update(t for t in pivot.args if not t.is_constant)
    ordered = [pivot] + _order_atoms(rest, target, bound=pinned)
    yield from _search(
        ordered, target, binding, None,
        first_candidates=pivot_candidates, raw=raw,
    )


def pivot_bindings(
    source: Iterable[Atom],
    target: Instance,
    pivot: Atom,
    pivot_candidates: Sequence[Atom],
) -> Iterator[dict[Term, Term]]:
    """Raw-binding variant of :func:`homomorphisms_with_pivot`.

    Yields the matcher's live binding dict once per homomorphism mapping
    ``pivot`` into ``pivot_candidates`` — no :class:`Substitution` is
    built, so consumers that only instantiate atoms (the engine's batched
    derivation mode) skip one dict copy per match.  The dict must be used
    before the iterator advances and may contain identity pairs.
    """
    yield from homomorphisms_with_pivot(
        source, target, pivot, pivot_candidates, raw=True
    )


def find_homomorphism(
    source: Iterable[Atom] | Instance,
    target: Iterable[Atom] | Instance,
    seed: dict[Term, Term] | None = None,
    injective: bool = False,
) -> Substitution | None:
    """Return one homomorphism from ``source`` to ``target`` or None."""
    for hom in homomorphisms(source, target, seed=seed, injective=injective):
        return hom
    return None


def has_homomorphism(
    source: Iterable[Atom] | Instance,
    target: Iterable[Atom] | Instance,
    seed: dict[Term, Term] | None = None,
    injective: bool = False,
) -> bool:
    """Return True when some homomorphism from ``source`` to ``target`` exists."""
    return find_homomorphism(source, target, seed=seed, injective=injective) is not None


def homomorphically_equivalent(
    left: Iterable[Atom] | Instance, right: Iterable[Atom] | Instance
) -> bool:
    """The paper's ``↔``: homomorphisms exist in both directions."""
    left_inst = _as_instance(left)
    right_inst = _as_instance(right)
    return has_homomorphism(left_inst, right_inst) and has_homomorphism(
        right_inst, left_inst
    )


def find_isomorphism(
    left: Iterable[Atom] | Instance, right: Iterable[Atom] | Instance
) -> Substitution | None:
    """Return an isomorphism (bijective homomorphism whose inverse is one).

    Following §2.1 an isomorphism is an injective and surjective
    homomorphism; we additionally require the atom sets to correspond
    one-to-one, which is the standard reading for relational structures.
    """
    left_inst = _as_instance(left)
    right_inst = _as_instance(right)
    if len(left_inst) != len(right_inst):
        return None
    if len(left_inst.active_domain()) != len(right_inst.active_domain()):
        return None
    for hom in homomorphisms(left_inst, right_inst, injective=True):
        mapped = {hom.apply_atom(a) for a in left_inst}
        if mapped == right_inst.atoms():
            return hom
    return None


def is_isomorphic(
    left: Iterable[Atom] | Instance, right: Iterable[Atom] | Instance
) -> bool:
    """Return True when the two atom sets are isomorphic."""
    return find_isomorphism(left, right) is not None


def endomorphisms(instance: Instance) -> Iterator[Substitution]:
    """Yield all homomorphisms from an instance to itself."""
    yield from homomorphisms(instance, instance)


def retract_once(instance: Instance) -> Instance | None:
    """Return a proper retract of ``instance`` or None when it is a core.

    A retract is the image of a non-surjective endomorphism; iterating
    this to a fixpoint yields the core (used for CQ minimization).
    """
    domain = instance.active_domain()
    for endo in endomorphisms(instance):
        image = {endo.apply_term(t) for t in domain}
        if len(image) < len(domain):
            return instance.apply(endo)
    return None


def core(instance: Instance) -> Instance:
    """Return the core of ``instance`` (unique up to isomorphism)."""
    current = instance
    while True:
        smaller = retract_once(current)
        if smaller is None:
            return current
        current = smaller
