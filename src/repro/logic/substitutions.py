"""Substitutions: partial maps from terms to terms.

Section 2.1 of the paper defines substitutions as functions from variables
to variables; we generalise slightly so that a substitution can also send
variables to constants and nulls (needed by the chase and by homomorphism
search), while constants are never in the domain.

The module also implements the paper's notions of *compatible* tuples and
*specializations* (used by Proposition 6 to build injective rewritings).
"""

from __future__ import annotations

from typing import Iterable, Iterator, Mapping, Sequence

from repro.logic.atoms import Atom
from repro.logic.terms import Term, Variable


class Substitution:
    """An immutable partial map from non-constant terms to terms.

    Terms outside the domain are left unchanged when applying the
    substitution, matching the paper's convention.
    """

    __slots__ = ("_map",)

    def __init__(self, mapping: Mapping[Term, Term] | None = None):
        clean: dict[Term, Term] = {}
        for key, value in (mapping or {}).items():
            if key.is_constant and key != value:
                raise ValueError(f"substitution cannot move constant {key}")
            if key != value:
                clean[key] = value
        self._map = clean

    def __repr__(self) -> str:
        inner = ", ".join(
            f"{k}->{v}" for k, v in sorted(self._map.items())
        )
        return f"Substitution({{{inner}}})"

    def __eq__(self, other) -> bool:
        return isinstance(other, Substitution) and self._map == other._map

    def __hash__(self) -> int:
        return hash(frozenset(self._map.items()))

    def __contains__(self, term: Term) -> bool:
        return term in self._map

    def __len__(self) -> int:
        return len(self._map)

    def __call__(self, value):
        """Apply to a term, an atom, or an iterable of atoms."""
        if isinstance(value, Term):
            return self.apply_term(value)
        if isinstance(value, Atom):
            return self.apply_atom(value)
        return self.apply_atoms(value)

    def apply_term(self, term: Term) -> Term:
        return self._map.get(term, term)

    def apply_atom(self, atom: Atom) -> Atom:
        return atom.apply(self._map)

    def apply_atoms(self, atoms: Iterable[Atom]) -> set[Atom]:
        return {self.apply_atom(a) for a in atoms}

    def apply_tuple(self, terms: Sequence[Term]) -> tuple[Term, ...]:
        return tuple(self.apply_term(t) for t in terms)

    def domain(self) -> set[Term]:
        return set(self._map)

    def image(self) -> set[Term]:
        return set(self._map.values())

    def items(self) -> Iterator[tuple[Term, Term]]:
        return iter(sorted(self._map.items()))

    def as_dict(self) -> dict[Term, Term]:
        return dict(self._map)

    def restrict(self, domain: Iterable[Term]) -> "Substitution":
        """Return the substitution restricted to ``domain``."""
        keep = (
            domain
            if isinstance(domain, (set, frozenset))
            else set(domain)
        )
        if keep.issuperset(self._map):
            return self  # immutable, so sharing is safe
        return Substitution({k: v for k, v in self._map.items() if k in keep})

    def extend(self, term: Term, value: Term) -> "Substitution":
        """Return a new substitution additionally mapping ``term -> value``."""
        if term in self._map and self._map[term] != value:
            raise ValueError(f"{term} already mapped to {self._map[term]}")
        new = dict(self._map)
        new[term] = value
        return Substitution(new)

    def compose(self, after: "Substitution") -> "Substitution":
        """Return ``after ∘ self`` (first apply self, then ``after``)."""
        combined: dict[Term, Term] = {
            k: after.apply_term(v) for k, v in self._map.items()
        }
        for k, v in after._map.items():
            combined.setdefault(k, v)
        return Substitution(combined)

    def is_injective(self) -> bool:
        """True when no two domain terms share an image."""
        values = list(self._map.values())
        return len(values) == len(set(values))

    @staticmethod
    def identity() -> "Substitution":
        return Substitution({})

    @classmethod
    def _from_clean(cls, mapping: dict[Term, Term]) -> "Substitution":
        """Build from a dict already known to be clean.

        Internal fast path for the matcher and the chase: the caller
        guarantees no constant keys and no identity pairs, and hands over
        ownership of ``mapping``.
        """
        sub = cls.__new__(cls)
        sub._map = mapping
        return sub

    @staticmethod
    def from_tuples(
        source: Sequence[Term], target: Sequence[Term]
    ) -> "Substitution":
        """Build the substitution ``[source -> target]`` of Section 2.1.

        Requires ``target`` to be compatible with ``source`` (same length,
        equal source positions get equal targets).
        """
        if not tuples_compatible(source, target):
            raise ValueError(
                f"{[str(t) for t in target]} is not compatible with "
                f"{[str(t) for t in source]}"
            )
        return Substitution(
            {s: t for s, t in zip(source, target) if not s.is_constant}
        )


def tuples_compatible(xs: Sequence[Term], ys: Sequence[Term]) -> bool:
    """Section 2.1: ``ys`` is compatible with ``xs``.

    Same length, and whenever two positions of ``xs`` coincide, the
    corresponding positions of ``ys`` coincide too.
    """
    if len(xs) != len(ys):
        return False
    seen: dict[Term, Term] = {}
    for x, y in zip(xs, ys):
        if x in seen:
            if seen[x] != y:
                return False
        else:
            seen[x] = y
    return True


def is_specialization(xs: Sequence[Term], ys: Sequence[Term]) -> bool:
    """Section 2.1: ``ys`` is a specialization of ``xs``.

    ``ys`` must be compatible with ``xs`` and each ``y_i`` is either ``x_i``
    or equals some ``x_j`` with ``y_i = y_j``.
    """
    if not tuples_compatible(xs, ys):
        return False
    xset = {x for x in xs}
    for i, y in enumerate(ys):
        if y == xs[i]:
            continue
        if y not in xset:
            return False
        # y = x_j for some j; specialization additionally requires y_j = x_j.
        witnessed = any(
            ys[j] == y and xs[j] == y for j in range(len(xs))
        )
        if not witnessed:
            return False
    return True


def specializations(xs: Sequence[Variable]) -> Iterator[tuple[Term, ...]]:
    """Enumerate all specializations of a tuple of distinct-or-not variables.

    A specialization identifies some variables of ``xs`` with others,
    i.e. it corresponds to a choice, for each position, of either keeping
    ``x_i`` or replacing it by another variable ``x_j`` that keeps itself.
    The enumeration is deterministic; the identity tuple comes first.

    This powers Proposition 6: the injective rewriting of a CQ is the
    disjunction of its quotients under all specializations.
    """
    support: list[Variable] = []
    for x in xs:
        if x not in support:
            support.append(x)

    # Enumerate all partitions of the support refined as "retraction maps":
    # functions f from support to support with f(f(x)) = f(x).  Each such
    # idempotent map yields the specialization (f(x_1), ..., f(x_n)).
    def retractions(index: int, current: dict[Variable, Variable]):
        if index == len(support):
            yield dict(current)
            return
        x = support[index]
        # Keep x as itself.
        current[x] = x
        yield from retractions(index + 1, current)
        # Map x onto an earlier variable that keeps itself.
        for j in range(index):
            y = support[j]
            if current[y] == y:
                current[x] = y
                yield from retractions(index + 1, current)
        del current[x]

    seen: set[tuple[Term, ...]] = set()
    for mapping in retractions(0, {}):
        result = tuple(mapping[x] for x in xs)
        if result not in seen:
            seen.add(result)
            yield result
