"""Instances: finite sets of atoms with indexing and the operations of §2.1.

An :class:`Instance` wraps a set of atoms and maintains a per-predicate
index and a per-term occurrence index, which the homomorphism searcher and
the chase rely on.  Instances are mutable (the chase extends them) but
expose value semantics for equality.

Following the paper, every instance is assumed to contain the nullary fact
``⊤``; the constructor adds it unless ``add_top=False``.
"""

from __future__ import annotations

from typing import Iterable, Iterator

from repro.logic.atoms import TOP_ATOM, Atom
from repro.logic.predicates import Predicate
from repro.logic.terms import FreshSupply, Term
from repro.logic.substitutions import Substitution


class Instance:
    """A set of atoms with predicate and term indexes.

    Parameters
    ----------
    atoms:
        Initial atoms.
    add_top:
        When True (the default), the nullary fact ``⊤`` is added, matching
        the paper's convention that all instances contain it.
    """

    __slots__ = ("_atoms", "_by_predicate", "_by_term")

    def __init__(self, atoms: Iterable[Atom] = (), add_top: bool = True):
        self._atoms: set[Atom] = set()
        self._by_predicate: dict[Predicate, set[Atom]] = {}
        self._by_term: dict[Term, set[Atom]] = {}
        for a in atoms:
            self.add(a)
        if add_top:
            self.add(TOP_ATOM)

    # ------------------------------------------------------------------
    # Basic container protocol
    # ------------------------------------------------------------------

    def __contains__(self, atom: Atom) -> bool:
        return atom in self._atoms

    def __len__(self) -> int:
        return len(self._atoms)

    def __iter__(self) -> Iterator[Atom]:
        return iter(self._atoms)

    def __eq__(self, other) -> bool:
        return isinstance(other, Instance) and self._atoms == other._atoms

    def __hash__(self) -> int:
        return hash(frozenset(self._atoms))

    def __repr__(self) -> str:
        inner = ", ".join(str(a) for a in sorted(self._atoms))
        return f"Instance({{{inner}}})"

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------

    def add(self, atom: Atom) -> bool:
        """Add ``atom``; return True when it was not already present."""
        if atom in self._atoms:
            return False
        self._atoms.add(atom)
        self._by_predicate.setdefault(atom.predicate, set()).add(atom)
        for term in atom.args:
            self._by_term.setdefault(term, set()).add(atom)
        return True

    def update(self, atoms: Iterable[Atom]) -> int:
        """Add several atoms; return how many were new."""
        return sum(1 for a in atoms if self.add(a))

    def discard(self, atom: Atom) -> bool:
        """Remove ``atom`` if present; return True when it was present."""
        if atom not in self._atoms:
            return False
        self._atoms.discard(atom)
        self._by_predicate[atom.predicate].discard(atom)
        if not self._by_predicate[atom.predicate]:
            del self._by_predicate[atom.predicate]
        for term in set(atom.args):
            self._by_term[term].discard(atom)
            if not self._by_term[term]:
                del self._by_term[term]
        return True

    # ------------------------------------------------------------------
    # Queries on the structure
    # ------------------------------------------------------------------

    def atoms(self) -> frozenset[Atom]:
        """Return the atoms as a frozen set."""
        return frozenset(self._atoms)

    def sorted_atoms(self) -> list[Atom]:
        """Return the atoms in the library's deterministic order."""
        return sorted(self._atoms)

    def with_predicate(self, predicate: Predicate) -> frozenset[Atom]:
        """Return the atoms over ``predicate``."""
        return frozenset(self._by_predicate.get(predicate, frozenset()))

    def with_term(self, term: Term) -> frozenset[Atom]:
        """Return the atoms in which ``term`` occurs."""
        return frozenset(self._by_term.get(term, frozenset()))

    def signature(self) -> set[Predicate]:
        """Return the set of predicates occurring in the instance."""
        return set(self._by_predicate)

    def active_domain(self) -> set[Term]:
        """Return ``adom``: all terms occurring in some atom."""
        return set(self._by_term)

    def count(self, predicate: Predicate) -> int:
        """Return the number of atoms over ``predicate``."""
        return len(self._by_predicate.get(predicate, ()))

    # ------------------------------------------------------------------
    # Paper operations
    # ------------------------------------------------------------------

    def restrict_to(self, signature: Iterable[Predicate]) -> "Instance":
        """Return ``I|_S``: the atoms over predicates in ``signature``.

        Used by Lemma 24 to compare chases of streamlined rule sets on the
        original signature.  ``⊤`` is preserved.
        """
        allowed = set(signature)
        kept = (
            a for a in self._atoms if a.predicate in allowed or a == TOP_ATOM
        )
        return Instance(kept, add_top=True)

    def disjoint_union(
        self, other: "Instance", supply: FreshSupply | None = None
    ) -> "Instance":
        """Return ``self ⊎ other`` with ``other``'s non-constants renamed fresh.

        Section 2.1: the disjoint union renames the variables of the second
        operand so that the two active domains do not overlap (constants are
        shared, as usual for databases).
        """
        supply = supply or FreshSupply(prefix="_u")
        renaming: dict[Term, Term] = {}
        for term in sorted(other.active_domain()):
            if not term.is_constant:
                renaming[term] = supply.variable()
        sigma = Substitution(renaming)
        result = Instance(self._atoms, add_top=True)
        result.update(sigma.apply_atoms(other._atoms))
        return result

    def apply(self, substitution: Substitution) -> "Instance":
        """Return the image of the instance under ``substitution``."""
        return Instance(
            substitution.apply_atoms(self._atoms), add_top=False
        )

    def copy(self) -> "Instance":
        """Return a shallow copy (atoms are immutable so this is safe)."""
        return Instance(self._atoms, add_top=False)

    def is_binary(self) -> bool:
        """True when every predicate has arity at most 2."""
        return all(p.arity <= 2 for p in self._by_predicate)


def instance_of(*atoms: Atom, add_top: bool = True) -> Instance:
    """Convenience constructor: ``instance_of(edge('a','b'), ...)``."""
    return Instance(atoms, add_top=add_top)


def constants_to_nulls(
    instance: Instance, supply: FreshSupply | None = None
) -> Instance:
    """Replace every constant by a fresh null (one per constant).

    The paper's instances have variable-only active domains (§2.1); this
    helper moves a constant-carrying instance into that regime so that
    homomorphic-equivalence comparisons (e.g. Corollary 15's) treat former
    constants as anonymous elements.
    """
    supply = supply or FreshSupply(prefix="_c")
    renaming: dict[Term, Term] = {
        term: supply.null()
        for term in sorted(instance.active_domain())
        if term.is_constant
    }
    return Instance(
        (atom.apply(renaming) for atom in instance), add_top=False
    )
