"""Instances: finite sets of atoms with indexing and the operations of §2.1.

An :class:`Instance` wraps a set of atoms and maintains three indexes the
homomorphism searcher and the chase rely on:

* a per-predicate index (all atoms over ``P``),
* a per-term occurrence index (all atoms mentioning ``t``),
* a *positional* index ``(predicate, position, term) -> atoms`` so that a
  matcher with one bound argument can seed its candidates from the most
  selective position instead of scanning every atom over the predicate.

Instances are mutable (the chase extends them) but expose value semantics
for equality.  Mutations bump a monotone *revision counter*;
:meth:`Instance.delta_since` returns the atoms added after a given
revision, which is what the semi-naive chase engines use to enumerate only
the triggers that became possible at the latest level.

Following the paper, every instance is assumed to contain the nullary fact
``⊤``; the constructor adds it unless ``add_top=False``.
"""

from __future__ import annotations

import bisect
from typing import Iterable, Iterator, KeysView

from repro.logic.atoms import TOP_ATOM, Atom
from repro.logic.predicates import Predicate
from repro.logic.terms import FreshSupply, Term
from repro.logic.substitutions import Substitution

_EMPTY: frozenset[Atom] = frozenset()


class Instance:
    """A set of atoms with predicate, term and positional indexes.

    Parameters
    ----------
    atoms:
        Initial atoms.
    add_top:
        When True (the default), the nullary fact ``⊤`` is added, matching
        the paper's convention that all instances contain it.
    """

    __slots__ = (
        "_atoms",
        "_by_predicate",
        "_by_term",
        "_by_position",
        "_revision",
        "_log_revisions",
        "_log_atoms",
        "_frozen_predicate",
        "_frozen_term",
        "_sorted_predicate",
        "_sorted_position",
        "_discarded",
    )

    def __init__(self, atoms: Iterable[Atom] = (), add_top: bool = True):
        self._atoms: set[Atom] = set()
        self._by_predicate: dict[Predicate, set[Atom]] = {}
        self._by_term: dict[Term, set[Atom]] = {}
        # (predicate, position, term) -> atoms with `term` at `position`.
        self._by_position: dict[tuple[Predicate, int, Term], set[Atom]] = {}
        # Monotone revision counter: bumped once per successful mutation;
        # the append-only parallel logs (revision at add time / atom added)
        # allow delta_since() in O(log n + |delta|).
        self._revision: int = 0
        self._log_revisions: list[int] = []
        self._log_atoms: list[Atom] = []
        # False until the first discard(): while it stays False the add
        # log *is* the live delta (chase instances never retract), and
        # delta_since skips its per-call membership filter entirely.
        self._discarded: bool = False
        # Lazily-built caches, invalidated per key on mutation.
        self._frozen_predicate: dict[Predicate, frozenset[Atom]] = {}
        self._frozen_term: dict[Term, frozenset[Atom]] = {}
        self._sorted_predicate: dict[Predicate, tuple[Atom, ...]] = {}
        self._sorted_position: dict[
            tuple[Predicate, int, Term], tuple[Atom, ...]
        ] = {}
        for a in atoms:
            self.add(a)
        if add_top:
            self.add(TOP_ATOM)

    # ------------------------------------------------------------------
    # Basic container protocol
    # ------------------------------------------------------------------

    def __contains__(self, atom: Atom) -> bool:
        return atom in self._atoms

    def __len__(self) -> int:
        return len(self._atoms)

    def __iter__(self) -> Iterator[Atom]:
        return iter(self._atoms)

    def __eq__(self, other) -> bool:
        return isinstance(other, Instance) and self._atoms == other._atoms

    def __hash__(self) -> int:
        return hash(frozenset(self._atoms))

    def __repr__(self) -> str:
        inner = ", ".join(str(a) for a in sorted(self._atoms))
        return f"Instance({{{inner}}})"

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------

    # checks: hot
    def add(self, atom: Atom) -> bool:
        """Add ``atom``; return True when it was not already present."""
        if atom in self._atoms:
            return False
        self._atoms.add(atom)
        predicate = atom.predicate
        self._by_predicate.setdefault(predicate, set()).add(atom)
        self._frozen_predicate.pop(predicate, None)
        self._sorted_predicate.pop(predicate, None)
        for position, term in enumerate(atom.args):
            self._by_term.setdefault(term, set()).add(atom)
            self._frozen_term.pop(term, None)
            key = (predicate, position, term)
            self._by_position.setdefault(key, set()).add(atom)
            self._sorted_position.pop(key, None)
        self._revision += 1
        self._log_revisions.append(self._revision)
        self._log_atoms.append(atom)
        return True

    def update(self, atoms: Iterable[Atom]) -> int:
        """Add several atoms; return how many were new."""
        return sum(1 for a in atoms if self.add(a))

    def discard(self, atom: Atom) -> bool:
        """Remove ``atom`` if present; return True when it was present."""
        if atom not in self._atoms:
            return False
        self._atoms.discard(atom)
        predicate = atom.predicate
        self._by_predicate[predicate].discard(atom)
        self._frozen_predicate.pop(predicate, None)
        self._sorted_predicate.pop(predicate, None)
        if not self._by_predicate[predicate]:
            del self._by_predicate[predicate]
        for term in set(atom.args):
            self._by_term[term].discard(atom)
            self._frozen_term.pop(term, None)
            if not self._by_term[term]:
                del self._by_term[term]
        for position, term in enumerate(atom.args):
            key = (predicate, position, term)
            bucket = self._by_position.get(key)
            if bucket is not None:
                bucket.discard(atom)
                self._sorted_position.pop(key, None)
                if not bucket:
                    del self._by_position[key]
        # Removals count as revisions too: delta_since() filters the log
        # through membership, so a removed atom simply drops out.
        self._revision += 1
        self._discarded = True
        return True

    # ------------------------------------------------------------------
    # Revisions and deltas (semi-naive evaluation support)
    # ------------------------------------------------------------------

    @property
    def revision(self) -> int:
        """Monotone counter incremented by every successful mutation."""
        return self._revision

    # checks: hot
    def delta_since(self, revision: int) -> list[Atom]:
        """Atoms added after ``revision`` that are still present.

        Insertion order; the semi-naive chase engines snapshot
        ``instance.revision`` before firing a level and feed the resulting
        delta to ``new_triggers_of`` at the next level.

        The chase calls this every round, and chase instances are
        append-only: until the first :meth:`discard` the add log has no
        dead or duplicate entries, so the delta is a plain slice of it —
        no ``seen`` set, no per-atom membership check.  The filtering
        path only runs on instances that have actually retracted.
        """
        start = (
            bisect.bisect_right(self._log_revisions, revision)
            if revision > 0
            else 0
        )
        if not self._discarded:
            return self._log_atoms[start:]
        atoms = self._atoms
        delta: list[Atom] = []
        seen: set[Atom] = set()
        # An atom discarded and re-added appears twice in the log; keep
        # the first surviving occurrence so the delta stays a set.
        for a in self._log_atoms[start:]:
            if a in atoms and a not in seen:
                seen.add(a)
                delta.append(a)
        return delta

    # ------------------------------------------------------------------
    # Queries on the structure
    # ------------------------------------------------------------------

    def atoms(self) -> frozenset[Atom]:
        """Return the atoms as a frozen set."""
        return frozenset(self._atoms)

    def sorted_atoms(self) -> list[Atom]:
        """Return the atoms in the library's deterministic order."""
        return sorted(self._atoms)

    def with_predicate(self, predicate: Predicate) -> frozenset[Atom]:
        """Return the atoms over ``predicate`` (cached immutable view)."""
        cached = self._frozen_predicate.get(predicate)
        if cached is None:
            bucket = self._by_predicate.get(predicate)
            cached = frozenset(bucket) if bucket else _EMPTY
            self._frozen_predicate[predicate] = cached
        return cached

    def with_term(self, term: Term) -> frozenset[Atom]:
        """Return the atoms in which ``term`` occurs (cached immutable view)."""
        cached = self._frozen_term.get(term)
        if cached is None:
            bucket = self._by_term.get(term)
            cached = frozenset(bucket) if bucket else _EMPTY
            self._frozen_term[term] = cached
        return cached

    def sorted_with_predicate(self, predicate: Predicate) -> tuple[Atom, ...]:
        """The atoms over ``predicate`` in deterministic order, cached.

        The homomorphism matcher draws unconstrained candidates from here;
        caching hoists the per-search-node ``sorted(...)`` to one sort per
        predicate per mutation epoch.
        """
        cached = self._sorted_predicate.get(predicate)
        if cached is None:
            bucket = self._by_predicate.get(predicate)
            cached = tuple(sorted(bucket)) if bucket else ()
            self._sorted_predicate[predicate] = cached
        return cached

    def matching_position(
        self, predicate: Predicate, position: int, term: Term
    ) -> tuple[Atom, ...]:
        """Atoms over ``predicate`` with ``term`` at ``position``, sorted.

        The positional index lookup behind most-selective candidate
        seeding; an empty tuple when no atom matches.
        """
        key = (predicate, position, term)
        cached = self._sorted_position.get(key)
        if cached is None:
            bucket = self._by_position.get(key)
            if bucket is None:
                return ()
            cached = tuple(sorted(bucket))
            self._sorted_position[key] = cached
        return cached

    def position_count(
        self, predicate: Predicate, position: int, term: Term
    ) -> int:
        """Number of atoms over ``predicate`` with ``term`` at ``position``."""
        bucket = self._by_position.get((predicate, position, term))
        return len(bucket) if bucket else 0

    def signature(self) -> KeysView[Predicate]:
        """The predicates occurring in the instance (allocation-free view)."""
        return self._by_predicate.keys()

    def active_domain(self) -> set[Term]:
        """Return ``adom``: all terms occurring in some atom."""
        return set(self._by_term)

    def count(self, predicate: Predicate) -> int:
        """Return the number of atoms over ``predicate``."""
        bucket = self._by_predicate.get(predicate)
        return len(bucket) if bucket else 0

    # ------------------------------------------------------------------
    # Paper operations
    # ------------------------------------------------------------------

    def restrict_to(self, signature: Iterable[Predicate]) -> "Instance":
        """Return ``I|_S``: the atoms over predicates in ``signature``.

        Used by Lemma 24 to compare chases of streamlined rule sets on the
        original signature.  ``⊤`` is preserved.
        """
        allowed = set(signature)
        kept = (
            a for a in self._atoms if a.predicate in allowed or a == TOP_ATOM
        )
        return Instance(kept, add_top=True)

    def disjoint_union(
        self, other: "Instance", supply: FreshSupply | None = None
    ) -> "Instance":
        """Return ``self ⊎ other`` with ``other``'s non-constants renamed fresh.

        Section 2.1: the disjoint union renames the variables of the second
        operand so that the two active domains do not overlap (constants are
        shared, as usual for databases).
        """
        supply = supply or FreshSupply(prefix="_u")
        renaming: dict[Term, Term] = {}
        for term in sorted(other.active_domain()):
            if not term.is_constant:
                renaming[term] = supply.variable()
        sigma = Substitution(renaming)
        result = Instance(self._atoms, add_top=True)
        result.update(sigma.apply_atoms(other._atoms))
        return result

    def apply(self, substitution: Substitution) -> "Instance":
        """Return the image of the instance under ``substitution``."""
        return Instance(
            substitution.apply_atoms(self._atoms), add_top=False
        )

    def copy(self) -> "Instance":
        """Return a shallow copy (atoms are immutable so this is safe)."""
        return Instance(self._atoms, add_top=False)

    def is_binary(self) -> bool:
        """True when every predicate has arity at most 2."""
        return all(p.arity <= 2 for p in self._by_predicate)


def instance_of(*atoms: Atom, add_top: bool = True) -> Instance:
    """Convenience constructor: ``instance_of(edge('a','b'), ...)``."""
    return Instance(atoms, add_top=add_top)


def constants_to_nulls(
    instance: Instance, supply: FreshSupply | None = None
) -> Instance:
    """Replace every constant by a fresh null (one per constant).

    The paper's instances have variable-only active domains (§2.1); this
    helper moves a constant-carrying instance into that regime so that
    homomorphic-equivalence comparisons (e.g. Corollary 15's) treat former
    constants as anonymous elements.
    """
    supply = supply or FreshSupply(prefix="_c")
    renaming: dict[Term, Term] = {
        term: supply.null()
        for term in sorted(instance.active_domain())
        if term.is_constant
    }
    return Instance(
        (atom.apply(renaming) for atom in instance), add_top=False
    )
