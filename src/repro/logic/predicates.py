"""Predicates and the distinguished nullary predicate ``⊤``.

The paper assumes every instance contains a nullary fact ``⊤`` (Section
2.1); :data:`TOP` is that predicate and :func:`top_atom`-style helpers live
in :mod:`repro.logic.atoms`.
"""

from __future__ import annotations

from typing import Iterable


class Predicate:
    """A predicate symbol with a fixed arity.

    Predicates are immutable, hashable and ordered by ``(name, arity)`` so
    all signature iteration in the library is deterministic.
    """

    __slots__ = ("name", "arity", "_hash")

    def __init__(self, name: str, arity: int):
        if arity < 0:
            raise ValueError(f"arity must be non-negative, got {arity}")
        self.name = name
        self.arity = arity
        self._hash = hash((name, arity))

    def __repr__(self) -> str:
        return f"Predicate({self.name!r}, {self.arity})"

    def __str__(self) -> str:
        return f"{self.name}/{self.arity}"

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, Predicate)
            and self.name == other.name
            and self.arity == other.arity
        )

    def __hash__(self) -> int:
        return self._hash

    def __reduce__(self):
        # Rebuild through __init__ so the cached hash is recomputed with
        # the unpickling interpreter's seed (see Term.__reduce__).
        return (Predicate, (self.name, self.arity))

    def __lt__(self, other: "Predicate") -> bool:
        if not isinstance(other, Predicate):
            return NotImplemented
        return (self.name, self.arity) < (other.name, other.arity)

    @property
    def is_nullary(self) -> bool:
        return self.arity == 0

    @property
    def is_binary(self) -> bool:
        return self.arity == 2


#: The distinguished nullary predicate ``⊤`` present in every instance.
TOP = Predicate("top", 0)

#: The binary predicate ``E`` fixed throughout the paper for tournaments
#: and the loop query.
EDGE = Predicate("E", 2)


def max_arity(predicates: Iterable[Predicate]) -> int:
    """Return the maximum arity among ``predicates`` (0 if empty)."""
    return max((p.arity for p in predicates), default=0)


def is_binary_signature(predicates: Iterable[Predicate]) -> bool:
    """Return True when every predicate has arity at most two."""
    return all(p.arity <= 2 for p in predicates)
