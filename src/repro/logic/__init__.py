"""First-order logic substrate: terms, atoms, instances, homomorphisms."""

from repro.logic.atoms import TOP_ATOM, Atom, atom, edge
from repro.logic.homomorphisms import (
    MATCHER_STATS,
    core,
    find_homomorphism,
    find_isomorphism,
    has_homomorphism,
    homomorphically_equivalent,
    homomorphisms,
    is_isomorphic,
)
from repro.logic.instances import Instance, instance_of
from repro.logic.predicates import EDGE, TOP, Predicate
from repro.logic.signatures import Signature
from repro.logic.substitutions import (
    Substitution,
    is_specialization,
    specializations,
    tuples_compatible,
)
from repro.logic.terms import (
    Constant,
    FreshSupply,
    Null,
    Term,
    Variable,
    as_term,
)

__all__ = [
    "Atom",
    "Constant",
    "EDGE",
    "MATCHER_STATS",
    "FreshSupply",
    "Instance",
    "Null",
    "Predicate",
    "Signature",
    "Substitution",
    "TOP",
    "TOP_ATOM",
    "Term",
    "Variable",
    "as_term",
    "atom",
    "core",
    "edge",
    "find_homomorphism",
    "find_isomorphism",
    "has_homomorphism",
    "homomorphically_equivalent",
    "homomorphisms",
    "instance_of",
    "is_isomorphic",
    "is_specialization",
    "specializations",
    "tuples_compatible",
]
