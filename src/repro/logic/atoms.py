"""Atoms: applications of a predicate to a tuple of terms.

An atom ``P(t1, ..., tn)`` pairs an n-ary :class:`~repro.logic.predicates.Predicate`
with an n-tuple of :class:`~repro.logic.terms.Term`.  Atoms are immutable and
hashable so that instances can be plain sets of atoms, exactly as in the
paper (Section 2.1).
"""

from __future__ import annotations

from typing import Iterable, Iterator, Sequence

from repro.errors import ArityError
from repro.logic.predicates import EDGE, TOP, Predicate
from repro.logic.terms import Constant, Null, Term, TermLike, Variable, as_term


class Atom:
    """An atom over a predicate: ``P(t1, ..., tn)``.

    Atoms are immutable; building one checks the arity of the predicate
    against the number of arguments.
    """

    __slots__ = ("predicate", "args", "_hash")

    def __init__(self, predicate: Predicate, args: Sequence[TermLike] = ()):
        terms = tuple(as_term(a) for a in args)
        if len(terms) != predicate.arity:
            raise ArityError(
                f"predicate {predicate} expects {predicate.arity} arguments, "
                f"got {len(terms)}"
            )
        self.predicate = predicate
        self.args = terms
        self._hash = hash((predicate, terms))

    def __repr__(self) -> str:
        return f"Atom({self.predicate.name!r}, {self.args!r})"

    def __str__(self) -> str:
        if not self.args:
            return self.predicate.name
        inner = ", ".join(str(t) for t in self.args)
        return f"{self.predicate.name}({inner})"

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, Atom)
            and self._hash == other._hash
            and self.predicate == other.predicate
            and self.args == other.args
        )

    def __hash__(self) -> int:
        return self._hash

    def __reduce__(self):
        # Rebuild through __init__ so the cached hash is recomputed with
        # the unpickling interpreter's seed (see Term.__reduce__).
        return (Atom, (self.predicate, self.args))

    def __lt__(self, other: "Atom") -> bool:
        if not isinstance(other, Atom):
            return NotImplemented
        return self.sort_key() < other.sort_key()

    def sort_key(self):
        """Deterministic sort key used throughout the library."""
        return (
            self.predicate.name,
            self.predicate.arity,
            tuple((t._rank, t.name) for t in self.args),
        )

    def terms(self) -> Iterator[Term]:
        """Yield the argument terms in position order."""
        return iter(self.args)

    def variables(self) -> set[Variable]:
        """Return the set of variables occurring in the atom."""
        return {t for t in self.args if isinstance(t, Variable)}

    def constants(self) -> set[Constant]:
        """Return the set of constants occurring in the atom."""
        return {t for t in self.args if isinstance(t, Constant)}

    def nulls(self) -> set[Null]:
        """Return the set of labelled nulls occurring in the atom."""
        return {t for t in self.args if isinstance(t, Null)}

    def active_domain(self) -> set[Term]:
        """Return the set of all terms occurring in the atom."""
        return set(self.args)

    def contains(self, term: Term) -> bool:
        """Return True when ``term`` occurs among the arguments."""
        return term in self.args

    def apply(self, mapping: dict) -> "Atom":
        """Return the atom with every argument replaced via ``mapping``.

        Terms absent from ``mapping`` are left unchanged, matching the
        paper's convention for substitutions.
        """
        args = self.args
        new_args = tuple(mapping.get(t, t) for t in args)
        if new_args == args:
            return self  # immutable, so sharing is safe
        return build_atom(self.predicate, new_args)

    @property
    def is_binary(self) -> bool:
        return self.predicate.arity == 2

    @property
    def is_loop(self) -> bool:
        """True for binary atoms of the shape ``P(t, t)``."""
        return self.predicate.arity == 2 and self.args[0] == self.args[1]


def build_atom(predicate: Predicate, args: tuple[Term, ...]) -> Atom:
    """Fast-path constructor for pre-validated argument tuples.

    Skips the coercion/arity checks of ``Atom.__init__`` — the caller
    guarantees ``args`` are already :class:`Term`s matching the
    predicate's arity.  The hash is computed here, locally, which is what
    makes this the rebuild hook for atoms that cross process boundaries:
    the engine's wire codec (:mod:`repro.engine.wire`) reconstructs every
    decoded atom through this function, so cached hashes always reflect
    the receiving interpreter's ``PYTHONHASHSEED`` (the interned-transport
    counterpart of :meth:`Atom.__reduce__`).  Also the hot path behind
    :meth:`Atom.apply` — once per produced atom on every chase step.
    """
    atom = Atom.__new__(Atom)
    atom.predicate = predicate
    atom.args = args
    atom._hash = hash((predicate, args))
    return atom


#: The nullary fact ``⊤`` assumed to be present in every instance.
TOP_ATOM = Atom(TOP, ())


def atom(name: str, *args: TermLike) -> Atom:
    """Convenience constructor: ``atom("E", "x", "y")``.

    The predicate arity is inferred from the number of arguments; argument
    strings follow the :func:`repro.logic.terms.as_term` convention.
    """
    return Atom(Predicate(name, len(args)), args)


def edge(source: TermLike, target: TermLike) -> Atom:
    """Build an ``E``-atom over the paper's fixed binary predicate."""
    return Atom(EDGE, (source, target))


def atoms_over(atoms_in: Iterable[Atom], signature: Iterable[Predicate]) -> set[Atom]:
    """Return the subset of ``atoms_in`` whose predicate is in ``signature``."""
    allowed = set(signature)
    return {a for a in atoms_in if a.predicate in allowed}


def predicates_of(atoms_in: Iterable[Atom]) -> set[Predicate]:
    """Return the set of predicates used by ``atoms_in``."""
    return {a.predicate for a in atoms_in}
