"""Signatures: finite sets of predicates with arity-based views.

The surgeries of Section 4 move between signatures (e.g. reification maps a
general signature to a binary one, streamlining adds fresh ``A``/``B``
predicates); this module provides the small amount of bookkeeping they
need.
"""

from __future__ import annotations

from typing import Iterable, Iterator

from repro.errors import SignatureError
from repro.logic.predicates import Predicate


class Signature:
    """An immutable, ordered set of predicates."""

    __slots__ = ("_predicates",)

    def __init__(self, predicates: Iterable[Predicate] = ()):
        self._predicates = frozenset(predicates)

    def __contains__(self, predicate: Predicate) -> bool:
        return predicate in self._predicates

    def __iter__(self) -> Iterator[Predicate]:
        return iter(sorted(self._predicates))

    def __len__(self) -> int:
        return len(self._predicates)

    def __eq__(self, other) -> bool:
        return isinstance(other, Signature) and self._predicates == other._predicates

    def __hash__(self) -> int:
        return hash(self._predicates)

    def __repr__(self) -> str:
        inner = ", ".join(str(p) for p in self)
        return f"Signature({{{inner}}})"

    def __or__(self, other: "Signature") -> "Signature":
        return Signature(self._predicates | other._predicates)

    def __and__(self, other: "Signature") -> "Signature":
        return Signature(self._predicates & other._predicates)

    def __sub__(self, other: "Signature") -> "Signature":
        return Signature(self._predicates - other._predicates)

    def is_binary(self) -> bool:
        """True when all predicates have arity at most 2 (§4.2)."""
        return all(p.arity <= 2 for p in self._predicates)

    def at_most_binary(self) -> "Signature":
        """Return the sub-signature ``S≤2`` of predicates with arity ≤ 2."""
        return Signature(p for p in self._predicates if p.arity <= 2)

    def higher_arity(self) -> "Signature":
        """Return the sub-signature ``S≥3`` of predicates with arity ≥ 3."""
        return Signature(p for p in self._predicates if p.arity >= 3)

    def max_arity(self) -> int:
        return max((p.arity for p in self._predicates), default=0)

    def require_binary(self) -> None:
        """Raise :class:`SignatureError` unless the signature is binary."""
        offenders = sorted(p for p in self._predicates if p.arity > 2)
        if offenders:
            raise SignatureError(
                "binary signature required; offending predicates: "
                + ", ".join(str(p) for p in offenders)
            )

    def names(self) -> set[str]:
        return {p.name for p in self._predicates}

    def fresh_name(self, base: str) -> str:
        """Return a predicate name not used in the signature."""
        if base not in self.names():
            return base
        index = 0
        while f"{base}_{index}" in self.names():
            index += 1
        return f"{base}_{index}"
