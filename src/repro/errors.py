"""Exception hierarchy for the ``repro`` library.

Every error raised by the library derives from :class:`ReproError`, so a
caller can catch library failures without also catching programming errors
such as :class:`TypeError`.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class of all errors raised by the library."""


class ArityError(ReproError):
    """An atom was built with the wrong number of arguments."""


class ParseError(ReproError):
    """A rule, instance or query string could not be parsed."""

    def __init__(self, message: str, text: str = "", position: int = -1):
        self.text = text
        self.position = position
        if position >= 0:
            message = f"{message} (at position {position} in {text!r})"
        super().__init__(message)


class SignatureError(ReproError):
    """An operation received atoms or rules over an unexpected signature."""


class ChaseError(ReproError):
    """A chase engine was misconfigured or could not run.

    Raised by the engine registry (:mod:`repro.engine.config`) for unknown
    engine names or invalid :class:`~repro.engine.config.EngineConfig`
    parameters; the budget overrun below specializes it.
    """


class ChaseBudgetExceeded(ChaseError):
    """The chase exceeded its step or atom budget before terminating."""

    def __init__(self, message: str, partial_result=None):
        super().__init__(message)
        self.partial_result = partial_result


class RewritingBudgetExceeded(ReproError):
    """The UCQ-rewriting engine exceeded its depth or size budget."""

    def __init__(self, message: str, partial_rewriting=None, depth: int = -1):
        super().__init__(message)
        self.partial_rewriting = partial_rewriting
        self.depth = depth


class NotBinarySignatureError(SignatureError):
    """An operation requiring a binary signature received a wider one."""


class NotARuleClassError(ReproError):
    """A rule set does not belong to the rule class required by an operation."""


class ProvenanceError(ReproError):
    """Chase provenance was requested for a term the chase did not create."""
