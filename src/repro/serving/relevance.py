"""Query-relevance pruning over the predicate dependency graph.

A goal-directed chase does not need every rule: an atom can only occur
in a match of the query if its predicate is one the query mentions, and
an atom over such a predicate can only be derived by a rule whose head
mentions it — whose body predicates then matter transitively.  This is
the magic-sets idea reduced to its predicate-level skeleton: compute the
backward reachability closure of the query's predicates over the rule
dependency graph (head → body) and keep exactly the rules whose head
intersects the closure.

Soundness *and* completeness per level: every rule able to derive an
atom over a closure predicate is kept (the closure is defined by the
kept rules' heads), and the kept rules' bodies range over closure
predicates only, so the pruned chase derives exactly the full chase's
closure-predicate atoms at exactly the same level — the level-synchronous
oblivious chase makes verdicts at equal depth budgets identical.  A
pruned-chase fixpoint is therefore conclusive for the query even when
the full chase would keep growing elsewhere.
"""

from __future__ import annotations

from typing import Iterable

from repro.queries.cq import ConjunctiveQuery
from repro.rules.ruleset import RuleSet


def goal_predicates(goals: Iterable[ConjunctiveQuery]) -> set:
    """The predicates mentioned by any goal CQ."""
    return {atom.predicate for goal in goals for atom in goal.atoms}


def relevant_closure(rules: RuleSet, predicates: set) -> set:
    """Backward-reachability closure of ``predicates`` over ``rules``.

    Fixpoint of: a rule whose head mentions a closure predicate adds its
    body predicates to the closure.
    """
    closure = set(predicates)
    changed = True
    while changed:
        changed = False
        for rule in rules:
            if any(atom.predicate in closure for atom in rule.head):
                for atom in rule.body:
                    if atom.predicate not in closure:
                        closure.add(atom.predicate)
                        changed = True
    return closure


def relevant_rules(rules: RuleSet, predicates: set) -> RuleSet:
    """The query-relevant fragment of ``rules``, original order preserved.

    Keeps exactly the rules whose head intersects the backward
    reachability closure of ``predicates``; everything else can never
    contribute an atom the query (or a body feeding it) could match.
    """
    closure = relevant_closure(rules, predicates)
    kept = [
        rule
        for rule in rules
        if any(atom.predicate in closure for atom in rule.head)
    ]
    name = f"{rules.name}[goal]" if rules.name else "goal-fragment"
    return RuleSet(kept, name=name)
