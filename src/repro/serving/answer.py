"""The query-serving front door: ``answer()`` and :class:`AnswerResult`.

One entry point turns "run the chase, then check" into "serve an
entailment request": pick a strategy (goal-directed chase, UCQ
rewriting, or the hybrid of both), run it on the unified engine stack,
and report the answer *with its epistemic status* — an ``exact``
verdict is conclusive, a ``sound`` one means a budget stopped the run
before completeness was reached (a True is still certain; a False or a
tuple set may be missing answers).

Strategies
----------
``"chase"``
    Prune the rules to the query-relevant fragment
    (:mod:`repro.serving.relevance`), chase with
    :class:`~repro.serving.goal.GoalDirectedPolicy` and stop the moment
    a per-round incremental delta probe witnesses the query.
``"rewrite"``
    Run the UCQ piece-rewriter (:mod:`repro.rewriting.rewriter`, itself
    on the runner's fixpoint mode) and evaluate the rewriting on the
    *base* instance — no chase at all; exact when the rewriting reached
    its fixpoint (the rule set is bdd for the query, Definition 2).
``"hybrid"``
    Rewrite within budgets first; a complete rewriting answers from the
    base instance, an incomplete one seeds the goal-directed chase with
    its disjuncts as *extra* goals (any sound rewriting disjunct
    matching a chase prefix witnesses the original query earlier).
``"auto"``
    ``hybrid`` that reports which leg decided: ``rewrite`` when the
    rewriting completed, else ``hybrid`` (or ``chase`` when answers are
    being enumerated — enumeration cannot stop early on a witness).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.chase.bounds import (
    DEFAULT_MAX_ATOMS,
    DEFAULT_MAX_CQ_SIZE,
    DEFAULT_MAX_DISJUNCTS,
    DEFAULT_MAX_LEVELS,
    DEFAULT_MAX_REWRITE_DEPTH,
)
from repro.chase.oblivious import ObliviousPolicy
from repro.chase.result import ChaseResult
from repro.engine.config import EngineConfig, resolve_engine
from repro.engine.runner import ChaseRunner
from repro.logic.instances import Instance
from repro.logic.terms import Term
from repro.obs import TRACE_SCHEMA_VERSION, default_registry
from repro.obs.trace import RunTrace
from repro.queries.cq import ConjunctiveQuery
from repro.queries.entailment import (
    _seed_for,
    answer_homomorphisms,
    entails_ucq,
)
from repro.queries.ucq import UCQ
from repro.rewriting.rewriter import RewritingResult, rewrite, rewrite_ucq
from repro.rules.ruleset import RuleSet
from repro.serving.goal import GoalDirectedPolicy, GoalProbe
from repro.serving.relevance import goal_predicates, relevant_rules
from repro.serving.stats import SERVING_STATS

STRATEGIES = ("auto", "chase", "rewrite", "hybrid")


@dataclass
class AnswerResult:
    """What one ``answer()`` request produced, and how much to trust it.

    Attributes
    ----------
    entailed:
        ``⟨R, I⟩ ⊨ Q(t̄)`` as far as the run could tell.  In
        answer-enumeration mode this is the Boolean reading of the query
        with its answer variables left free (matching the deprecated
        ``certain_answer`` behavior).
    tuples:
        The certain answer tuples found (constants only), or ``None`` in
        decision mode (Boolean query or explicit bindings).
    verdict:
        ``"exact"`` — conclusive: a witness was found (always certain),
        or the strategy ran to completeness (chase fixpoint / complete
        rewriting) without one.  ``"sound"`` — a budget stopped the run
        first: what was found is certain, but a negative (or the tuple
        set) may be incomplete.
    evidence:
        The fact behind the verdict: ``{"kind": ..., ...}`` where kind is
        one of ``instance_witness``, ``chase_witness``,
        ``chase_fixpoint``, ``chase_budget``, ``rewriting_witness``,
        ``rewriting_fixpoint``, ``rewriting_budget``,
        ``inconsistent_binding`` — with the decisive chase level or
        rewriting depth alongside.
    strategy:
        The strategy that actually decided (``auto`` resolves to one).
    provenance:
        How the request was served: requested/resolved strategy, mode,
        engine name and workers, rule counts before/after relevance
        pruning, goal count.
    chase / rewriting:
        The underlying :class:`~repro.chase.result.ChaseResult` /
        :class:`~repro.rewriting.rewriter.RewritingResult`, when that leg
        ran — telemetry, traces and provenance records intact.
    telemetry:
        The metrics-registry delta of the whole request (schema version
        plus ``{group: counters}``), spanning every leg that ran —
        including the ``serving`` counter group.
    """

    entailed: bool
    tuples: set[tuple[Term, ...]] | None
    verdict: str
    evidence: dict
    strategy: str
    provenance: dict
    chase: ChaseResult | None = None
    rewriting: RewritingResult | None = None
    telemetry: dict | None = field(default=None, compare=False)

    def __bool__(self) -> bool:
        return self.entailed


def _disjuncts_of(query: ConjunctiveQuery | UCQ) -> list[ConjunctiveQuery]:
    return list(query) if isinstance(query, UCQ) else [query]


def _constant_answers(
    instance: Instance,
    disjuncts: Sequence[ConjunctiveQuery],
    bindings: Sequence[Term],
) -> tuple[set[tuple[Term, ...]], bool]:
    """Constants-only answer tuples plus the free-variable Boolean reading."""
    tuples: set[tuple[Term, ...]] = set()
    any_match = False
    for disjunct in disjuncts:
        for hom in answer_homomorphisms(instance, disjunct, bindings):
            any_match = True
            image = tuple(hom.apply_term(v) for v in disjunct.answers)
            if all(t.is_constant for t in image):
                tuples.add(image)
    return tuples, any_match


def _goals_for(
    disjuncts: Sequence[ConjunctiveQuery], bindings: Sequence[Term]
) -> list[tuple[list, dict]]:
    """Seeded probe goals, dropping inconsistent bindings and duplicates."""
    goals: list[tuple[list, dict]] = []
    seen: set = set()
    for disjunct in disjuncts:
        seed = _seed_for(disjunct, bindings)
        if seed is None:
            continue
        key = (disjunct.atoms, frozenset(seed.items()))
        if key in seen:
            continue
        seen.add(key)
        goals.append((sorted(disjunct.atoms), seed))
    return goals


def answer(
    instance: Instance,
    rules: RuleSet,
    query: ConjunctiveQuery | UCQ,
    bindings: Sequence[Term] = (),
    *,
    strategy: str = "auto",
    engine: str | EngineConfig = "delta",
    workers: int | None = None,
    prune: bool = True,
    max_levels: int = DEFAULT_MAX_LEVELS,
    max_atoms: int = DEFAULT_MAX_ATOMS,
    max_rewrite_depth: int = DEFAULT_MAX_REWRITE_DEPTH,
    max_disjuncts: int = DEFAULT_MAX_DISJUNCTS,
    max_cq_size: int = DEFAULT_MAX_CQ_SIZE,
    trace: RunTrace | None = None,
) -> AnswerResult:
    """Serve one certain-answer request: ``⟨R, I⟩ ⊨ Q(t̄)`` or its tuples.

    Parameters
    ----------
    bindings:
        Ground the query's answer variables (decision mode).  Empty with
        a non-Boolean query means *enumeration* mode: the certain answer
        tuples are computed (``tuples``), and ``entailed`` is the
        Boolean reading with the answer variables free.
    strategy:
        ``"auto"``, ``"chase"``, ``"rewrite"`` or ``"hybrid"`` — see the
        module docstring's decision table.
    engine, workers:
        The chase execution engine (name or
        :class:`~repro.engine.config.EngineConfig`) and an optional
        worker-pool override for the parallel backends.
    prune:
        Restrict the chase to the query-relevant rule fragment
        (:func:`repro.serving.relevance.relevant_rules`).  Per-level
        complete for the query, so verdicts are unaffected — only the
        atoms materialized.
    max_levels, max_atoms:
        Chase budgets (:mod:`repro.chase.bounds` defaults).
    max_rewrite_depth, max_disjuncts, max_cq_size:
        Rewriting budgets, same home.
    trace:
        Optional :class:`~repro.obs.trace.RunTrace`, attached to the
        strategy's main run (the chase for ``chase``/``hybrid``/
        ``auto``, the rewriting for ``rewrite``).
    """
    if strategy not in STRATEGIES:
        raise ValueError(
            f"unknown strategy {strategy!r}; valid: {', '.join(STRATEGIES)}"
        )
    config = resolve_engine(engine)
    if workers is not None:
        config = config.with_workers(workers)
    with default_registry().collect() as scope:
        SERVING_STATS.requests += 1
        result = _serve(
            instance,
            rules,
            query,
            bindings,
            strategy=strategy,
            config=config,
            prune=prune,
            max_levels=max_levels,
            max_atoms=max_atoms,
            max_rewrite_depth=max_rewrite_depth,
            max_disjuncts=max_disjuncts,
            max_cq_size=max_cq_size,
            trace=trace,
        )
    result.telemetry = {
        "schema_version": TRACE_SCHEMA_VERSION,
        "registry": scope.delta,
    }
    return result


def _serve(
    instance: Instance,
    rules: RuleSet,
    query: ConjunctiveQuery | UCQ,
    bindings: Sequence[Term],
    *,
    strategy: str,
    config: EngineConfig,
    prune: bool,
    max_levels: int,
    max_atoms: int,
    max_rewrite_depth: int,
    max_disjuncts: int,
    max_cq_size: int,
    trace: RunTrace | None,
) -> AnswerResult:
    disjuncts = _disjuncts_of(query)
    enumerating = not bindings and bool(query.answers)
    mode = "enumerate" if enumerating else "decision"

    def provenance(resolved: str, used: RuleSet, goals: int = 0) -> dict:
        return {
            "requested": strategy,
            "resolved": resolved,
            "mode": mode,
            "engine": config.name,
            "workers": config.workers,
            "rules_total": len(rules),
            "rules_used": len(used),
            "goals": goals,
        }

    # -- rewriting leg -------------------------------------------------
    rewriting: RewritingResult | None = None
    boolean_rewriting: RewritingResult | None = None
    if strategy in ("rewrite", "hybrid", "auto"):
        SERVING_STATS.rewrite_runs += 1
        rewrite_trace = trace if strategy == "rewrite" else None

        def _run_rewrite(q):
            kwargs = dict(
                max_depth=max_rewrite_depth,
                max_disjuncts=max_disjuncts,
                max_cq_size=max_cq_size,
                trace=rewrite_trace,
            )
            if isinstance(q, UCQ):
                return rewrite_ucq(q, rules, **kwargs)
            return rewrite(q, rules, **kwargs)

        rewriting = _run_rewrite(query)
        if enumerating:
            # The Boolean reading (answer variables freed) rewrites
            # differently — an answer variable may not absorb a rule's
            # existential, an existential variable may — and it is what
            # ``entailed`` reports in enumeration mode, so it gets its
            # own rewriting on the rewrite path.
            boolean_rewriting = _run_rewrite(
                UCQ([d.boolean() for d in disjuncts], ())
            )

    rewrite_leg_complete = rewriting is not None and rewriting.complete and (
        boolean_rewriting is None or boolean_rewriting.complete
    )
    if strategy == "rewrite" or (
        strategy in ("hybrid", "auto") and rewrite_leg_complete
    ):
        resolved = "rewrite" if strategy in ("rewrite", "auto") else "hybrid"
        return _answer_by_rewriting(
            instance,
            rewriting,
            boolean_rewriting,
            bindings,
            enumerating,
            provenance(resolved, rules),
        )

    # -- chase leg -----------------------------------------------------
    resolved = strategy
    if strategy == "auto":
        resolved = "chase" if enumerating else "hybrid"
    goal_disjuncts = list(disjuncts)
    if rewriting is not None and not enumerating:
        goal_disjuncts.extend(rewriting.ucq)
    used = rules
    if prune:
        used = relevant_rules(rules, goal_predicates(goal_disjuncts))
        SERVING_STATS.rules_pruned += len(rules) - len(used)

    if enumerating:
        return _enumerate_by_chase(
            instance,
            used,
            disjuncts,
            bindings,
            config,
            max_levels,
            max_atoms,
            trace,
            provenance(resolved, used),
            rewriting,
        )
    return _decide_by_chase(
        instance,
        used,
        goal_disjuncts,
        bindings,
        config,
        max_levels,
        max_atoms,
        trace,
        provenance(resolved, used),
        rewriting,
    )


def _answer_by_rewriting(
    instance: Instance,
    rewriting: RewritingResult,
    boolean_rewriting: RewritingResult | None,
    bindings: Sequence[Term],
    enumerating: bool,
    provenance: dict,
) -> AnswerResult:
    """Evaluate the (possibly partial) rewriting on the base instance."""
    tuples: set[tuple[Term, ...]] | None = None
    complete = rewriting.complete
    if enumerating:
        tuples, _ = _constant_answers(instance, list(rewriting.ucq), bindings)
        entailed = entails_ucq(instance, boolean_rewriting.ucq, ())
        complete = complete and boolean_rewriting.complete
    else:
        entailed = entails_ucq(instance, rewriting.ucq, bindings)
    if entailed:
        verdict, kind = "exact", "rewriting_witness"
    elif complete:
        verdict, kind = "exact", "rewriting_fixpoint"
    else:
        verdict, kind = "sound", "rewriting_budget"
    return AnswerResult(
        entailed=entailed,
        tuples=tuples,
        verdict=verdict,
        evidence={
            "kind": kind,
            "depth": rewriting.depth,
            "disjuncts": len(rewriting.ucq),
        },
        strategy=provenance["resolved"],
        provenance=provenance,
        rewriting=rewriting,
    )


def _decide_by_chase(
    instance: Instance,
    used: RuleSet,
    goal_disjuncts: Sequence[ConjunctiveQuery],
    bindings: Sequence[Term],
    config: EngineConfig,
    max_levels: int,
    max_atoms: int,
    trace: RunTrace | None,
    provenance: dict,
    rewriting: RewritingResult | None,
) -> AnswerResult:
    """Goal-directed decision: probe round deltas, stop on a witness."""
    goals = _goals_for(goal_disjuncts, bindings)
    provenance["goals"] = len(goals)
    if not goals:
        # Every disjunct's binding identified answer variables to
        # different values; no model can satisfy that.
        return AnswerResult(
            entailed=False,
            tuples=None,
            verdict="exact",
            evidence={"kind": "inconsistent_binding"},
            strategy=provenance["resolved"],
            provenance=provenance,
            rewriting=rewriting,
        )
    probe = GoalProbe(goals)
    if probe.check_full(instance):
        return AnswerResult(
            entailed=True,
            tuples=None,
            verdict="exact",
            evidence={"kind": "instance_witness", "level": 0},
            strategy=provenance["resolved"],
            provenance=provenance,
            rewriting=rewriting,
        )
    SERVING_STATS.chase_runs += 1
    runner = ChaseRunner(
        GoalDirectedPolicy(probe),
        config,
        max_steps=max_levels,
        max_atoms=max_atoms,
        trace=trace,
    )
    chased = runner.run(instance, used)
    if chased.stopped_on_goal or probe.witnessed:
        SERVING_STATS.goal_stops += 1
        verdict, kind, entailed = "exact", "chase_witness", True
    elif chased.terminated:
        verdict, kind, entailed = "exact", "chase_fixpoint", False
    else:
        verdict, kind, entailed = "sound", "chase_budget", False
    return AnswerResult(
        entailed=entailed,
        tuples=None,
        verdict=verdict,
        evidence={
            "kind": kind,
            "level": chased.levels_completed,
            "atoms": len(chased.instance),
        },
        strategy=provenance["resolved"],
        provenance=provenance,
        chase=chased,
        rewriting=rewriting,
    )


def _enumerate_by_chase(
    instance: Instance,
    used: RuleSet,
    disjuncts: Sequence[ConjunctiveQuery],
    bindings: Sequence[Term],
    config: EngineConfig,
    max_levels: int,
    max_atoms: int,
    trace: RunTrace | None,
    provenance: dict,
    rewriting: RewritingResult | None,
) -> AnswerResult:
    """Answer enumeration: chase the relevant fragment, then evaluate.

    No early exit — every answer tuple is wanted, so the chase runs to
    its fixpoint or budget and the query is evaluated once at the end.
    """
    SERVING_STATS.chase_runs += 1
    runner = ChaseRunner(
        ObliviousPolicy(),
        config,
        max_steps=max_levels,
        max_atoms=max_atoms,
        trace=trace,
    )
    chased = runner.run(instance, used)
    tuples, entailed = _constant_answers(chased.instance, disjuncts, bindings)
    verdict = "exact" if chased.terminated else "sound"
    kind = "chase_fixpoint" if chased.terminated else "chase_budget"
    return AnswerResult(
        entailed=entailed,
        tuples=tuples,
        verdict=verdict,
        evidence={
            "kind": kind,
            "level": chased.levels_completed,
            "atoms": len(chased.instance),
        },
        strategy=provenance["resolved"],
        provenance=provenance,
        chase=chased,
        rewriting=rewriting,
    )
