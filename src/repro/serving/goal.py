"""Goal-directed chase stopping: incremental entailment probes.

:class:`GoalProbe` watches a set of Boolean goals (query disjuncts, and
in hybrid mode the piece-rewriter's disjuncts) against a growing
instance.  Instead of re-evaluating each goal on the whole instance
after every round, the probe is *incremental*: a full check anchors a
revision watermark, and each subsequent check only looks for matches
that use at least one atom of the ``delta_since`` slice — every goal
atom takes a turn as the pivot of
:func:`~repro.logic.homomorphisms.homomorphisms_with_pivot` with the
delta's same-predicate atoms as its only candidates, while the rest of
the goal matches against the full instance through the positional
index.  A homomorphism confined to pre-watermark atoms was already
searched by an earlier check, so nothing is missed; a hit is a chase
witness, and :class:`GoalDirectedPolicy` turns it into the runner's
goal stop (:meth:`~repro.engine.runner.VariantPolicy.round_complete`).
"""

from __future__ import annotations

from typing import Sequence

from repro.chase.oblivious import ObliviousPolicy
from repro.logic.atoms import Atom
from repro.logic.homomorphisms import (
    find_homomorphism,
    homomorphisms_with_pivot,
)
from repro.logic.instances import Instance
from repro.serving.stats import SERVING_STATS


class GoalProbe:
    """Incremental existence check of Boolean goals over a growing instance.

    Parameters
    ----------
    goals:
        ``(atoms, seed)`` pairs — each a goal CQ body with the partial
        binding its answer variables are pinned to (``{}`` for a free or
        Boolean goal).  Goals whose seed came out inconsistent must be
        dropped by the caller.
    """

    def __init__(self, goals: Sequence[tuple[Sequence[Atom], dict]]):
        self._goals = [(sorted(atoms), dict(seed)) for atoms, seed in goals]
        self.witnessed = False
        self._watermark = 0

    def check_full(self, instance: Instance) -> bool:
        """Probe every goal against the whole instance; anchor the watermark.

        The round-0 check: later :meth:`check_delta` calls only search
        matches using atoms added after this point.
        """
        self._watermark = instance.revision
        for atoms, seed in self._goals:
            if find_homomorphism(atoms, instance, seed=seed) is not None:
                self.witnessed = True
                return True
        return False

    def rebase(self, instance: Instance) -> None:
        """Re-anchor the watermark on another instance *copy*.

        The runner chases a copy of the caller's instance whose revision
        counter starts fresh; the copy's pre-round-1 revision covers
        exactly the atoms :meth:`check_full` already searched on the
        original, so anchoring here keeps the increment sound.
        """
        self._watermark = instance.revision

    def check_delta(self, instance: Instance) -> bool:
        """Probe only for matches using an atom added since the watermark."""
        if self.witnessed:
            return True
        delta = instance.delta_since(self._watermark)
        self._watermark = instance.revision
        if not delta:
            return False
        by_predicate: dict = {}
        for atom in delta:
            by_predicate.setdefault(atom.predicate, []).append(atom)
        for atoms, seed in self._goals:
            for pivot in atoms:
                candidates = by_predicate.get(pivot.predicate)
                if not candidates:
                    continue
                SERVING_STATS.delta_probes += 1
                match = next(
                    homomorphisms_with_pivot(
                        atoms, instance, pivot, candidates, seed=seed
                    ),
                    None,
                )
                if match is not None:
                    self.witnessed = True
                    return True
        return False


class GoalDirectedPolicy(ObliviousPolicy):
    """The oblivious chase with a goal stop after every round.

    Identical firing to :class:`~repro.chase.oblivious.ObliviousPolicy`
    — same triggers, same canonical order, same null names — so any
    prefix it materializes is a genuine oblivious-chase prefix; the only
    difference is that the run ends as soon as the probe witnesses a
    goal (``result.stopped_on_goal``).
    """

    def __init__(self, probe: GoalProbe):
        super().__init__()
        self.probe = probe

    def begin_run(self, result) -> None:
        self.probe.rebase(result.instance)

    def round_complete(self, result) -> bool:
        return self.probe.check_delta(result.instance)
