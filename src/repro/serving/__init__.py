"""``repro.serving`` — the goal-directed query-serving front door.

One API, :func:`answer`, serves certain-answer requests on the unified
engine stack: goal-directed chase with incremental per-round probes and
query-relevance rule pruning, UCQ rewriting on the runner's fixpoint
mode, or the hybrid of both — each returning an :class:`AnswerResult`
whose verdict says exactly how much to trust the answer.  See
``src/repro/serving/README.md`` for the strategy decision table.
"""

from repro.serving.answer import STRATEGIES, AnswerResult, answer
from repro.serving.goal import GoalDirectedPolicy, GoalProbe
from repro.serving.relevance import (
    goal_predicates,
    relevant_closure,
    relevant_rules,
)
from repro.serving.stats import SERVING_STATS, ServingStats

__all__ = [
    "STRATEGIES",
    "AnswerResult",
    "GoalDirectedPolicy",
    "GoalProbe",
    "SERVING_STATS",
    "ServingStats",
    "answer",
    "goal_predicates",
    "relevant_closure",
    "relevant_rules",
]
