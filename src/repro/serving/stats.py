"""Serving-layer counters, registered as the ``serving`` metrics group.

One process-wide accumulator in the style of ``MATCHER_STATS`` /
``TRANSPORT_STATS``: the query-serving front door
(:func:`repro.serving.answer`) bumps these as it routes requests, so a
:meth:`~repro.obs.registry.MetricsRegistry.collect` scope around any run
shows how serving used the engine — how many chases ran, how many
stopped early on a witnessed goal, how many incremental delta probes the
goal check issued, and how many rules relevance pruning dropped.

The global is named ``serving`` in :func:`repro.obs.default_registry`
(and allowlisted in the ``repro.checks`` stats-registry pass), so the
autouse test fixture zeroes it and benchmark artifacts snapshot it for
free.
"""

from __future__ import annotations


class ServingStats:
    """Counters of the query-serving front door."""

    __slots__ = (
        "requests",
        "chase_runs",
        "rewrite_runs",
        "goal_stops",
        "delta_probes",
        "rules_pruned",
    )

    def __init__(self):
        self.reset()

    def reset(self) -> None:
        #: ``answer()`` calls served.
        self.requests = 0
        #: Chase runs launched on behalf of a request.
        self.chase_runs = 0
        #: Rewriting runs launched on behalf of a request.
        self.rewrite_runs = 0
        #: Chase runs that stopped early on a witnessed goal.
        self.goal_stops = 0
        #: Incremental per-round goal probes issued against a delta slice.
        self.delta_probes = 0
        #: Rules dropped by query-relevance pruning, summed over requests.
        self.rules_pruned = 0

    def snapshot(self) -> dict[str, int]:
        return {
            "requests": self.requests,
            "chase_runs": self.chase_runs,
            "rewrite_runs": self.rewrite_runs,
            "goal_stops": self.goal_stops,
            "delta_probes": self.delta_probes,
            "rules_pruned": self.rules_pruned,
        }


#: Global serving counters; see :func:`repro.obs.default_registry`.
SERVING_STATS = ServingStats()
