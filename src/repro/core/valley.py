"""Valley queries and the peak-removing argument (Section 5.1).

A *valley query* ``q(x, y)`` (Definition 39) is a binary CQ that is a DAG
and whose only ``<_q``-maximal variables are its two answer variables —
picture the answers as two peaks with all existential variables in the
valley between them.

Lemma 40 (peak removing) shows every witness set contains a valley query;
its proof is an induction on the ``<_lex`` order of timestamp multisets.
:func:`remove_peak` executes a single proof step on a concrete chase —
locate a maximal existential peak, rewind the trigger that created its
image, and re-witness with a strictly smaller measure — and
:func:`descend_to_valley` iterates it, yielding the constructive version
of the lemma used by the EXP-5 experiments.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.chase.result import ChaseResult
from repro.datastructures.multiset import Multiset
from repro.logic.instances import Instance
from repro.logic.substitutions import Substitution
from repro.logic.terms import Term, Variable
from repro.queries.cq import ConjunctiveQuery
from repro.queries.entailment import answer_homomorphisms
from repro.queries.ucq import UCQ


def is_valley_query(query: ConjunctiveQuery) -> bool:
    """Definition 39: binary, DAG, maximal variables exactly the answers."""
    if len(query.answers) != 2:
        return False
    if any(atom.predicate.arity > 2 for atom in query.atoms):
        return False
    if not query.is_dag():
        return False
    order = query.reachability_order()
    maximal = order.maximal_elements()
    # Definition 39: no variable other than the answers x, y is maximal.
    # (Proposition 43's case analysis covers valleys where only one of the
    # two answers is maximal, so the containment may be strict.)
    return maximal <= set(query.answers)


def maximal_existential_variables(
    query: ConjunctiveQuery,
) -> list[Variable]:
    """The ``≤_q``-maximal existential variables — the peaks to remove."""
    order = query.reachability_order()
    maximal = order.maximal_elements()
    return sorted(
        (v for v in query.existential_variables() if v in maximal),
        key=lambda v: v.name,
    )


@dataclass(frozen=True)
class PeakRemovalStep:
    """One executed step of Lemma 40's argument."""

    before_query: ConjunctiveQuery
    before_hom: Substitution
    removed_peak: Variable
    intermediate_instance: Instance
    after_query: ConjunctiveQuery
    after_hom: Substitution

    def measure_before(self, chase: ChaseResult) -> Multiset[int]:
        image = {
            self.before_hom.apply_term(t)
            for a in self.before_query.atoms
            for t in a.args
        }
        return chase.timestamp_multiset(image)

    def measure_after(self, chase: ChaseResult) -> Multiset[int]:
        image = {
            self.after_hom.apply_term(t)
            for a in self.after_query.atoms
            for t in a.args
        }
        return chase.timestamp_multiset(image)

    def measure_decreased(self, chase: ChaseResult) -> bool:
        """Lemma 40's invariant: the ``TS_m`` measure strictly drops."""
        return self.measure_after(chase) < self.measure_before(chase)


class PeakRemovalError(RuntimeError):
    """A proof step could not be executed on the given concrete data."""


def _image_multiset(
    query: ConjunctiveQuery, hom: Substitution, chase: ChaseResult
) -> Multiset[int]:
    image = {
        hom.apply_term(t) for a in query.atoms for t in a.args
    }
    return chase.timestamp_multiset(image)


def _minimal_witness(
    rewriting: UCQ,
    target: Instance,
    source: Term,
    sink: Term,
    chase: ChaseResult,
) -> tuple[ConjunctiveQuery, Substitution] | None:
    """The ``TS_m``-minimal injective witness ``(q, h)`` with ``h(x)=s, h(y)=t``."""
    best: tuple[Multiset[int], ConjunctiveQuery, Substitution] | None = None
    for disjunct in rewriting:
        for hom in answer_homomorphisms(
            target, disjunct, (source, sink), injective=True
        ):
            measure = _image_multiset(disjunct, hom, chase)
            if best is None or measure < best[0]:
                best = (measure, disjunct, hom)
    if best is None:
        return None
    return best[1], best[2]


def remove_peak(
    query: ConjunctiveQuery,
    hom: Substitution,
    chase: ChaseResult,
    rewriting: UCQ,
    source: Term,
    sink: Term,
) -> PeakRemovalStep:
    """Execute one step of Lemma 40's proof on a concrete chase.

    Preconditions: ``hom`` is an injective homomorphism of ``query`` into
    ``chase.instance`` with the answers mapped to ``(source, sink)``, and
    ``query`` is not a valley query (it has a maximal existential peak).

    The step: take a ``≤_q``-maximal existential ``z``, rewind the trigger
    ``⟨ρ, π⟩`` that created ``h(z)``, form
    ``I = h(q) \\ h(Z) ∪ π(body(ρ))`` and pick the ``TS_m``-minimal
    injective witness of the rewriting on ``I``.
    """
    peaks = maximal_existential_variables(query)
    if not peaks:
        raise PeakRemovalError(
            "query has no maximal existential variable (already a valley)"
        )
    peak = peaks[0]
    peak_image = hom.apply_term(peak)
    if not chase.is_chase_term(peak_image):
        raise PeakRemovalError(
            f"peak image {peak_image} is not a chase-created term"
        )
    record = chase.creation_of(peak_image)
    trigger = record.trigger
    body_image = Substitution(trigger.mapping.as_dict()).apply_atoms(
        trigger.rule.body
    )
    peak_atoms = {a for a in query.atoms if peak in a.variables()}
    kept_atoms = {
        hom.apply_atom(a) for a in query.atoms if a not in peak_atoms
    }
    intermediate = Instance(kept_atoms | set(body_image), add_top=True)

    witness = _minimal_witness(rewriting, intermediate, source, sink, chase)
    if witness is None:
        raise PeakRemovalError(
            "no rewriting disjunct injectively matches the rewound instance; "
            "is the rewriting complete and injectively closed?"
        )
    after_query, after_hom = witness
    return PeakRemovalStep(
        before_query=query,
        before_hom=hom,
        removed_peak=peak,
        intermediate_instance=intermediate,
        after_query=after_query,
        after_hom=after_hom,
    )


def descend_to_valley(
    query: ConjunctiveQuery,
    hom: Substitution,
    chase: ChaseResult,
    rewriting: UCQ,
    source: Term,
    sink: Term,
    max_steps: int = 50,
) -> tuple[ConjunctiveQuery, Substitution, list[PeakRemovalStep]]:
    """Iterate :func:`remove_peak` until a valley query witnesses the edge.

    Termination is guaranteed by Lemma 8 (the ``<_lex`` measure is
    well-founded on size-bounded multisets); ``max_steps`` guards against
    violated preconditions.  Returns the valley witness and the executed
    steps (each of which strictly decreased the measure).
    """
    current_query, current_hom = query, hom
    steps: list[PeakRemovalStep] = []
    for _ in range(max_steps):
        if is_valley_query(current_query):
            return current_query, current_hom, steps
        step = remove_peak(
            current_query, current_hom, chase, rewriting, source, sink
        )
        if not step.measure_decreased(chase):
            raise PeakRemovalError(
                "peak removal did not decrease the TS_m measure — "
                "Lemma 40's invariant failed on this input"
            )
        steps.append(step)
        current_query, current_hom = step.after_query, step.after_hom
    raise PeakRemovalError(f"no valley query reached in {max_steps} steps")
