"""Chromatic number and girth of chase E-graphs (Conjecture 44, Theorem 45).

Conjecture 44 proposes that loop-free bdd chases have finitely colorable
``E``-graphs; Theorem 45 (Erdős) recalls that high girth does not cap the
chromatic number — which is why the paper's 4-clique argument cannot be
the whole story for the conjecture.  The EXP-7 experiments use these exact
small-scale computations.
"""

from __future__ import annotations

import networkx as nx

from repro.core.egraph import undirected_view


def greedy_chromatic_upper_bound(graph: nx.DiGraph) -> int:
    """A fast upper bound on the chromatic number (largest-first greedy)."""
    undirected = undirected_view(graph)
    if undirected.number_of_nodes() == 0:
        return 0
    coloring = nx.coloring.greedy_color(undirected, strategy="largest_first")
    return max(coloring.values(), default=-1) + 1


def chromatic_number(graph: nx.DiGraph, max_colors: int = 12) -> int:
    """Exact chromatic number via backtracking (vertices ordered by degree).

    Raises ValueError when more than ``max_colors`` colors would be needed
    — chase prefixes in the corpus stay tiny, so this is a safety net, not
    a practical limit.  Loops make a graph uncolorable; they raise too.
    """
    undirected = undirected_view(graph)
    if any(graph.has_edge(v, v) for v in graph.nodes):
        raise ValueError("a graph with a loop has no proper coloring")
    nodes = sorted(
        undirected.nodes, key=lambda v: (-undirected.degree(v), str(v))
    )
    if not nodes:
        return 0
    if undirected.number_of_edges() == 0:
        return 1
    upper = min(greedy_chromatic_upper_bound(graph), max_colors)

    def colorable_with(k: int) -> bool:
        assignment: dict = {}

        def assign(index: int) -> bool:
            if index == len(nodes):
                return True
            node = nodes[index]
            used = {
                assignment[n]
                for n in undirected.neighbors(node)
                if n in assignment
            }
            # Symmetry breaking: only introduce one brand-new color.
            introduced = max(assignment.values(), default=-1)
            for color in range(min(k, introduced + 2)):
                if color in used:
                    continue
                assignment[node] = color
                if assign(index + 1):
                    return True
                del assignment[node]
            return False

        return assign(0)

    for k in range(1, upper + 1):
        if colorable_with(k):
            return k
    raise ValueError(
        f"chromatic number exceeds {max_colors} on a graph of "
        f"{undirected.number_of_nodes()} vertices"
    )


def girth(graph: nx.DiGraph) -> float:
    """Length of a shortest cycle of the undirected view (inf if forest).

    Loops count as girth 1 and digons (edges in both directions) as 2,
    matching the directed reading used in the discussion section.
    """
    if any(graph.has_edge(v, v) for v in graph.nodes):
        return 1.0
    if any(
        graph.has_edge(t, s) for s, t in graph.edges if s != t
    ):
        return 2.0
    undirected = undirected_view(graph)
    try:
        return float(nx.girth(undirected))
    except Exception:
        shortest = _shortest_cycle(undirected)
        return float(shortest) if shortest else float("inf")


def _shortest_cycle(undirected: nx.Graph) -> int | None:
    """BFS-based shortest cycle length, for older networkx versions."""
    best: int | None = None
    for root in undirected.nodes:
        depth = {root: 0}
        parent = {root: None}
        queue = [root]
        while queue:
            node = queue.pop(0)
            for neighbor in undirected.neighbors(node):
                if neighbor not in depth:
                    depth[neighbor] = depth[node] + 1
                    parent[neighbor] = node
                    queue.append(neighbor)
                elif parent[node] != neighbor:
                    cycle_length = depth[node] + depth[neighbor] + 1
                    if best is None or cycle_length < best:
                        best = cycle_length
    return best


def clique_number(graph: nx.DiGraph) -> int:
    """Size of a maximum clique of the undirected view (= max tournament)."""
    undirected = undirected_view(graph)
    best = 0
    for clique in nx.find_cliques(undirected):
        best = max(best, len(clique))
    return best
