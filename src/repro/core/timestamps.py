"""Timestamp structure of existential chases (Definition 34, Observation 35,
Lemma 33).

For a regal rule set ``R``, the chase of its non-Datalog part ``R_∃`` is a
DAG whose binary atoms always point from older to newer terms; and the
full chase factorizes as Datalog saturation over ``Ch(R_∃)``.  These
checkers verify both facts on concrete chase prefixes.
"""

from __future__ import annotations

import networkx as nx

from repro.chase.oblivious import oblivious_chase
from repro.chase.result import ChaseResult
from repro.logic.homomorphisms import homomorphically_equivalent
from repro.logic.instances import Instance
from repro.rules.ruleset import RuleSet


def binary_atom_graph(instance: Instance) -> nx.DiGraph:
    """Directed graph over all binary atoms (any binary predicate)."""
    graph = nx.DiGraph()
    for atom in instance:
        if atom.predicate.arity == 2:
            graph.add_edge(atom.args[0], atom.args[1])
        else:
            for term in atom.args:
                graph.add_node(term)
    return graph


def existential_chase_is_dag(result: ChaseResult) -> bool:
    """Observation 35: ``Ch(R_∃)`` is a directed acyclic graph."""
    return nx.is_directed_acyclic_graph(binary_atom_graph(result.instance))


def timestamps_increase_along_edges(result: ChaseResult) -> bool:
    """The proof core of Observation 35: ``TS(s) < TS(t)`` for every binary
    atom ``A(s, t)`` of a forward-existential chase."""
    for atom in result.instance:
        if atom.predicate.arity != 2:
            continue
        if result.timestamp(atom.args[0]) >= result.timestamp(atom.args[1]):
            return False
    return True


def datalog_factorization(
    rules: RuleSet,
    max_levels: int = 4,
    datalog_levels: int = 8,
) -> tuple[Instance, Instance]:
    """Compute ``Ch(R)`` and ``Ch(Ch(R_∃), R_DL)`` prefixes (Lemma 33 data)."""
    full = oblivious_chase(Instance(), rules, max_levels=max_levels)
    existential_part = oblivious_chase(
        Instance(), rules.existential_rules(), max_levels=max_levels
    )
    factored = oblivious_chase(
        existential_part.instance,
        rules.datalog_rules(),
        max_levels=datalog_levels,
    )
    return full.instance, factored.instance


def datalog_factorization_equivalent(
    rules: RuleSet,
    max_levels: int = 4,
    datalog_levels: int = 8,
) -> bool:
    """Lemma 33 on prefixes: ``Ch(R) ↔ Ch(Ch(R_∃), R_DL)``."""
    full, factored = datalog_factorization(
        rules, max_levels=max_levels, datalog_levels=datalog_levels
    )
    return homomorphically_equivalent(full, factored)


def existential_chase(
    rules: RuleSet, max_levels: int = 4
) -> ChaseResult:
    """``Ch(R_∃)`` from ``{⊤}`` with timestamps — Section 5's base object."""
    return oblivious_chase(
        Instance(), rules.existential_rules(), max_levels=max_levels
    )
