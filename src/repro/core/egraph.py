"""E-graphs: instances over a binary predicate viewed as directed graphs.

Section 2.4 notes that over a binary signature, instances and queries can
be seen as directed graphs; the ``E``-graph of an instance keeps only the
atoms over the fixed predicate ``E`` (or any chosen binary predicate).
All the tournament, coloring and girth machinery operates on these views.
"""

from __future__ import annotations

from typing import Iterable

import networkx as nx

from repro.logic.atoms import Atom
from repro.logic.instances import Instance
from repro.logic.predicates import EDGE, Predicate
from repro.logic.terms import Term


def egraph(
    instance: Instance | Iterable[Atom],
    predicate: Predicate = EDGE,
) -> nx.DiGraph:
    """Return the directed graph of ``predicate``-atoms.

    Vertices are the terms occurring in ``predicate``-atoms; an atom
    ``E(s, t)`` is the edge ``s -> t`` (loops allowed).
    """
    if predicate.arity != 2:
        raise ValueError(f"egraph requires a binary predicate, got {predicate}")
    graph = nx.DiGraph()
    atoms = (
        instance.with_predicate(predicate)
        if isinstance(instance, Instance)
        else [a for a in instance if a.predicate == predicate]
    )
    for atom in atoms:
        source, target = atom.args
        graph.add_edge(source, target)
    return graph


def undirected_view(graph: nx.DiGraph, with_loops: bool = False) -> nx.Graph:
    """Collapse edge directions; drop loops unless ``with_loops``."""
    result = nx.Graph()
    result.add_nodes_from(graph.nodes)
    for source, target in graph.edges:
        if source == target and not with_loops:
            continue
        result.add_edge(source, target)
    return result


def has_loop(graph: nx.DiGraph) -> bool:
    """``Loop_E`` on the graph view: some edge ``v -> v`` exists."""
    return any(source == target for source, target in graph.edges)


def loops_of(graph: nx.DiGraph) -> set[Term]:
    """The vertices carrying a loop."""
    return {source for source, target in graph.edges if source == target}


def is_dag(graph: nx.DiGraph) -> bool:
    """True when the graph has no directed cycle (loops included)."""
    return nx.is_directed_acyclic_graph(graph)


def edge_atoms(instance: Instance, predicate: Predicate = EDGE) -> list[Atom]:
    """The ``predicate``-atoms of the instance, deterministically ordered."""
    return sorted(instance.with_predicate(predicate))
