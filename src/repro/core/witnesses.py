"""Witness sets ``W(s, t)`` (Definition 36, Observation 37).

Given the injective rewriting ``Q`` of ``E(x, y)`` against a regal rule
set, the witnesses of an edge ``E(s, t)`` of ``Ch(Ch(R_∃), R_DL)`` are the
disjuncts of ``Q`` that injectively match ``Ch(R_∃)`` on ``(s, t)``.
Observation 37: the set is never empty.  Section 5.1 then shows it always
contains a valley query (via peak removal).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.logic.instances import Instance
from repro.logic.substitutions import Substitution
from repro.logic.terms import Term
from repro.queries.cq import ConjunctiveQuery
from repro.queries.entailment import answer_homomorphisms, entails_cq
from repro.queries.ucq import UCQ
from repro.core.valley import is_valley_query


def witness_set(
    chase_existential: Instance,
    rewriting: UCQ,
    source: Term,
    sink: Term,
) -> list[ConjunctiveQuery]:
    """``W(s, t)``: disjuncts of the rewriting with ``Ch(R_∃) ⊨inj q(s, t)``."""
    return [
        disjunct
        for disjunct in rewriting
        if entails_cq(
            chase_existential, disjunct, (source, sink), injective=True
        )
    ]


def valley_witnesses(
    chase_existential: Instance,
    rewriting: UCQ,
    source: Term,
    sink: Term,
) -> list[ConjunctiveQuery]:
    """The valley queries inside ``W(s, t)`` — Lemma 40 promises at least
    one (on the full chase)."""
    return [
        disjunct
        for disjunct in witness_set(chase_existential, rewriting, source, sink)
        if is_valley_query(disjunct)
    ]


@dataclass(frozen=True)
class EdgeWitness:
    """One witnessed edge: the query and the injective homomorphism."""

    source: Term
    sink: Term
    query: ConjunctiveQuery
    hom: Substitution


def first_witness(
    chase_existential: Instance,
    rewriting: UCQ,
    source: Term,
    sink: Term,
    valley_only: bool = False,
) -> EdgeWitness | None:
    """A deterministic witness for ``E(s, t)`` (valley query if requested)."""
    disjuncts = (
        valley_witnesses(chase_existential, rewriting, source, sink)
        if valley_only
        else witness_set(chase_existential, rewriting, source, sink)
    )
    for disjunct in disjuncts:
        for hom in answer_homomorphisms(
            chase_existential, disjunct, (source, sink), injective=True
        ):
            return EdgeWitness(
                source=source, sink=sink, query=disjunct, hom=hom
            )
    return None


def color_tournament_by_witness(
    chase_existential: Instance,
    rewriting: UCQ,
    edges: list[tuple[Term, Term]],
    valley_only: bool = True,
) -> dict[tuple[Term, Term], ConjunctiveQuery]:
    """Proposition 41's coloring: each edge gets an (arbitrary but
    deterministic) witness query as its color.

    Edges with an empty witness set are omitted — on full chases
    Observation 37 rules that out; on prefixes it can happen when the
    witness structure lies beyond the prefix.
    """
    coloring: dict[tuple[Term, Term], ConjunctiveQuery] = {}
    for source, sink in edges:
        candidates = (
            valley_witnesses(chase_existential, rewriting, source, sink)
            if valley_only
            else witness_set(chase_existential, rewriting, source, sink)
        )
        if candidates:
            coloring[(source, sink)] = sorted(candidates)[0]
    return coloring
