"""The main theorem's machinery: Lemma 42, Proposition 43, Property (p).

This module operationalizes Section 5.2 and the end-to-end statement:

* :func:`defined_relation` / :func:`is_functional` — Lemma 42: a CQ whose
  non-answer variables all lie below its first answer variable defines a
  function on ``Ch(R_∃)``;
* :func:`decompose_valley`, :func:`function_image` — the ``q_x``/``q_y``
  split and the functions ``f_x``/``f_y`` of Proposition 43;
* :func:`loop_from_valley_tournament` — Proposition 43's constructive
  conclusion: a single valley query defining a 4-tournament also defines a
  loop (returns the looping vertex);
* :func:`check_property_p` — the Theorem 1 verifier run on chase prefixes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.chase.oblivious import oblivious_chase
from repro.logic.instances import Instance
from repro.logic.predicates import EDGE, Predicate
from repro.logic.terms import Term, Variable
from repro.queries.cq import ConjunctiveQuery
from repro.queries.entailment import answer_homomorphisms, entails_cq
from repro.rules.ruleset import RuleSet
from repro.core.egraph import egraph
from repro.core.tournament import entails_loop, is_growing, max_tournament_size
from repro.core.valley import is_valley_query


# ----------------------------------------------------------------------
# Lemma 42: functionality of downward-anchored queries
# ----------------------------------------------------------------------

def defined_relation(
    query: ConjunctiveQuery, instance: Instance
) -> set[tuple[Term, ...]]:
    """All answer tuples of ``query`` over ``instance``."""
    result: set[tuple[Term, ...]] = set()
    for hom in answer_homomorphisms(instance, query):
        result.add(tuple(hom.apply_term(v) for v in query.answers))
    return result


def is_functional(
    query: ConjunctiveQuery, instance: Instance
) -> bool:
    """Lemma 42's conclusion: the defined relation is a function of the
    first answer component (each ``s`` has at most one ``t̄``)."""
    images: dict[Term, tuple[Term, ...]] = {}
    for answer in defined_relation(query, instance):
        anchor, rest = answer[0], answer[1:]
        if anchor in images and images[anchor] != rest:
            return False
        images[anchor] = rest
    return True


def lemma42_applies(query: ConjunctiveQuery) -> bool:
    """Precondition of Lemma 42: every other variable is ``<_q`` the first
    answer variable."""
    if not query.answers:
        return False
    if not query.is_dag():
        return False
    order = query.reachability_order()
    anchor = query.answers[0]
    return all(
        order.less(v, anchor)
        for v in query.variables()
        if v != anchor
    )


# ----------------------------------------------------------------------
# Proposition 43: the single-valley-query case analysis
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class ValleyDecomposition:
    """The ``q_x`` / ``q_y`` split of a connected two-peak valley query."""

    query: ConjunctiveQuery
    x_side: frozenset
    y_side: frozenset
    shared_variables: tuple[Variable, ...]


def classify_valley(query: ConjunctiveQuery) -> str:
    """Return Proposition 43's case for a valley query:
    ``"disconnected"``, ``"single_maximal"`` or ``"two_maximal"``."""
    if not is_valley_query(query):
        raise ValueError(f"{query} is not a valley query")
    if not query.is_connected():
        return "disconnected"
    order = query.reachability_order()
    maximal = order.maximal_elements()
    if len(maximal) == 1:
        return "single_maximal"
    return "two_maximal"


def decompose_valley(query: ConjunctiveQuery) -> ValleyDecomposition:
    """Split a two-peak valley query into ``q_x`` and ``q_y``.

    ``q_x`` holds the atoms all of whose variables are ``≤_q x``; likewise
    ``q_y``.  The shared variables ``v̄`` are those below both peaks.
    """
    x_var, y_var = query.answers
    order = query.reachability_order()

    def below(peak):
        return {
            v for v in query.variables() if order.less_equal(v, peak)
        }

    below_x, below_y = below(x_var), below(y_var)
    x_atoms = frozenset(
        a for a in query.atoms if set(a.variables()) <= below_x
    )
    y_atoms = frozenset(
        a for a in query.atoms if set(a.variables()) <= below_y
    )
    uncovered = query.atoms - x_atoms - y_atoms
    if uncovered:
        raise ValueError(
            f"valley decomposition incomplete; uncovered atoms: "
            f"{sorted(str(a) for a in uncovered)}"
        )
    shared = tuple(
        sorted(
            (v for v in query.variables() if v in below_x and v in below_y),
            key=lambda v: v.name,
        )
    )
    return ValleyDecomposition(
        query=query, x_side=x_atoms, y_side=y_atoms, shared_variables=shared
    )


def function_image(
    atoms: frozenset,
    anchor: Variable,
    anchor_value: Term,
    collect: Sequence[Variable],
    instance: Instance,
) -> tuple[Term, ...] | None:
    """The (unique, by Lemma 42) image of ``collect`` when ``anchor`` is
    pinned — the functions ``f_x`` and ``f_y`` of Proposition 43."""
    from repro.logic.homomorphisms import homomorphisms

    for hom in homomorphisms(atoms, instance, seed={anchor: anchor_value}):
        return tuple(hom.apply_term(v) for v in collect)
    return None


def _transitive_triangle(
    vertices: Sequence[Term], relation: set[tuple[Term, Term]]
) -> tuple[Term, Term, Term] | None:
    """Find ``(k1, k2, k3)`` with ``k1→k2, k1→k3, k2→k3`` in ``relation``."""
    for k1 in vertices:
        for k2 in vertices:
            if k1 == k2 or (k1, k2) not in relation:
                continue
            for k3 in vertices:
                if k3 in (k1, k2):
                    continue
                if (k1, k3) in relation and (k2, k3) in relation:
                    return k1, k2, k3
    return None


def loop_from_valley_tournament(
    query: ConjunctiveQuery,
    instance: Instance,
    vertices: Sequence[Term],
) -> Term | None:
    """Proposition 43, constructively.

    ``vertices`` must be (at least) four terms forming a tournament in the
    relation defined by ``query`` over ``instance`` (``Ch(R_∃)``).
    Returns a term ``u`` with ``instance ⊨ q(u, u)`` — the loop the
    proposition derives — or None when the case analysis finds none (which
    on faithful inputs means the preconditions were violated).
    """
    case = classify_valley(query)
    relation = {
        pair
        for pair in defined_relation(query, instance)
        if len(pair) == 2
    }

    if case == "single_maximal":
        # Lemma 42 forces out-degree ≤ 1; a 4-tournament cannot occur, so
        # there is nothing to derive — report the contradiction as None.
        return None

    if case == "disconnected":
        # q = q1(x) ∧ q2(y) ∧ q3; any u satisfying both sides loops.
        x_var, y_var = query.answers
        components = _connected_components(query)
        q1 = components.get_component_of(x_var)
        q2 = components.get_component_of(y_var)
        for u in sorted(instance.active_domain()):
            sat_q1 = entails_cq(
                instance, ConjunctiveQuery(q1, (x_var,)), (u,)
            )
            sat_q2 = entails_cq(
                instance, ConjunctiveQuery(q2, (y_var,)), (u,)
            )
            if sat_q1 and sat_q2:
                return u
        return None

    # Two maximal peaks: the f_x / f_y composition argument.
    triangle = _transitive_triangle(list(vertices), relation)
    if triangle is None:
        return None
    _, k2, _ = triangle
    if entails_cq(instance, query, (k2, k2)):
        return k2
    return None


class _Components:
    def __init__(self, groups: list[frozenset]):
        self._groups = groups

    def get_component_of(self, variable: Variable) -> frozenset:
        for group in self._groups:
            if any(variable in atom.variables() for atom in group):
                return group
        raise KeyError(variable)


def _connected_components(query: ConjunctiveQuery) -> _Components:
    """Group the query's atoms into connected components (shared terms)."""
    from repro.datastructures.unionfind import UnionFind

    uf: UnionFind = UnionFind()
    atoms = sorted(query.atoms)
    for atom in atoms:
        terms = list(atom.args)
        uf.add(("atom", atom))
        for term in terms:
            uf.union(("atom", atom), ("term", term))
    groups: dict = {}
    for atom in atoms:
        root = uf.find(("atom", atom))
        groups.setdefault(root, set()).add(atom)
    return _Components([frozenset(g) for g in groups.values()])


# ----------------------------------------------------------------------
# Theorem 1: the Property (p) verifier
# ----------------------------------------------------------------------

@dataclass
class PropertyPReport:
    """Evidence about Property (p) collected from chase prefixes.

    Property (p): ``Ch ⊨ Tournaments_E ⇒ Ch ⊨ Loop_E``.  A *refutation*
    would be tournament sizes growing without bound while no loop ever
    appears; ``consistent`` is False only when the prefix data exhibits
    that pattern (growth across the observed window with no loop).
    """

    levels: int
    tournament_sizes: list[int] = field(default_factory=list)
    loop_level: int | None = None
    terminated: bool = False

    @property
    def max_tournament(self) -> int:
        return max(self.tournament_sizes, default=0)

    @property
    def loop_entailed(self) -> bool:
        return self.loop_level is not None

    @property
    def tournaments_growing(self) -> bool:
        return is_growing(self.tournament_sizes)

    @property
    def consistent_with_property_p(self) -> bool:
        if self.loop_entailed:
            return True
        if self.terminated:
            return True  # finite chase cannot entail Tournaments_E
        return not self.tournaments_growing

    def summary_row(self) -> tuple:
        return (
            self.levels,
            self.max_tournament,
            self.loop_level if self.loop_level is not None else "-",
            "yes" if self.consistent_with_property_p else "NO",
        )


def check_property_p(
    rules: RuleSet,
    instance: Instance | None = None,
    max_levels: int = 6,
    max_atoms: int = 100_000,
    predicate: Predicate = EDGE,
) -> PropertyPReport:
    """Run the chase and measure Property (p)'s two sides per level."""
    start = instance if instance is not None else Instance()
    result = oblivious_chase(
        start, rules, max_levels=max_levels, max_atoms=max_atoms
    )
    report = PropertyPReport(
        levels=result.levels_completed, terminated=result.terminated
    )
    for level in range(result.levels_completed + 1):
        prefix = result.prefix(level)
        report.tournament_sizes.append(
            max_tournament_size(egraph(prefix, predicate))
        )
        if report.loop_level is None and entails_loop(prefix, predicate):
            report.loop_level = level
    return report
