"""Section 6 extensions: UCQ-defined tournament relations and the
Question 46 tournament size bound.

* *Tournament Definition* — Theorem 1 extends to any relation definable by
  a binary UCQ: add ``q_i(x, y) → E(x, y)`` for each disjunct (with ``E``
  fresh); :func:`define_edge_by_ucq` performs that surgery.
* *Tournament Size Bounds* — Question 46 asks for the maximal tournament
  size of a loop-free chase; the proof of Theorem 28 yields the upper
  bound ``R(4, ..., 4)`` with one argument per disjunct of the injective
  rewriting of ``E``; :func:`question46_bound` computes it and
  :func:`observed_tournament_bound` measures the actual maximum on chase
  prefixes for comparison.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.logic.atoms import Atom
from repro.logic.instances import Instance
from repro.logic.predicates import EDGE, Predicate
from repro.queries.ucq import UCQ
from repro.rewriting.rewriter import rewrite
from repro.rules.parser import parse_query
from repro.rules.rule import Rule
from repro.rules.ruleset import RuleSet
from repro.core.egraph import egraph
from repro.core.ramsey import ramsey_upper_bound
from repro.core.tournament import max_tournament_size


def define_edge_by_ucq(
    rules: RuleSet,
    definition: UCQ,
    target: Predicate = EDGE,
) -> RuleSet:
    """Section 6's *Tournament Definition* surgery.

    Adds ``q_i(x, y) → target(x, y)`` for every disjunct of ``definition``
    (a binary UCQ).  When ``target`` is fresh, UCQ-rewritability of the
    rule set is unaffected, so Theorem 1 applies to the defined relation.
    """
    if len(definition.answers) != 2:
        raise ValueError("the defining UCQ must be binary")
    if target in rules.signature():
        raise ValueError(
            f"{target} already occurs in the rule set; pick a fresh "
            "predicate so UCQ-rewritability is preserved"
        )
    new_rules = list(rules)
    for disjunct in definition:
        head = [Atom(target, disjunct.answers)]
        new_rules.append(
            Rule(disjunct.atoms, head, label=f"define_{target.name}")
        )
    return RuleSet(
        new_rules,
        name=f"{rules.name}+{target.name}" if rules.name else target.name,
    )


@dataclass(frozen=True)
class Question46Report:
    """The Question 46 comparison: proved bound vs observed maximum."""

    rewriting_size: int
    bound: int
    observed_max: int
    loop_free: bool

    @property
    def bound_respected(self) -> bool:
        """The theorem's promise: loop-free chases stay below the bound."""
        return (not self.loop_free) or self.observed_max < self.bound


def question46_bound(rewriting: UCQ, clique_size: int = 4) -> int:
    """``R(4, ..., 4)`` with one argument per rewriting disjunct.

    A tournament of at least this size in the chase forces, by Ramsey, a
    single-valley-query sub-tournament of size 4 — and then the loop
    (Proposition 43).
    """
    if len(rewriting) == 0:
        return 1
    return ramsey_upper_bound(*([clique_size] * len(rewriting)))


def observed_tournament_bound(
    rules: RuleSet,
    instance: Instance | None = None,
    max_levels: int = 5,
    max_atoms: int = 50_000,
    rewriting_depth: int = 8,
    predicate: Predicate = EDGE,
) -> Question46Report:
    """Measure the Question 46 quantities on a chase prefix.

    Computes the rewriting of ``E(x, y)``, the resulting Ramsey bound, the
    maximum tournament observed in the chase prefix and whether the prefix
    is loop-free.
    """
    from repro.chase.oblivious import oblivious_chase
    from repro.core.tournament import entails_loop

    rewriting = rewrite(
        parse_query("E(x,y)", answers=("x", "y")),
        rules,
        max_depth=rewriting_depth,
        max_disjuncts=500,
        strict=False,
    )
    start = instance if instance is not None else Instance()
    result = oblivious_chase(
        start, rules, max_levels=max_levels, max_atoms=max_atoms
    )
    graph = egraph(result.instance, predicate)
    return Question46Report(
        rewriting_size=len(rewriting.ucq),
        bound=question46_bound(rewriting.ucq),
        observed_max=max_tournament_size(graph),
        loop_free=not entails_loop(result.instance, predicate),
    )
