"""Ramsey machinery for colored tournaments (Theorem 7, Proposition 41).

Theorem 7 (directed Ramsey): for sizes ``s_1, ..., s_k`` there is
``R(s_1, ..., s_k)`` such that every edge-``k``-colored tournament of at
least that size contains a sub-tournament of size ``s_i`` colored ``i``
for some ``i``.  Because a tournament (paper sense) covers every unordered
pair, coloring one existing directed edge per pair reduces the statement
to the classical multicolor graph Ramsey theorem, whose upper bounds this
module computes:

* two colors: ``R(s, t) ≤ C(s + t - 2, s - 1)``,
* more colors: ``R(s_1, ..., s_k) ≤ R_2(s_1, R(s_2, ..., s_k))``.

:func:`find_monochromatic_tournament` performs the concrete extraction
used by Proposition 41: given a tournament whose edges are colored by
valley queries, find a sub-tournament witnessed by a single query.
"""

from __future__ import annotations

from math import comb
from typing import Callable, Hashable, Sequence

import networkx as nx

from repro.logic.terms import Term
from repro.core.egraph import undirected_view
from repro.core.tournament import is_tournament

#: Known exact small two-color Ramsey numbers (classical results).
EXACT_TWO_COLOR = {
    (1, 1): 1,
    (2, 2): 2,
    (3, 3): 6,
    (3, 4): 9,
    (3, 5): 14,
    (4, 4): 18,
}


def ramsey_upper_bound(*sizes: int) -> int:
    """An upper bound for the multicolor Ramsey number ``R(s_1, ..., s_k)``.

    Sizes of 1 are trivially satisfied (a single vertex); size 2 asks for
    any edge of that color, handled by the recurrences below.
    """
    cleaned = sorted(s for s in sizes if s > 1)
    if not cleaned:
        return 1
    if len(cleaned) == 1:
        return cleaned[0]
    if len(cleaned) == 2:
        s, t = cleaned
        exact = EXACT_TWO_COLOR.get((min(s, t), max(s, t)))
        if exact is not None:
            return exact
        return comb(s + t - 2, s - 1)
    first, *rest = cleaned
    return ramsey_upper_bound(first, ramsey_upper_bound(*rest))


def paper_bound(query_count: int, size: int = 4) -> int:
    """The Section 6 bound ``R(4, ..., 4)`` with ``|Q|`` arguments.

    Question 46: a tournament of at least this size in a loop-free chase is
    impossible — each edge carries one of ``query_count`` valley-query
    colors, so a monochromatic 4-tournament (which forces a loop by
    Proposition 43) would exist.
    """
    if query_count <= 0:
        return 1
    return ramsey_upper_bound(*([size] * query_count))


def find_monochromatic_tournament(
    graph: nx.DiGraph,
    coloring: Callable[[Term, Term], Hashable],
    size: int,
) -> tuple[Hashable, set[Term]] | None:
    """Find a sub-tournament of ``size`` whose pairs share one color.

    ``coloring(u, v)`` assigns a color to the unordered pair ``{u, v}``
    (the caller decides which directed edge's color represents the pair —
    Proposition 41 colors each edge by an arbitrary witness query).
    Returns ``(color, vertices)`` or None.  Exact search over the
    monochromatic subgraphs; intended for corpus-scale tournaments.
    """
    undirected = undirected_view(graph)
    colors: dict[Hashable, nx.Graph] = {}
    for left, right in undirected.edges:
        color = coloring(left, right)
        colors.setdefault(color, nx.Graph()).add_edge(left, right)
    for color in sorted(colors, key=str):
        subgraph = colors[color]
        for clique in nx.find_cliques(subgraph):
            if len(clique) >= size:
                vertices = set(clique[:size])
                if is_tournament(graph, vertices):
                    return color, vertices
    return None


def verify_ramsey_on_tournament(
    graph: nx.DiGraph,
    coloring: Callable[[Term, Term], Hashable],
    color_count: int,
    size: int,
) -> bool:
    """Check Theorem 7's conclusion on a concrete colored tournament.

    When the tournament has at least ``ramsey_upper_bound(size, ...)``
    vertices (``color_count`` arguments), a monochromatic sub-tournament of
    ``size`` must exist; returns True when the promise holds (vacuously
    True below the bound).
    """
    bound = ramsey_upper_bound(*([size] * max(color_count, 1)))
    if graph.number_of_nodes() < bound:
        return True
    return find_monochromatic_tournament(graph, coloring, size) is not None


def transitive_subtournament(graph: nx.DiGraph) -> list[Term]:
    """Extract a large transitive (acyclic) sub-tournament greedily.

    Classical fact: every tournament on ``2^{n-1}`` vertices contains a
    transitive sub-tournament of size ``n``; the median-order greedy used
    here meets that bound on complete tournaments.
    """
    order: list[Term] = []
    for vertex in sorted(graph.nodes, key=str):
        position = 0
        while position < len(order) and graph.has_edge(order[position], vertex):
            position += 1
        candidate = order[:position] + [vertex] + order[position:]
        if _is_transitive_chain(graph, candidate):
            order = candidate
    return order


def _is_transitive_chain(graph: nx.DiGraph, chain: Sequence[Term]) -> bool:
    """True when every earlier element beats every later one."""
    for i, left in enumerate(chain):
        for right in chain[i + 1:]:
            if not graph.has_edge(left, right):
                return False
    return True
