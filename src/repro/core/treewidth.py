"""Treewidth analysis of chase prefixes.

The paper's introduction contrasts two decidability routes for OBQA:
bounded-treewidth chases (guarded rules [5]) and UCQ-rewritability (bdd).
This module measures the first on concrete chase prefixes:

* :func:`gaifman_graph` — the Gaifman graph of an instance (terms
  adjacent when they co-occur in an atom);
* :func:`treewidth_upper_bound` — min-degree heuristic upper bound
  (networkx approximation);
* :func:`guarded_chase_treewidth_report` — the empirical claim behind
  [5]: guarded chases have treewidth bounded by the maximal arity.
"""

from __future__ import annotations

from dataclasses import dataclass

import networkx as nx
from networkx.algorithms.approximation import treewidth_min_degree

from repro.chase.oblivious import oblivious_chase
from repro.logic.instances import Instance
from repro.rules.classes import is_guarded
from repro.rules.ruleset import RuleSet


def gaifman_graph(instance: Instance) -> nx.Graph:
    """Terms are vertices; co-occurrence in an atom is adjacency."""
    graph = nx.Graph()
    for atom in instance:
        terms = [t for t in atom.args]
        for term in terms:
            graph.add_node(term)
        for i in range(len(terms)):
            for j in range(i + 1, len(terms)):
                if terms[i] != terms[j]:
                    graph.add_edge(terms[i], terms[j])
    return graph


def treewidth_upper_bound(instance: Instance) -> int:
    """An upper bound on the treewidth of the Gaifman graph.

    Uses the min-degree elimination heuristic; exact on trees and small
    widths, an upper bound in general.  The empty graph has width -1 by
    convention; we clamp to 0.
    """
    graph = gaifman_graph(instance)
    if graph.number_of_nodes() == 0:
        return 0
    width, _ = treewidth_min_degree(graph)
    return max(width, 0)


@dataclass(frozen=True)
class TreewidthReport:
    """Treewidth of a chase prefix against the guarded-fragment bound."""

    guarded: bool
    max_arity: int
    levels: int
    width_bound: int

    @property
    def within_guarded_bound(self) -> bool:
        """[5]'s guarantee: guarded chases have width < max arity."""
        return (not self.guarded) or self.width_bound < max(
            self.max_arity, 1
        ) + 1


def guarded_chase_treewidth_report(
    rules: RuleSet,
    instance: Instance,
    max_levels: int = 4,
    max_atoms: int = 30_000,
) -> TreewidthReport:
    """Chase and measure: does the guarded bound hold on the prefix?"""
    result = oblivious_chase(
        instance, rules, max_levels=max_levels, max_atoms=max_atoms
    )
    return TreewidthReport(
        guarded=is_guarded(rules),
        max_arity=rules.signature().max_arity(),
        levels=result.levels_completed,
        width_bound=treewidth_upper_bound(result.instance),
    )
