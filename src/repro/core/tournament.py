"""Tournaments and the ``Tournaments_E`` / ``Loop_E`` queries (Section 3).

A *tournament* here follows the paper's inclusive definition: a set of
vertices such that for every two **distinct** vertices ``v, w`` at least
one of the edges ``v -> w`` or ``w -> v`` is present.  A tournament of
size ``k`` in the ``E``-graph is therefore a ``k``-clique of the
underlying undirected graph (loops not required).

``Tournaments_E`` asks for tournaments of every size; on chase prefixes we
measure the maximum tournament size per level and detect growth, which is
exactly how the paper uses the query (the ``K_n`` family in Section 5).
"""

from __future__ import annotations

from typing import Iterable, Sequence

import networkx as nx

from repro.logic.atoms import Atom
from repro.logic.instances import Instance
from repro.logic.predicates import EDGE, Predicate
from repro.logic.terms import Term
from repro.core.egraph import egraph, undirected_view


def is_tournament(graph: nx.DiGraph, vertices: Iterable[Term]) -> bool:
    """True when ``vertices`` form a tournament in ``graph`` (paper sense)."""
    vertex_list = list(vertices)
    for i, left in enumerate(vertex_list):
        for right in vertex_list[i + 1:]:
            if left == right:
                return False
            if not (
                graph.has_edge(left, right) or graph.has_edge(right, left)
            ):
                return False
    return True


def max_tournament(graph: nx.DiGraph) -> set[Term]:
    """Return a maximum-size tournament (max clique of the undirected view).

    Exact — exponential in the worst case, fine at corpus scale.
    """
    undirected = undirected_view(graph)
    if undirected.number_of_nodes() == 0:
        return set()
    best: set[Term] = set()
    for clique in nx.find_cliques(undirected):
        if len(clique) > len(best):
            best = set(clique)
    return best


def max_tournament_size(graph: nx.DiGraph) -> int:
    """The size of a maximum tournament (0 on the empty graph)."""
    return len(max_tournament(graph))


def find_tournament(graph: nx.DiGraph, size: int) -> set[Term] | None:
    """Return some tournament of exactly ``size`` vertices, or None."""
    if size == 0:
        return set()
    undirected = undirected_view(graph)
    for clique in nx.find_cliques(undirected):
        if len(clique) >= size:
            return set(clique[:size])
    return None


def entails_loop(
    instance: Instance, predicate: Predicate = EDGE
) -> bool:
    """``Loop_E``: ``∃x E(x, x)`` holds in the instance (Definition 10)."""
    return any(
        atom.args[0] == atom.args[1]
        for atom in instance.with_predicate(predicate)
    )


def tournament_growth(
    prefixes: Sequence[Instance], predicate: Predicate = EDGE
) -> list[int]:
    """Max tournament size per chase prefix — the ``Tournaments_E`` trend.

    A strictly growing tail is the finite-prefix witness of
    ``Ch ⊨ Tournaments_E`` (each prefix realizes the next ``K_n``).
    """
    return [
        max_tournament_size(egraph(prefix, predicate)) for prefix in prefixes
    ]


def is_growing(sizes: Sequence[int], window: int = 3) -> bool:
    """Heuristic: the last ``window`` values keep strictly increasing."""
    if len(sizes) < window + 1:
        return False
    tail = sizes[-(window + 1):]
    return all(tail[i] < tail[i + 1] for i in range(len(tail) - 1))


def tournament_edges(
    instance: Instance,
    vertices: Iterable[Term],
    predicate: Predicate = EDGE,
) -> list[Atom]:
    """The ``E``-atoms among ``vertices``, one per ordered pair present."""
    vertex_set = set(vertices)
    return sorted(
        atom
        for atom in instance.with_predicate(predicate)
        if atom.args[0] in vertex_set and atom.args[1] in vertex_set
        and atom.args[0] != atom.args[1]
    )
