"""Per-round chase trace events: phase timers, counts, JSONL sink.

One :class:`RunTrace` describes one :class:`~repro.engine.runner.ChaseRunner`
run as a header (``meta``), one structured record per round, and a final
summary.  The runner owns the lifecycle — it opens a
:class:`RoundRecorder` per round, the engine layers feed it through the
module-level *active-recorder stack* (:func:`active_round`), and the
runner closes the round with its counts and byte deltas.  When no trace
is attached the stack is empty and every instrumentation site reduces to
one ``active_round() is None`` check per round (or per claim, on traced
paths only), so untraced runs keep their exact fast paths.

Phase attribution
-----------------
Each round record carries six wall-clock phases (``time.perf_counter``):

``enumerate``
    Trigger enumeration (or the derivation sweep of a saturate round),
    minus any inner phase recorded during it.
``gate``
    Claim-gate evaluation: frontier-class dedup, satisfaction checks.
``fire``
    Head instantiation and firing-path machinery (task packing, worker
    fan-out, output merging), minus the inner gate/record/sync/probe
    time recorded during it.
``record``
    Provenance recording — the body of
    :meth:`~repro.chase.result.ChaseResult.record_round` /
    ``record_application``, excluding the lazy stream pulls it drives
    (those are firing work and stay in ``fire``).
``sync``
    Replica synchronization payload preparation in the persistent pool
    (per-round ``delta_since`` + wire encoding, seed included).
``probe``
    The restricted chase's sharded satisfaction probes
    (``WorkerPool.probe_round``), minus the sync time nested inside.

The *outer* phases (``enumerate``, ``fire``, ``probe``) are measured
disjointly by :meth:`RoundRecorder.outer_phase`: elapsed wall-clock minus
whatever inner phase time accumulated during the block, clamped at zero —
so the six phases of a record never double-count one second of work.

Trace records deliberately separate deterministic fields (counts, plan,
shard weights, byte deltas — bit-stable for a given engine
configuration, and counts/plan across the whole engine × workers ×
shards equivalence matrix) from wall-clock fields (the phase timers),
mirroring the byte-vs-wall-clock split of the ``BENCH_*.json`` artifacts.

JSONL layout (``RunTrace.to_jsonl``): one ``{"type": "run"}`` header
line with the schema version and run meta, one ``{"type": "round"}``
line per round, and a ``{"type": "summary"}`` footer once the run
finished.  ``tools/trace_summary.py`` renders the phase breakdown table
from such a file.
"""

from __future__ import annotations

import json
import pathlib
import time
from contextlib import contextmanager
from typing import Iterator

#: Bumped when the shape of run/round/summary records changes.
TRACE_SCHEMA_VERSION = 1

#: The six phases of every round record, in reporting order.
PHASES = ("enumerate", "gate", "fire", "record", "sync", "probe")

#: The active-recorder stack: the engine layers report phase time to its
#: top.  A list (not a single slot) so nested runs — a chase started from
#: inside another run's round — each see their own recorder.
_ACTIVE: list["RoundRecorder"] = []


def active_round() -> "RoundRecorder | None":
    """The recorder of the innermost round being traced, if any.

    The one hook the engine layers call; when no trace is attached it
    costs a truthiness check on an empty list.
    """
    return _ACTIVE[-1] if _ACTIVE else None


class RoundRecorder:
    """Accumulates one round's phase timers and routing facts."""

    __slots__ = ("number", "phases", "plan", "delta_atoms", "shard_weights")

    def __init__(self, number: int):
        self.number = number
        self.phases: dict[str, float] = dict.fromkeys(PHASES, 0.0)
        #: "batched" | "interleaved" | "split" | "derive" (set by the runner).
        self.plan: str | None = None
        #: Size of the round's enumeration delta (None on the naive engine).
        self.delta_atoms: int | None = None
        #: Per-shard wire byte weights routed this round (parallel engines).
        self.shard_weights: tuple[int, ...] | None = None

    def add_phase(self, name: str, seconds: float) -> None:
        """Add ``seconds`` to a phase timer (negative clamps to zero)."""
        if seconds > 0.0:
            self.phases[name] += seconds

    @contextmanager
    def outer_phase(self, name: str) -> Iterator[None]:
        """Time a block, excluding inner phase time recorded during it.

        ``enumerate`` wraps the enumeration (which nests ``sync``),
        ``fire`` wraps the whole firing path (which nests ``gate``,
        ``record``, ``sync`` and ``probe``), ``probe`` wraps the worker
        probe fan-out (which nests ``sync``).  The attributed time is
        ``elapsed - inner_delta``, clamped at zero, so the six phases
        stay disjoint.
        """
        perf = time.perf_counter
        inner_before = sum(self.phases.values())
        start = perf()
        try:
            yield
        finally:
            elapsed = perf() - start
            inner = sum(self.phases.values()) - inner_before
            self.add_phase(name, elapsed - inner)


class RunTrace:
    """One run's trace: meta header, round records, summary footer."""

    def __init__(self, meta: dict | None = None):
        self.schema_version = TRACE_SCHEMA_VERSION
        self.meta: dict = dict(meta or {})
        self.rounds: list[dict] = []
        self.summary: dict | None = None

    # ------------------------------------------------------------------
    # Recording (driven by ChaseRunner)
    # ------------------------------------------------------------------

    def begin_run(self, **meta) -> None:
        """Merge the runner's engine/budget facts into the header."""
        self.meta.update(meta)

    def begin_round(self, number: int) -> RoundRecorder:
        """Open round ``number`` and make its recorder the active one."""
        recorder = RoundRecorder(number)
        _ACTIVE.append(recorder)
        return recorder

    def end_round(self, recorder: RoundRecorder, **fields) -> dict:
        """Close a round: pop the recorder, append its record.

        ``fields`` carries the runner-side facts (trigger/application
        counts, new-atom counts, transport and worker-time deltas).
        """
        if recorder in _ACTIVE:  # tolerate exceptional unwinds
            _ACTIVE.remove(recorder)
        record: dict = {
            "type": "round",
            "round": recorder.number,
            "plan": recorder.plan,
            "phases": dict(recorder.phases),
            "delta_atoms": recorder.delta_atoms,
            "shard_weights": (
                list(recorder.shard_weights)
                if recorder.shard_weights is not None
                else None
            ),
        }
        record.update(fields)
        self.rounds.append(record)
        return record

    def finish_run(self, **summary) -> None:
        self.summary = {"type": "summary", **summary}

    # ------------------------------------------------------------------
    # Sinks
    # ------------------------------------------------------------------

    def _header(self) -> dict:
        return {
            "type": "run",
            "schema_version": self.schema_version,
            "meta": self.meta,
        }

    def to_jsonl(self, path: str | pathlib.Path) -> pathlib.Path:
        """Write the trace as JSON Lines; returns the written path."""
        path = pathlib.Path(path)
        if path.parent != pathlib.Path("."):
            path.parent.mkdir(parents=True, exist_ok=True)
        lines = [json.dumps(self._header(), sort_keys=True)]
        lines.extend(json.dumps(record, sort_keys=True) for record in self.rounds)
        if self.summary is not None:
            lines.append(json.dumps(self.summary, sort_keys=True))
        path.write_text("\n".join(lines) + "\n")
        return path

    @classmethod
    def from_jsonl(cls, path: str | pathlib.Path) -> "RunTrace":
        """Read a trace back from :meth:`to_jsonl` output."""
        trace = cls()
        for line in pathlib.Path(path).read_text().splitlines():
            if not line.strip():
                continue
            record = json.loads(line)
            kind = record.get("type")
            if kind == "run":
                trace.schema_version = record.get(
                    "schema_version", TRACE_SCHEMA_VERSION
                )
                trace.meta = dict(record.get("meta", {}))
            elif kind == "round":
                trace.rounds.append(record)
            elif kind == "summary":
                trace.summary = record
        return trace

    def summary_table(self) -> str:
        """A human phase-time breakdown: one row per round plus totals."""
        from repro.io.text import format_table

        headers = ["round", "plan", "triggers", "applied", "new"] + [
            f"{phase} ms" for phase in PHASES
        ]
        rows: list[tuple] = []
        totals = dict.fromkeys(PHASES, 0.0)
        applied_total = 0
        new_total = 0
        for record in self.rounds:
            phases = record.get("phases", {})
            for phase in PHASES:
                totals[phase] += phases.get(phase, 0.0)
            applied = record.get("applied")
            new_atoms = record.get("new_atoms")
            applied_total += applied or 0
            new_total += new_atoms or 0
            rows.append(
                (
                    record.get("round"),
                    record.get("plan") or "-",
                    _count(record.get("triggers")),
                    _count(applied),
                    _count(new_atoms),
                    *(f"{phases.get(phase, 0.0) * 1e3:.3f}" for phase in PHASES),
                )
            )
        rows.append(
            (
                "total",
                "-",
                "-",
                applied_total,
                new_total,
                *(f"{totals[phase] * 1e3:.3f}" for phase in PHASES),
            )
        )
        title = " ".join(
            str(self.meta[key])
            for key in ("variant", "engine")
            if key in self.meta
        )
        return format_table(headers, rows, title=title or "chase trace")


def _count(value) -> object:
    return "-" if value is None else value
