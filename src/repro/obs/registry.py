"""The scoped metrics registry: named stats groups, snapshot deltas.

The library's counters used to be three disconnected module globals
(``MATCHER_STATS``, ``INSTANTIATION_STATS``, ``TRANSPORT_STATS``) that
accumulate forever across runs in one process — fine for a single
benchmark, wrong for sequential runs, tests, or a future long-lived
service.  A :class:`MetricsRegistry` unifies them behind one surface:

* every group is any object with ``snapshot() -> dict`` and ``reset()``
  (the three existing stats classes already qualify — the registry does
  not replace them, it *names* them);
* :meth:`MetricsRegistry.snapshot` returns the JSON-able
  ``{group: counters}`` state of everything at once;
* :meth:`MetricsRegistry.reset_all` zeroes every group — the cross-run
  leakage fix (see the autouse fixture in ``tests/conftest.py``);
* :meth:`MetricsRegistry.collect` opens a :class:`CollectScope` whose
  ``delta`` is the recursive numeric difference between the registry
  state at scope exit and at scope entry — per-run and per-round
  attribution without ever resetting the underlying counters, so nested
  and concurrent-in-one-thread scopes compose (each scope diffs its own
  pair of snapshots).

The process-wide default registry (with the three globals registered
under ``"matcher"``, ``"instantiation"`` and ``"transport"``) lives in
:func:`repro.obs.default_registry`.
"""

from __future__ import annotations

from typing import Any, Protocol, runtime_checkable


@runtime_checkable
class StatsGroup(Protocol):
    """What the registry requires of a group: snapshot + reset."""

    def snapshot(self) -> dict: ...

    def reset(self) -> None: ...


def diff_snapshots(before: dict, after: dict) -> dict:
    """The recursive numeric delta ``after - before`` of two snapshots.

    Numbers subtract (a key missing from ``before`` counts as 0, so a
    counter group that appeared mid-scope still diffs cleanly), nested
    dicts recurse, and non-numeric leaves pass through as their ``after``
    value.  Keys that vanished between the snapshots are dropped — a
    delta describes what the scope *added*.
    """
    delta: dict = {}
    for key, after_value in after.items():
        before_value = before.get(key)
        if isinstance(after_value, dict):
            delta[key] = diff_snapshots(
                before_value if isinstance(before_value, dict) else {},
                after_value,
            )
        elif isinstance(after_value, (int, float)) and not isinstance(
            after_value, bool
        ):
            base = (
                before_value
                if isinstance(before_value, (int, float))
                and not isinstance(before_value, bool)
                else 0
            )
            delta[key] = after_value - base
        else:
            delta[key] = after_value
    return delta


class CollectScope:
    """One delta-collection scope over a registry.

    Context manager: entry snapshots the registry, exit computes
    :attr:`delta`.  Scopes never mutate the underlying counters, so they
    nest freely — an inner run's scope sees only what happened inside it,
    and the outer scope still sees the total.
    """

    __slots__ = ("_registry", "_before", "delta")

    def __init__(self, registry: "MetricsRegistry"):
        self._registry = registry
        self._before: dict | None = None
        #: The ``{group: counters}`` delta; None until the scope exits.
        self.delta: dict | None = None

    def __enter__(self) -> "CollectScope":
        self._before = self._registry.snapshot()
        self.delta = None
        return self

    def __exit__(self, *exc_info) -> None:
        self.delta = diff_snapshots(self._before or {}, self._registry.snapshot())
        self._before = None


class MetricsRegistry:
    """Named counter/timer groups with one snapshot/reset/collect surface."""

    def __init__(self):
        self._groups: dict[str, Any] = {}

    def register(self, name: str, group: Any) -> Any:
        """Register ``group`` (anything with ``snapshot()``/``reset()``).

        Re-registering the same object under the same name is a no-op;
        a *different* object under a taken name raises — silently
        swapping a counter out from under running scopes would corrupt
        their deltas.
        """
        for method in ("snapshot", "reset"):
            if not callable(getattr(group, method, None)):
                raise TypeError(
                    f"metrics group {name!r} must define {method}(), "
                    f"got {type(group).__name__}"
                )
        existing = self._groups.get(name)
        if existing is not None and existing is not group:
            raise ValueError(f"metrics group {name!r} is already registered")
        self._groups[name] = group
        return group

    def group(self, name: str) -> Any:
        try:
            return self._groups[name]
        except KeyError:
            raise KeyError(
                f"no metrics group {name!r}; registered: {self.names()}"
            ) from None

    def names(self) -> tuple[str, ...]:
        return tuple(self._groups)

    def snapshot(self) -> dict[str, dict]:
        """The JSON-able ``{group: counters}`` state of every group."""
        return {name: group.snapshot() for name, group in self._groups.items()}

    def reset_all(self) -> None:
        """Zero every registered group (the cross-run leakage fix)."""
        for group in self._groups.values():
            group.reset()

    def collect(self) -> CollectScope:
        """Open a delta-collection scope (use as a context manager)."""
        return CollectScope(self)
