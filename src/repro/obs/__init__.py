"""``repro.obs`` — unified chase telemetry.

Three pieces (see the "Observability" section of
``src/repro/engine/README.md`` for the walk-through):

* :class:`~repro.obs.registry.MetricsRegistry` — named counter groups
  with one ``snapshot()``/``reset_all()``/``collect()`` surface.  The
  process-wide :func:`default_registry` exposes the library's stats
  globals as its groups (``matcher``, ``instantiation``, ``transport``,
  ``serving``) — the globals stay importable from their home modules
  for back-compat; the registry only names them.
* :class:`~repro.obs.trace.RunTrace` / :class:`~repro.obs.trace.RoundRecorder`
  — per-round structured trace records with disjoint phase timers,
  emitted by :class:`~repro.engine.runner.ChaseRunner` when a trace is
  attached, written as JSONL and summarized by
  ``tools/trace_summary.py``.
* Worker-side decode/execute/encode timings shipped in the wire reply
  envelope (:func:`repro.engine.wire.pack_reply`) and aggregated per
  command into ``TRANSPORT_STATS.worker_seconds``.

This package imports only the standard library at module level;
:func:`default_registry` pulls the stats globals in lazily, so ``obs``
is importable from every layer (including :mod:`repro.chase.result` and
the engine modules) without cycles.
"""

from __future__ import annotations

from repro.obs.registry import (
    CollectScope,
    MetricsRegistry,
    StatsGroup,
    diff_snapshots,
)
from repro.obs.trace import (
    PHASES,
    TRACE_SCHEMA_VERSION,
    RoundRecorder,
    RunTrace,
    active_round,
)

__all__ = [
    "CollectScope",
    "MetricsRegistry",
    "StatsGroup",
    "PHASES",
    "TRACE_SCHEMA_VERSION",
    "RoundRecorder",
    "RunTrace",
    "active_round",
    "default_registry",
    "diff_snapshots",
    "reset_all",
]

_DEFAULT_REGISTRY: MetricsRegistry | None = None


def default_registry() -> MetricsRegistry:
    """The process-wide registry, with the library's stats globals named.

    Built lazily on first use (the stats globals live in modules above
    and below this package in the import DAG); every later call returns
    the same instance, so scopes and resets observe one shared state.
    """
    global _DEFAULT_REGISTRY
    if _DEFAULT_REGISTRY is None:
        from repro.engine.workers import TRANSPORT_STATS
        from repro.logic.homomorphisms import MATCHER_STATS
        from repro.rules.rule import INSTANTIATION_STATS
        from repro.serving.stats import SERVING_STATS

        registry = MetricsRegistry()
        registry.register("matcher", MATCHER_STATS)
        registry.register("instantiation", INSTANTIATION_STATS)
        registry.register("transport", TRANSPORT_STATS)
        registry.register("serving", SERVING_STATS)
        _DEFAULT_REGISTRY = registry
    return _DEFAULT_REGISTRY


def reset_all() -> None:
    """Zero every group of the default registry (cross-run leakage fix)."""
    default_registry().reset_all()
