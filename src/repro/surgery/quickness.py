"""Quickness (Definition 26) — an empirical checker.

A rule set ``R'`` is quick iff for every instance ``I`` and every atom
``β`` of ``Ch(I, R')``, if all frontier terms of ``β`` appear in
``adom(I)`` then ``β ∈ Ch_1(I, R')``.

The universal quantification over instances is undecidable to check
directly; :func:`quickness_violations` verifies the property on a concrete
instance and chase depth, which is how the EXP-4 experiments certify the
output of the ``rew`` surgery (Lemma 32) on the corpus.  Frontier terms of
an atom are recovered from chase provenance: for an atom created by
trigger ``⟨ρ, h⟩`` they are ``h(fr(ρ))`` for non-Datalog ``ρ`` and all of
the atom's terms for Datalog ``ρ``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.chase.oblivious import oblivious_chase
from repro.chase.result import ChaseResult
from repro.logic.atoms import Atom
from repro.logic.homomorphisms import find_homomorphism
from repro.logic.instances import Instance
from repro.logic.terms import Term
from repro.rules.ruleset import RuleSet


@dataclass(frozen=True)
class QuicknessViolation:
    """An atom contradicting Definition 26 on the checked instance."""

    atom: Atom
    frontier_terms: frozenset[Term]
    level: int


def _atom_creators(result: ChaseResult) -> dict[Atom, "object"]:
    """Map each chase atom to the first record that produced it."""
    creators: dict[Atom, object] = {}
    for record in result.records():
        for atom in record.output_atoms:
            creators.setdefault(atom, record)
    return creators


def quickness_violations(
    rules: RuleSet,
    instance: Instance,
    max_levels: int = 4,
) -> list[QuicknessViolation]:
    """Check Definition 26 on ``instance`` up to ``max_levels`` chase levels.

    For each atom whose frontier terms all lie in ``adom(I)``, require an
    atom of ``Ch_1(I, R')`` matching it with the frontier terms fixed (the
    non-frontier nulls may be renamed — the oblivious chase invents
    different null names at level one).
    """
    result = oblivious_chase(instance, rules, max_levels=max_levels)
    initial_domain = instance.active_domain()
    level_one = result.prefix(1)
    creators = _atom_creators(result)
    violations: list[QuicknessViolation] = []

    for atom in result.instance:
        level = result.atom_level(atom)
        if level <= 1:
            continue
        record = creators.get(atom)
        if record is None:
            continue
        rule = record.trigger.rule
        if rule.is_datalog:
            frontier_terms = set(atom.args)
        else:
            # Section 2.2: the frontier of a chase term created by ⟨ρ, h⟩
            # is h(fr(ρ)); an atom's frontier terms are its creator's.
            frontier_terms = record.frontier_terms()
        if not frontier_terms <= initial_domain:
            continue
        seed = {
            t: t
            for t in frontier_terms & set(atom.args)
            if not t.is_constant
        }
        witness = find_homomorphism([atom], level_one, seed=seed)
        if witness is None:
            violations.append(
                QuicknessViolation(
                    atom=atom,
                    frontier_terms=frozenset(frontier_terms),
                    level=level,
                )
            )
    return violations


def is_quick_on(
    rules: RuleSet, instance: Instance, max_levels: int = 4
) -> bool:
    """True when no quickness violation is found on ``instance``."""
    return not quickness_violations(rules, instance, max_levels=max_levels)
