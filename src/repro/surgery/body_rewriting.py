"""Body rewriting: the ``rew`` surgery of Section 4.4 (Definition 29).

For every rule ``ρ = B(x̄,ȳ) → ∃z̄ H(ȳ,z̄)`` of ``S``, each disjunct
``q(x̄',ȳ')`` of the UCQ rewriting of ``∃x̄ B(x̄,ȳ)`` against ``S``
contributes the rule ``q(x̄',ȳ') → ∃z̄ H(ȳ',z̄)``; ``rew(S)`` is ``S``
plus all these rules.  By Lemma 30 the chase is preserved up to
homomorphic equivalence, Lemma 31 shows ``rew`` preserves
UCQ-rewritability / predicate-uniqueness / forward-existentiality, and
Lemma 32 shows ``rew(S)`` is *quick* (Definition 26) — the last missing
regality ingredient.
"""

from __future__ import annotations

from repro.errors import RewritingBudgetExceeded
from repro.logic.substitutions import Substitution
from repro.queries.cq import ConjunctiveQuery
from repro.rewriting.rewriter import DEFAULT_MAX_DEPTH, rewrite
from repro.rules.rule import Rule
from repro.rules.ruleset import RuleSet


def body_rewriting_of_rule(
    rule: Rule,
    rules: RuleSet,
    max_depth: int = DEFAULT_MAX_DEPTH,
    strict: bool = True,
) -> list[Rule]:
    """``rew(ρ, S)``: one new rule per disjunct of the body's rewriting.

    The body is rewritten as a CQ whose answer variables are the frontier
    of ``ρ`` (the head must stay expressible); a disjunct whose answer
    tuple identifies frontier variables yields a head with the same
    identification.
    """
    frontier = tuple(sorted(rule.frontier(), key=lambda v: v.name))
    body_query = ConjunctiveQuery(rule.body, frontier)
    result = rewrite(body_query, rules, max_depth=max_depth, strict=strict)
    if not result.complete and strict:
        raise RewritingBudgetExceeded(
            f"body of {rule} has no complete rewriting within depth "
            f"{max_depth}; is the rule set bdd?",
            partial_rewriting=result.ucq,
            depth=result.depth,
        )
    new_rules: list[Rule] = []
    for disjunct in result.ucq:
        head_map = {
            original: specialized
            for original, specialized in zip(frontier, disjunct.answers)
            if original != specialized
        }
        head = Substitution(head_map).apply_atoms(rule.head)
        new_rules.append(
            Rule(disjunct.atoms, head, label=f"rew({rule.label})")
        )
    return new_rules


def body_rewrite(
    rules: RuleSet,
    max_depth: int = DEFAULT_MAX_DEPTH,
    strict: bool = True,
) -> RuleSet:
    """``rew(S) = S ∪ ⋃_{ρ ∈ S} rew(ρ, S)`` (Definition 29).

    Requires ``S`` to be bdd in practice: each body rewriting must reach
    its fixpoint within ``max_depth``.
    """
    output: list[Rule] = list(rules)
    for rule in rules:
        output.extend(
            body_rewriting_of_rule(
                rule, rules, max_depth=max_depth, strict=strict
            )
        )
    return RuleSet(
        output, name=f"rew({rules.name})" if rules.name else "rew"
    )
