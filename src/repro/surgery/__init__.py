"""Rule-set surgeries of Section 4 and the regal pipeline (Def 27)."""

from repro.surgery.body_rewriting import body_rewrite, body_rewriting_of_rule
from repro.surgery.instance_encoding import (
    encode_instance,
    encoded_chase_equivalent,
    top_rule,
)
from repro.surgery.quickness import (
    QuicknessViolation,
    is_quick_on,
    quickness_violations,
)
from repro.surgery.regal import (
    RegalPipelineResult,
    RegalityReport,
    regal_pipeline,
    regality_report,
)
from repro.surgery.reification import (
    projection_rules,
    reification_chase_equivalent,
    reify_atom,
    reify_instance,
    reify_predicate,
    reify_query,
    reify_rule,
    reify_rules,
    reify_signature,
)
from repro.surgery.streamline import (
    StreamlinedRule,
    streamline,
    streamline_chase_equivalent,
    streamline_rule,
    streamline_triples,
)

__all__ = [
    "QuicknessViolation",
    "RegalPipelineResult",
    "RegalityReport",
    "StreamlinedRule",
    "body_rewrite",
    "body_rewriting_of_rule",
    "encode_instance",
    "encoded_chase_equivalent",
    "is_quick_on",
    "projection_rules",
    "quickness_violations",
    "reification_chase_equivalent",
    "regal_pipeline",
    "regality_report",
    "reify_atom",
    "reify_instance",
    "reify_predicate",
    "reify_query",
    "reify_rule",
    "reify_rules",
    "reify_signature",
    "streamline",
    "streamline_chase_equivalent",
    "streamline_rule",
    "streamline_triples",
    "top_rule",
]
