"""Reification: reducing arbitrary signatures to binary ones (Section 4.2).

For a predicate ``A`` of arity ``n > 2``, ``reify(A)`` is a set of binary
predicates ``A_1, ..., A_n``; an atom ``A(x_1, ..., x_n)`` becomes the set
``{A_i(x_i, x_α) | 1 ≤ i ≤ n}`` where ``x_α`` is a fresh term naming the
atom.  Atoms of arity at most two are unchanged.  ``reify`` lifts to
instances (fresh nulls), rules (fresh existential variables for head
atoms, fresh universal variables for body atoms) and queries (fresh
existential variables).

Lemma 19 (from Feller et al. [14]):
``Ch(reify(J), reify(S)) ↔ reify(Ch(J, S))``, and Lemma 20 shows
reification preserves UCQ-rewritability.
"""

from __future__ import annotations

from repro.logic.atoms import Atom
from repro.logic.instances import Instance
from repro.logic.predicates import Predicate
from repro.logic.signatures import Signature
from repro.logic.terms import FreshSupply, Term, Variable
from repro.queries.cq import ConjunctiveQuery
from repro.rules.rule import Rule
from repro.rules.ruleset import RuleSet


def reify_predicate(predicate: Predicate) -> list[Predicate]:
    """``reify(A) = {A_1, ..., A_n}`` for ``n = ar(A) > 2``; identity below."""
    if predicate.arity <= 2:
        return [predicate]
    return [
        Predicate(f"{predicate.name}__{index}", 2)
        for index in range(1, predicate.arity + 1)
    ]


def reify_signature(signature: Signature) -> Signature:
    """``reify(S) = S_{≤2} ⊎ ⋃_{A ∈ S_{≥3}} reify(A)``."""
    predicates = list(signature.at_most_binary())
    for predicate in signature.higher_arity():
        predicates.extend(reify_predicate(predicate))
    return Signature(predicates)


def reify_atom(atom: Atom, atom_name: Term) -> list[Atom]:
    """Reify one atom, using ``atom_name`` as the fresh ``x_α``."""
    if atom.predicate.arity <= 2:
        return [atom]
    return [
        Atom(pred, (arg, atom_name))
        for pred, arg in zip(reify_predicate(atom.predicate), atom.args)
    ]


def reify_instance(
    instance: Instance, supply: FreshSupply | None = None
) -> Instance:
    """Reify an instance; each wide atom gets a fresh null as its name."""
    supply = supply or FreshSupply(prefix="_rf")
    atoms: list[Atom] = []
    for atom in instance.sorted_atoms():
        if atom.predicate.arity <= 2:
            atoms.append(atom)
        else:
            atoms.extend(reify_atom(atom, supply.null()))
    return Instance(atoms)


def reify_rule(rule: Rule, supply: FreshSupply | None = None) -> Rule:
    """Reify a rule.

    Wide body atoms get fresh *universal* name variables (they join the
    body); wide head atoms get fresh *existential* name variables (they are
    invented alongside the head's own existentials).
    """
    supply = supply or FreshSupply(prefix="_rf")
    body: list[Atom] = []
    for atom in sorted(rule.body):
        body.extend(reify_atom(atom, supply.variable()))
    head: list[Atom] = []
    for atom in sorted(rule.head):
        head.extend(reify_atom(atom, supply.variable()))
    return Rule(body, head, label=f"reify({rule.label})" if rule.label else "")


def reify_rules(rules: RuleSet, supply: FreshSupply | None = None) -> RuleSet:
    """Reify every rule of the set."""
    supply = supply or FreshSupply(prefix="_rf")
    return RuleSet(
        (reify_rule(rule, supply) for rule in rules),
        name=f"reify({rules.name})" if rules.name else "reified",
    )


def reify_query(
    query: ConjunctiveQuery, supply: FreshSupply | None = None
) -> ConjunctiveQuery:
    """Reify a CQ; name variables are existential."""
    supply = supply or FreshSupply(prefix="_rf")
    atoms: list[Atom] = []
    for atom in sorted(query.atoms):
        atoms.extend(reify_atom(atom, supply.variable()))
    return ConjunctiveQuery(atoms, query.answers)


def projection_rules(signature: Signature) -> RuleSet:
    """Lemma 20's helper rules ``ρ_A : A(x̄) → ∃z ⋀ A_i(x_i, z)``.

    Adding these to a rule set lets the original signature's chase *project*
    onto the reified one; they fire at most once per atom and trigger no
    original rule, so UCQ-rewritability is preserved.
    """
    rules = []
    for predicate in signature.higher_arity():
        args = [Variable(f"x{i}") for i in range(1, predicate.arity + 1)]
        name_var = Variable("z")
        body = [Atom(predicate, args)]
        head = [
            Atom(reified, (arg, name_var))
            for reified, arg in zip(reify_predicate(predicate), args)
        ]
        rules.append(Rule(body, head, label=f"project_{predicate.name}"))
    return RuleSet(rules, name="projection")


def reification_chase_equivalent(
    rules: RuleSet,
    instance: Instance,
    max_levels: int = 4,
) -> bool:
    """Check Lemma 19 on a chase prefix:
    ``Ch(reify(J), reify(S)) ↔ reify(Ch(J, S))``."""
    from repro.chase.oblivious import oblivious_chase
    from repro.logic.homomorphisms import homomorphically_equivalent

    left = oblivious_chase(
        reify_instance(instance), reify_rules(rules), max_levels=max_levels
    )
    right_raw = oblivious_chase(instance, rules, max_levels=max_levels)
    right = reify_instance(right_raw.instance)
    return homomorphically_equivalent(left.instance, right)
