"""Encoding instances into rule sets: the ``⊤ → J`` surgery (Section 4.1).

Definition 12 turns an instance ``J`` into the single rule
``⊤ → ∃f(adom(J)) ⋀ A(f(t̄))`` with ``f`` a bijective renaming of terms to
fresh variables.  Corollary 15 then gives
``Ch(J, S) ↔ Ch({⊤}, S ∪ {⊤ → J})`` and Observation 16 shows the surgery
preserves UCQ-rewritability — together reducing Theorem 1 to instance-free
chases (Lemma 11).
"""

from __future__ import annotations

from repro.logic.atoms import TOP_ATOM
from repro.logic.instances import Instance
from repro.logic.terms import FreshSupply, Term, Variable
from repro.rules.rule import Rule
from repro.rules.ruleset import RuleSet


def top_rule(instance: Instance, supply: FreshSupply | None = None) -> Rule:
    """Build the rule ``⊤ → J`` of Definition 12.

    Every term of ``J`` (constants included — the paper's instances are
    variable-only, so the renaming is total) becomes a fresh existential
    variable.  The nullary ``⊤`` is dropped from the head: it is present in
    every instance by convention.
    """
    supply = supply or FreshSupply(prefix="_enc")
    renaming: dict[Term, Variable] = {
        term: supply.variable() for term in sorted(instance.active_domain())
    }
    head_atoms = [
        atom.apply(renaming) for atom in instance.sorted_atoms()
        if atom != TOP_ATOM
    ]
    if not head_atoms:
        raise ValueError("cannot encode an instance with no non-top atoms")
    return Rule([TOP_ATOM], head_atoms, label="top->J")


def encode_instance(rules: RuleSet, instance: Instance) -> RuleSet:
    """Return ``R ∪ {⊤ → I}`` — the rule set of Lemma 11's counterexample
    construction."""
    return rules.with_rule(top_rule(instance)).renamed(
        f"{rules.name}+topJ" if rules.name else "topJ"
    )


def encoded_chase_equivalent(
    rules: RuleSet,
    instance: Instance,
    max_levels: int = 5,
) -> bool:
    """Check Corollary 15 on a chase prefix:

    ``Ch(J, S) ↔ Ch({⊤}, S ∪ {⊤ → J})`` (restricted to the original
    signature, which here is all of it).  Used by the EXP-3 experiments.
    """
    from repro.chase.oblivious import chase_from_top, oblivious_chase
    from repro.logic.homomorphisms import homomorphically_equivalent
    from repro.logic.instances import constants_to_nulls

    direct = oblivious_chase(instance, rules, max_levels=max_levels)
    encoded = chase_from_top(
        encode_instance(rules, instance), max_levels=max_levels + 1
    )
    # Definition 12 renames the instance's terms to fresh (anonymous)
    # variables, so the comparison treats the original constants as nulls.
    return homomorphically_equivalent(
        constants_to_nulls(direct.instance), encoded.instance
    )
