"""Streamlining heads: the ``▽`` surgery of Section 4.3.

Every non-Datalog rule ``ρ = B(x̄,ȳ) → ∃z̄ H(ȳ,z̄)`` over a binary
signature is split into three rules through fresh predicates:

* ``ρ_init : B → ∃w  A^ρ_0(w) ∧ ⋀_{y ∈ ȳ} A^ρ_y(y, w)``
* ``ρ_∃    : A^ρ_0(w) ∧ ⋀ A^ρ_y(y, w) → ∃z̄ ⋀_{y' ∈ ȳ∪{w}} ⋀_{z ∈ z̄} B^ρ_{y',z}(y', z)``
* ``ρ_DL   : ⋀_{y',z} B^ρ_{y',z}(y', z) → H(ȳ, z̄)``

``▽(S)`` is forward-existential and predicate-unique (Lemma 25) and its
chase restricted to the original signature is homomorphically equivalent
to the original chase (Lemma 24).  Datalog rules need no streamlining
(Definitions 21/22 only constrain non-Datalog rules) and are kept as is.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.logic.atoms import Atom
from repro.logic.instances import Instance
from repro.logic.predicates import Predicate
from repro.logic.signatures import Signature
from repro.logic.terms import Variable
from repro.rules.rule import Rule
from repro.rules.ruleset import RuleSet


@dataclass(frozen=True)
class StreamlinedRule:
    """The triple produced for one source rule."""

    source: Rule
    init: Rule
    existential: Rule
    datalog: Rule


def _fresh_w(rule: Rule) -> Variable:
    """A variable named ``w`` (or ``w_0``...) unused in the rule."""
    used = {v.name for v in rule.variables()}
    name = "w"
    index = 0
    while name in used:
        name = f"w_{index}"
        index += 1
    return Variable(name)


def streamline_rule(rule: Rule, tag: str) -> StreamlinedRule:
    """Split one non-Datalog rule into ``ρ_init``, ``ρ_∃`` and ``ρ_DL``.

    ``tag`` disambiguates the fresh ``A``/``B`` predicates across rules.
    """
    if rule.is_datalog:
        raise ValueError("streamline_rule expects a non-Datalog rule")
    frontier = sorted(rule.frontier(), key=lambda v: v.name)
    existentials = sorted(rule.existential_variables(), key=lambda v: v.name)
    w = _fresh_w(rule)

    a_zero = Predicate(f"A_{tag}_0", 1)
    a_of = {y: Predicate(f"A_{tag}_{y.name}", 2) for y in frontier}
    stage_one_atoms = [Atom(a_zero, (w,))] + [
        Atom(a_of[y], (y, w)) for y in frontier
    ]

    rule_init = Rule(rule.body, stage_one_atoms, label=f"{tag}_init")

    anchors = frontier + [w]
    b_of = {
        (anchor, z): Predicate(f"B_{tag}_{anchor.name}_{z.name}", 2)
        for anchor in anchors
        for z in existentials
    }
    stage_two_atoms = [
        Atom(b_of[(anchor, z)], (anchor, z))
        for anchor in anchors
        for z in existentials
    ]
    rule_exists = Rule(stage_one_atoms, stage_two_atoms, label=f"{tag}_ex")
    rule_datalog = Rule(stage_two_atoms, rule.head, label=f"{tag}_dl")
    return StreamlinedRule(
        source=rule,
        init=rule_init,
        existential=rule_exists,
        datalog=rule_datalog,
    )


def streamline(rules: RuleSet) -> RuleSet:
    """``▽(S)``: streamline every non-Datalog rule; keep Datalog rules."""
    output: list[Rule] = []
    for index, rule in enumerate(rules):
        if rule.is_datalog:
            output.append(rule)
            continue
        triple = streamline_rule(rule, tag=rule.label or f"r{index}")
        output.extend([triple.init, triple.existential, triple.datalog])
    return RuleSet(
        output, name=f"streamline({rules.name})" if rules.name else "streamlined"
    )


def streamline_triples(rules: RuleSet) -> list[StreamlinedRule]:
    """The per-rule triples, for inspection and the Lemma 24/25 experiments."""
    triples = []
    for index, rule in enumerate(rules):
        if not rule.is_datalog:
            triples.append(streamline_rule(rule, tag=rule.label or f"r{index}"))
    return triples


def streamline_chase_equivalent(
    rules: RuleSet,
    instance: Instance,
    max_levels: int = 4,
) -> bool:
    """Check Lemma 24 on a chase prefix:

    ``Ch(J, S)`` and ``Ch(J, ▽(S))`` restricted to the signature of ``S``
    are homomorphically equivalent.  Each original level takes up to three
    streamlined levels (Lemma 48), so the streamlined side gets a 3x budget.
    """
    from repro.chase.oblivious import oblivious_chase
    from repro.logic.homomorphisms import homomorphically_equivalent

    original_signature = rules.signature() | Signature(instance.signature())
    direct = oblivious_chase(instance, rules, max_levels=max_levels)
    streamlined = oblivious_chase(
        instance, streamline(rules), max_levels=3 * max_levels
    )
    return homomorphically_equivalent(
        direct.instance,
        streamlined.instance.restrict_to(original_signature),
    )
