"""The regal pipeline: composing the Section 4 surgeries (Definition 27).

A rule set is *regal* when it is UCQ-rewritable, quick, forward-existential
and predicate-unique over a binary signature.  The pipeline applies, in the
paper's order:

1. instance encoding ``R ∪ {⊤ → I}`` (Section 4.1) — instance becomes ``{⊤}``;
2. reification (Section 4.2) — signature becomes binary;
3. streamlining ``▽`` (Section 4.3) — forward-existential + predicate-unique;
4. body rewriting ``rew`` (Section 4.4) — quickness.

Each stage preserves the chase up to homomorphic equivalence (restricted to
the original signature) and UCQ-rewritability, so a counterexample to
Property (p) would survive the pipeline — that is exactly how the paper
reduces Theorem 1 to Theorem 28.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.logic.instances import Instance
from repro.rules.classes import is_forward_existential, is_predicate_unique
from repro.rules.ruleset import RuleSet
from repro.surgery.body_rewriting import body_rewrite
from repro.surgery.instance_encoding import encode_instance
from repro.surgery.quickness import is_quick_on
from repro.surgery.reification import reify_rules
from repro.surgery.streamline import streamline


@dataclass
class RegalPipelineResult:
    """All intermediate rule sets of the pipeline plus the final one."""

    original: RuleSet
    encoded: RuleSet
    reified: RuleSet
    streamlined: RuleSet
    regal: RuleSet

    def stages(self) -> list[tuple[str, RuleSet]]:
        return [
            ("original", self.original),
            ("encoded", self.encoded),
            ("reified", self.reified),
            ("streamlined", self.streamlined),
            ("regal", self.regal),
        ]


def regal_pipeline(
    rules: RuleSet,
    instance: Instance | None = None,
    rewriting_depth: int = 12,
    strict: bool = True,
) -> RegalPipelineResult:
    """Run the full Section 4 pipeline.

    Parameters
    ----------
    instance:
        When given (and non-trivial), it is first encoded via ``⊤ → I``.
    rewriting_depth:
        Budget for the ``rew`` stage's per-body rewritings; exceeded
        budgets raise when ``strict`` (the input was presumably not bdd).
    """
    encoded = rules
    if instance is not None and any(a.predicate.arity > 0 or a.predicate.name != "top" for a in instance):
        encoded = encode_instance(rules, instance)
    reified = (
        encoded
        if encoded.signature().is_binary()
        else reify_rules(encoded)
    )
    streamlined = streamline(reified)
    regal = body_rewrite(streamlined, max_depth=rewriting_depth, strict=strict)
    return RegalPipelineResult(
        original=rules,
        encoded=encoded,
        reified=reified,
        streamlined=streamlined,
        regal=regal,
    )


@dataclass(frozen=True)
class RegalityReport:
    """Checkable regality properties of a rule set (Definition 27).

    UCQ-rewritability is semi-decidable (budgeted) and quickness is checked
    empirically on witness instances, so the report records evidence, not
    proof.
    """

    binary_signature: bool
    forward_existential: bool
    predicate_unique: bool
    quick_on_witnesses: bool

    @property
    def is_regal_evidence(self) -> bool:
        return (
            self.binary_signature
            and self.forward_existential
            and self.predicate_unique
            and self.quick_on_witnesses
        )


def regality_report(
    rules: RuleSet,
    witness_instances: list[Instance] | None = None,
    max_levels: int = 3,
) -> RegalityReport:
    """Check the decidable regality properties plus empirical quickness."""
    witnesses = witness_instances or [Instance()]
    return RegalityReport(
        binary_signature=rules.signature().is_binary(),
        forward_existential=is_forward_existential(rules),
        predicate_unique=is_predicate_unique(rules),
        quick_on_witnesses=all(
            is_quick_on(rules, instance, max_levels=max_levels)
            for instance in witnesses
        ),
    )
