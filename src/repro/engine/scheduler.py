"""The parallel round scheduler: sharded fan-out, canonical merge.

One :class:`RoundScheduler` serves one chase (or closure) run.  Each round
it routes the level's delta through a :class:`~repro.engine.shards.ShardedIndex`,
fans the per-shard enumeration out over a worker pool, and merges the
candidates back into the canonical order of the sequential delta engine —
per rule in rule-set order, matches sorted by body-variable image — so the
results are bit-identical no matter how many workers or shards ran.

Workers and determinism
-----------------------
Shard assignment is hash-based and workers finish in arbitrary order, but
neither can influence the output: every shard worker returns its matches
keyed by canonical image, equal keys imply equal (restricted) matches, and
the merge is a keyed union followed by a sort.  The worker/shard count is
therefore purely a throughput knob.

Threads, processes, persistent workers
--------------------------------------
The default pool is threads: enumeration only *reads* the shared instance
(index-cache fills are idempotent), so no locking is needed, and thread
fan-out composes with free-threaded builds and with matchers that release
the GIL.  On a GIL build the wall-clock win of ``engine="parallel"`` comes
from the batched firing path (:mod:`repro.engine.batch`) rather than from
concurrency; ``use_processes=True`` opts into a process pool that
sidesteps the GIL at the cost of pickling the instance per round (the
blob is built once per (revision, rules) and reused across same-revision
rounds), which pays off only when per-round matching dominates by a wide
margin.  ``persistent_workers=True`` replaces the executor with a
:class:`~repro.engine.workers.WorkerPool`: workers keep long-lived
instance replicas seeded once and synced with per-round deltas, and the
*firing* path is sharded across the pool too (:meth:`RoundScheduler.fire_round`)
— for every non-interleaved round the :class:`~repro.engine.runner.ChaseRunner`
policies produce.  All pool payloads — sync deltas, pivots, fire/probe
task slices and their replies — travel in the interned-term columnar
encoding of :mod:`repro.engine.wire` (flat id buffers over a shared
append-only symbol table), batched per worker: the scheduler hands the
pool one task list per worker and gets one merged reply per worker
back, never per-trigger messages.  The restricted chase's *split*
rounds (any round with existential-free triggers, mixed rounds
included) additionally shard their satisfaction gate: the ``probe``
protocol command instantiates and pre-resolves each ground head against
the worker replicas, and the parent finalizes the claims lazily while
recording (:meth:`RoundScheduler.fire_split_round`).

Shard → worker placement on the persistent pool is hash-uniform
round-robin by default; ``EngineConfig.adaptive_routing`` switches to
size-balanced placement (largest shard first onto the least-loaded
worker, by wire byte weight — :func:`~repro.engine.shards.atom_weight`
is exactly the packed-encoding cost, so routing balances the bytes the
pool actually ships), which keeps a skewed delta — one hot predicate
hashing into one shard — from serializing the pool.  Placement never
affects results.
"""

from __future__ import annotations

import pickle
import time
from concurrent.futures import Executor, ProcessPoolExecutor, ThreadPoolExecutor
from typing import TYPE_CHECKING, Callable, Iterable, Sequence

from repro.engine.batch import RoundOutcome
from repro.obs.trace import active_round
from repro.engine.config import EngineConfig
from repro.engine.core import derive_delta_atoms, rule_delta_images
from repro.engine.shards import ShardedIndex, atom_weight
from repro.engine.workers import TRANSPORT_STATS, WorkerPool, _fire_payload
from repro.logic.atoms import Atom
from repro.logic.instances import Instance
from repro.logic.substitutions import Substitution
from repro.rules.rule import Rule

if TYPE_CHECKING:  # annotation-only: keeps engine importable below chase
    from repro.chase.result import ChaseResult
    from repro.chase.trigger import Trigger
    from repro.logic.terms import FreshSupply

#: Task modes shipped to shard workers.
_ENUMERATE = "enumerate"
_DERIVE = "derive"


def _run_shard(
    mode: str,
    rules: Sequence[Rule],
    instance: Instance,
    view: Instance,
):
    """Enumerate one shard's delta view against the full instance.

    Returns per-rule ``{image: homomorphism}`` dicts in ``enumerate`` mode
    or the derived head-atom set in ``derive`` mode.  Top-level so process
    pools can pickle it by reference.
    """
    if mode == _DERIVE:
        derived: set[Atom] = set()
        for rule in rules:
            derived.update(derive_delta_atoms(rule, instance, view))
        return derived
    return [rule_delta_images(rule, instance, view) for rule in rules]


def _run_shard_payload(payload):
    """Process-pool entry point: unpack one pickled shard task.

    The shared (rules, instance) context arrives as one pre-pickled blob —
    serialized once per round by the parent, shipped as raw bytes per task
    — so the parent does a single object-graph pickle per round no matter
    how many shards run.
    """
    context_blob, mode, atoms = payload
    rules, instance = pickle.loads(context_blob)
    view = Instance(atoms, add_top=False)
    return _run_shard(mode, rules, instance, view)


class RoundScheduler:
    """Fans per-round delta enumeration out across a worker pool.

    Create one per run and :meth:`close` it afterwards (the chase variants
    do both); the pool and the sharded index persist across rounds.  With
    ``workers == 1`` everything runs inline — same code path, no pool —
    which the determinism tests use as the parallel baseline.
    """

    def __init__(self, config: EngineConfig):
        self.config = config
        # Chase deltas never repeat an atom, so the index skips cumulative
        # shard copies and only routes per-round views (half the memory).
        self._index = ShardedIndex(config.shard_count, track_shards=False)
        self._executor: Executor | None = None
        self._worker_pool: WorkerPool | None = None
        # Legacy process-mode context cache: (instance, revision, rules)
        # -> pickled blob, so two same-revision rounds (e.g. enumeration
        # then firing, or repeated fixpoint probes) serialize the
        # object graph once instead of once per call.
        self._context: tuple[Instance, int, tuple[Rule, ...], bytes] | None = None

    # ------------------------------------------------------------------
    # Pool lifecycle
    # ------------------------------------------------------------------

    def _pool(self) -> Executor:
        if self._executor is None:
            workers = self.config.workers
            if self.config.use_processes:
                self._executor = ProcessPoolExecutor(max_workers=workers)
            else:
                self._executor = ThreadPoolExecutor(
                    max_workers=workers,
                    thread_name_prefix="repro-engine",
                )
        return self._executor

    def _persistent_pool(self) -> WorkerPool:
        if self._worker_pool is None:
            self._worker_pool = WorkerPool(
                self.config.workers,
                columnar=self.config.columnar,
                shared_memory=self.config.shared_memory,
                shm_threshold=self.config.shm_threshold,
            )
        return self._worker_pool

    def close(self) -> None:
        """Shut the worker pool down (idempotent)."""
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None
        if self._worker_pool is not None:
            self._worker_pool.close()
            self._worker_pool = None
        self._context = None

    def __enter__(self) -> "RoundScheduler":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Round execution
    # ------------------------------------------------------------------

    def _context_blob(
        self, rules: Sequence[Rule], instance: Instance
    ) -> bytes:
        """The pickled ``(rules, instance)`` context of legacy process
        mode, cached per (instance identity, revision, rules).

        Enumeration and firing of one round, and repeated probes on an
        unchanged instance, hit the cache; any mutation bumps the
        revision and invalidates it.
        """
        rules = tuple(rules)
        cached = self._context
        if (
            cached is not None
            and cached[0] is instance
            and cached[1] == instance.revision
            and cached[2] == rules
        ):
            return cached[3]
        # checks: allow[T202] -- the legacy process backend ships the whole
        # context by design (it is the baseline the persistent pool is
        # measured against); the bytes are budget-gated via context_bytes.
        blob = pickle.dumps(
            (rules, instance), protocol=pickle.HIGHEST_PROTOCOL
        )
        TRANSPORT_STATS.context_pickles += 1
        TRANSPORT_STATS.context_bytes += len(blob)
        self._context = (instance, instance.revision, rules, blob)
        return blob

    def _run_round(
        self,
        mode: str,
        instance: Instance,
        rules: Sequence[Rule],
        delta: Iterable[Atom],
    ) -> list:
        """Shard the delta, run one task per non-empty shard, return the
        per-shard results in shard order."""
        views = self._index.ingest(delta)
        recorder = active_round()
        if recorder is not None:
            # The adaptive router's cost model, reported per shard: the
            # packed-encoding byte weight each shard routed this round.
            recorder.shard_weights = tuple(
                sum(atom_weight(atom) for atom in view) if len(view) else 0
                for view in views
            )
        tasks = [view for view in views if len(view)]
        if not tasks:
            return []
        if self.config.workers == 1 or len(tasks) == 1:
            return [_run_shard(mode, rules, instance, v) for v in tasks]
        if self.config.is_persistent:
            pool = self._persistent_pool()
            return pool.run_round(
                mode, rules, instance, self._route_pivots(views, pool.size)
            )
        if self.config.use_processes:
            context_blob = self._context_blob(rules, instance)
            payloads = [
                (context_blob, mode, tuple(v.sorted_atoms())) for v in tasks
            ]
            return list(self._pool().map(_run_shard_payload, payloads))
        return list(
            self._pool().map(
                lambda v: _run_shard(mode, rules, instance, v), tasks
            )
        )

    def _route_pivots(
        self, views: Sequence[Instance], pool_size: int
    ) -> list[list[Atom]]:
        """Shard → worker placement for the persistent pool.

        The reference placement is hash-uniform: round-robin on the shard
        index.  With ``adaptive_routing`` the round's non-empty shard
        views are binned onto workers largest-first by estimated byte
        weight (greedy bin packing: heaviest view to the least-loaded
        worker), so one hot predicate hashing into one shard no longer
        pins the whole round's work on one worker.  Placement is a pure
        function of the views, and — like shard routing itself — can
        never affect results, only load balance: the merge is keyed by
        canonical image.
        """
        pivots: list[list[Atom]] = [[] for _ in range(pool_size)]
        if not self.config.adaptive_routing:
            for shard, view in enumerate(views):
                if len(view):
                    pivots[shard % pool_size].extend(view.sorted_atoms())
            return pivots
        weights = {
            shard: sum(atom_weight(a) for a in view)
            for shard, view in enumerate(views)
            if len(view)
        }
        loads = [0] * pool_size
        for shard in sorted(weights, key=lambda s: (-weights[s], s)):
            worker = min(range(pool_size), key=lambda w: (loads[w], w))
            loads[worker] += weights[shard]
            pivots[worker].extend(views[shard].sorted_atoms())
        return pivots

    def enumerate_images(
        self,
        instance: Instance,
        rules: Sequence[Rule],
        delta: Iterable[Atom],
    ) -> list[list[tuple[tuple, Substitution]]]:
        """Canonically ordered body matches of one round.

        Returns one list per rule (in rule order) of ``(image, hom)``
        pairs sorted by image — exactly the order the sequential delta
        engine fires in.  Duplicate images across shards (a body touching
        delta atoms in two shards) merge by keyed union.
        """
        shard_results = self._run_round(_ENUMERATE, instance, rules, delta)
        merged: list[dict[tuple, Substitution]] = [{} for _ in rules]
        for per_rule in shard_results:
            for target, found in zip(merged, per_rule):
                for image, hom in found.items():
                    if image not in target:
                        target[image] = hom
        return [sorted(found.items()) for found in merged]

    def derive_atoms(
        self,
        instance: Instance,
        rules: Sequence[Rule],
        delta: Iterable[Atom],
    ) -> set[Atom]:
        """Batched derivation mode: the union of all head instantiations
        whose body uses ≥ 1 delta atom (order-free, for saturations)."""
        shard_results = self._run_round(_DERIVE, instance, rules, delta)
        derived: set[Atom] = set()
        for per_shard in shard_results:
            derived.update(per_shard)
        return derived

    # ------------------------------------------------------------------
    # Sharded firing
    # ------------------------------------------------------------------

    @property
    def can_fire_rounds(self) -> bool:
        """True when this scheduler shards non-interleaved firing.

        Only the process backends qualify: pure-Python head instantiation
        under one GIL gains nothing from thread fan-out, so thread mode
        keeps the inline batched path of :func:`repro.engine.batch.fire_round`.
        """
        return self.config.workers > 1 and (
            self.config.is_persistent or self.config.use_processes
        )

    @property
    def can_probe_rounds(self) -> bool:
        """True when this scheduler shards satisfaction probes.

        Probes run against worker-resident instance replicas, so only the
        persistent pool qualifies; the legacy process backend has no
        replicas and falls back to the inline split path.
        """
        return self.config.workers > 1 and self.config.is_persistent

    def fire_round(
        self,
        result: "ChaseResult",
        triggers: Sequence["Trigger"],
        supply: "FreshSupply",
        *,
        level: int,
        max_atoms: int,
        claim: Callable[["Trigger"], bool] | None = None,
    ) -> RoundOutcome | None:
        """Fire one round with head instantiation sharded across workers.

        Bit-identical to the sequential batched path by construction:

        * the claim gate runs parent-side, in canonical order, exactly
          once per trigger, and *lazily with respect to budget stops*:
          the round proceeds in budget-safe chunks (see
          :meth:`_claim_cap`), so a stateful claim (the semi-oblivious
          frontier dedup) observes exactly the call sequence of the lazy
          inline stream — after a mid-round budget stop, no further
          trigger is claimed;
        * every null is drawn from ``supply`` parent-side, in canonical
          trigger order, and shipped to the worker that instantiates the
          trigger's heads — workers never allocate names;
        * a claim gate that already instantiated a trigger's ground head
          (parking it on ``Trigger._ground_output``) produces no fire
          task at all: the parked atoms are reused, instead of being
          instantiated a second time in a worker;
        * the gathered outputs are re-ordered by canonical trigger index
          and recorded through the same amortized
          :meth:`~repro.chase.result.ChaseResult.record_round` pass, so
          provenance records, atom levels and timestamps match exactly;
        * a budget stop can only land in a single-claim chunk, so the
          supply stops at exactly the position the lazy sequential
          stream stops at (the defensive rewind in :meth:`_fire_chunk`
          would restore it even if a chunk overran).

        Returns ``None`` when this round should run inline instead (too
        few triggers, or a non-sharding backend); the caller falls back
        to :func:`repro.engine.batch.fire_round` with claim and supply
        untouched.
        """
        if not self.can_fire_rounds or len(triggers) < 2:
            return None
        # The chunk cap below assumes one application adds at most
        # max_head new atoms — exact, since outputs are head images.
        max_head = max(len(t.rule.head) for t in triggers)
        total_applied = 0
        cursor = 0
        count = len(triggers)
        while cursor < count:
            cap = self._claim_cap(result, max_atoms, max_head)
            claimed: list["Trigger"] = []
            while cursor < count and len(claimed) < cap:
                trigger = triggers[cursor]
                cursor += 1
                if claim is None or claim(trigger):
                    claimed.append(trigger)
            if not claimed:
                continue
            outcome = self._fire_chunk(
                result, claimed, supply, level=level, max_atoms=max_atoms
            )
            total_applied += outcome.applied
            if outcome.budget_exceeded:
                return RoundOutcome(total_applied, True)
        return RoundOutcome(total_applied, False)

    def _claim_cap(
        self, result: "ChaseResult", max_atoms: int, max_head: int
    ) -> int:
        """How many triggers the next chunk may claim, budget-safely.

        Recording ``cap`` claimed triggers adds at most ``cap * max_head``
        atoms, so a chunk capped at ``headroom // max_head`` can never
        exceed ``max_atoms`` — claims and null draws for it run at most
        one *safe* chunk ahead of recording, never past a budget stop.
        Once the headroom is smaller than one worst-case application the
        cap degrades to 1: claim one trigger, record it, re-check — the
        exact per-trigger laziness of the inline stream, which is what
        keeps stateful claims and supply positions bit-identical there
        too.  Away from the budget the cap covers the whole round and the
        round fans out in a single chunk, as before.
        """
        headroom = max_atoms - len(result.instance)
        return max(1, headroom // max_head)

    def _fire_chunk(
        self,
        result: "ChaseResult",
        claimed: Sequence["Trigger"],
        supply: "FreshSupply",
        *,
        level: int,
        max_atoms: int,
    ) -> RoundOutcome:
        """Instantiate and record one chunk of already-claimed triggers."""
        # Draw the chunk's nulls in canonical order, remembering the
        # supply position after each trigger for exact budget-stop rewind.
        existential_maps: list[dict] = []
        positions: list[int] = []
        for trigger in claimed:
            existential_maps.append(
                {v: supply.null() for v in trigger.rule.existential_order()}
            )
            positions.append(supply.position)
        # Tasks reference rules by index into the chunk's distinct-rule
        # tuple (a few atoms per rule) instead of re-shipping the rule per
        # trigger; the persistent pool further packs each worker's task
        # list into one flat id buffer (repro.engine.wire).  Triggers
        # whose claim parked a ground output produce no task: the parked
        # atoms are the output.
        rule_indexes: dict[Rule, int] = {}
        fire_rules: list[Rule] = []
        outputs: dict[int, set[Atom]] = {}
        tasks_per_worker: list[list[tuple]] = [
            [] for _ in range(self.config.workers)
        ]
        for index, trigger in enumerate(claimed):
            parked = trigger._ground_output
            if parked is not None:
                outputs[index] = parked
                continue
            rule_index = rule_indexes.get(trigger.rule)
            if rule_index is None:
                rule_index = len(fire_rules)
                rule_indexes[trigger.rule] = rule_index
                fire_rules.append(trigger.rule)
            tasks_per_worker[index % self.config.workers].append(
                (index, rule_index, trigger.mapping, existential_maps[index])
            )
        if fire_rules:
            if self.config.is_persistent:
                pairs = self._persistent_pool().fire(
                    fire_rules, tasks_per_worker
                )
            else:
                payloads = [
                    (tuple(fire_rules), tasks)
                    for tasks in tasks_per_worker
                    if tasks
                ]
                pairs = [
                    pair
                    for per_worker in self._pool().map(_fire_payload, payloads)
                    for pair in per_worker
                ]
            outputs.update(pairs)
        applications = (
            (trigger, (outputs[index], existential_maps[index]))
            for index, trigger in enumerate(claimed)
        )
        applied, exceeded = result.record_round(
            applications, level=level, max_atoms=max_atoms
        )
        if exceeded:
            supply.rewind(positions[applied - 1])
        return RoundOutcome(applied, exceeded)

    def fire_split_round(
        self,
        result: "ChaseResult",
        triggers: Sequence["Trigger"],
        supply: "FreshSupply",
        *,
        level: int,
        max_atoms: int,
    ) -> RoundOutcome | None:
        """Fire a restricted *split* round: sharded probes, lazy claims.

        The round's existential-free triggers fan out over the persistent
        pool as ``probe`` tasks — each worker instantiates its slice's
        ground heads exactly once and splits them against its replica
        (the chase instance at round start) into present/missing atoms.
        The parent then records the round in one canonical-order pass
        that interleaves the (typically small) existential remainder:

        * a probed trigger claims iff one of its ``missing`` witnesses is
          still absent — ``missing`` was computed against the round-start
          instance, so only those few atoms are re-checked against what
          the round has recorded so far (the witness overlay the probe
          reply ships back);
        * an existential trigger claims via the same
          :meth:`~repro.chase.trigger.Trigger.is_satisfied_using_index`
          check as the interleaved reference, observing every earlier
          application of the round, and draws its nulls in place.

        The stream is pulled lazily by
        :meth:`~repro.chase.result.ChaseResult.record_round`, so claims,
        null draws and budget stops are bit-identical to the interleaved
        reference; only the probes run (speculatively but invisibly)
        ahead of it, worker-side.  Returns ``None`` when the round should
        run on the inline split path instead (no replica backend, or too
        few probe-eligible triggers).
        """
        if not self.can_probe_rounds:
            return None
        workers = self.config.workers
        rule_indexes: dict[Rule, int] = {}
        probe_rules: list[Rule] = []
        tasks_per_worker: list[list[tuple]] = [[] for _ in range(workers)]
        ground_count = 0
        for index, trigger in enumerate(triggers):
            if trigger.rule.existential_order():
                continue
            rule_index = rule_indexes.get(trigger.rule)
            if rule_index is None:
                rule_index = len(probe_rules)
                rule_indexes[trigger.rule] = rule_index
                probe_rules.append(trigger.rule)
            tasks_per_worker[index % workers].append(
                (index, rule_index, trigger.mapping)
            )
            ground_count += 1
        if ground_count < 2:
            return None
        instance = result.instance
        recorder = active_round()
        if recorder is not None:
            with recorder.outer_phase("probe"):
                probe_results = self._persistent_pool().probe_round(
                    probe_rules, instance, tasks_per_worker
                )
        else:
            probe_results = self._persistent_pool().probe_round(
                probe_rules, instance, tasks_per_worker
            )
        probed = {
            index: (present, missing)
            for index, present, missing in probe_results
        }

        def applications():
            perf = time.perf_counter
            for index, trigger in enumerate(triggers):
                probe = probed.get(index)
                if probe is None:
                    if recorder is None:
                        satisfied = trigger.is_satisfied_using_index(instance)
                    else:
                        gate_start = perf()
                        satisfied = trigger.is_satisfied_using_index(instance)
                        recorder.add_phase("gate", perf() - gate_start)
                    if satisfied:
                        continue
                    yield trigger, trigger.output(supply)
                else:
                    present, missing = probe
                    if recorder is None:
                        satisfied = all(a in instance for a in missing)
                    else:
                        gate_start = perf()
                        satisfied = all(a in instance for a in missing)
                        recorder.add_phase("gate", perf() - gate_start)
                    if satisfied:
                        continue
                    output = set(present)
                    output.update(missing)
                    yield trigger, (output, {})

        applied, exceeded = result.record_round(
            applications(), level=level, max_atoms=max_atoms
        )
        return RoundOutcome(applied, exceeded)

    # ------------------------------------------------------------------
    # Diagnostics
    # ------------------------------------------------------------------

    def shard_sizes(self) -> tuple[int, ...]:
        """Cumulative per-shard atom counts routed so far this run."""
        return self._index.sizes()
