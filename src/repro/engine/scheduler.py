"""The parallel round scheduler: sharded fan-out, canonical merge.

One :class:`RoundScheduler` serves one chase (or closure) run.  Each round
it routes the level's delta through a :class:`~repro.engine.shards.ShardedIndex`,
fans the per-shard enumeration out over a worker pool, and merges the
candidates back into the canonical order of the sequential delta engine —
per rule in rule-set order, matches sorted by body-variable image — so the
results are bit-identical no matter how many workers or shards ran.

Workers and determinism
-----------------------
Shard assignment is hash-based and workers finish in arbitrary order, but
neither can influence the output: every shard worker returns its matches
keyed by canonical image, equal keys imply equal (restricted) matches, and
the merge is a keyed union followed by a sort.  The worker/shard count is
therefore purely a throughput knob.

Threads vs processes
--------------------
The default pool is threads: enumeration only *reads* the shared instance
(index-cache fills are idempotent), so no locking is needed, and thread
fan-out composes with free-threaded builds and with matchers that release
the GIL.  On a GIL build the wall-clock win of ``engine="parallel"`` comes
from the batched firing path (:mod:`repro.engine.batch`) rather than from
concurrency; ``use_processes=True`` opts into a process pool that
sidesteps the GIL at the cost of pickling the instance per round, which
pays off only when per-round matching dominates by a wide margin.
"""

from __future__ import annotations

import pickle
from concurrent.futures import Executor, ProcessPoolExecutor, ThreadPoolExecutor
from typing import Iterable, Sequence

from repro.engine.config import EngineConfig
from repro.engine.core import derive_delta_atoms, rule_delta_images
from repro.engine.shards import ShardedIndex
from repro.logic.atoms import Atom
from repro.logic.instances import Instance
from repro.logic.substitutions import Substitution
from repro.rules.rule import Rule

#: Task modes shipped to shard workers.
_ENUMERATE = "enumerate"
_DERIVE = "derive"


def _run_shard(
    mode: str,
    rules: Sequence[Rule],
    instance: Instance,
    view: Instance,
):
    """Enumerate one shard's delta view against the full instance.

    Returns per-rule ``{image: homomorphism}`` dicts in ``enumerate`` mode
    or the derived head-atom set in ``derive`` mode.  Top-level so process
    pools can pickle it by reference.
    """
    if mode == _DERIVE:
        derived: set[Atom] = set()
        for rule in rules:
            derived.update(derive_delta_atoms(rule, instance, view))
        return derived
    return [rule_delta_images(rule, instance, view) for rule in rules]


def _run_shard_payload(payload):
    """Process-pool entry point: unpack one pickled shard task.

    The shared (rules, instance) context arrives as one pre-pickled blob —
    serialized once per round by the parent, shipped as raw bytes per task
    — so the parent does a single object-graph pickle per round no matter
    how many shards run.
    """
    context_blob, mode, atoms = payload
    rules, instance = pickle.loads(context_blob)
    view = Instance(atoms, add_top=False)
    return _run_shard(mode, rules, instance, view)


class RoundScheduler:
    """Fans per-round delta enumeration out across a worker pool.

    Create one per run and :meth:`close` it afterwards (the chase variants
    do both); the pool and the sharded index persist across rounds.  With
    ``workers == 1`` everything runs inline — same code path, no pool —
    which the determinism tests use as the parallel baseline.
    """

    def __init__(self, config: EngineConfig):
        self.config = config
        # Chase deltas never repeat an atom, so the index skips cumulative
        # shard copies and only routes per-round views (half the memory).
        self._index = ShardedIndex(config.shard_count, track_shards=False)
        self._executor: Executor | None = None

    # ------------------------------------------------------------------
    # Pool lifecycle
    # ------------------------------------------------------------------

    def _pool(self) -> Executor:
        if self._executor is None:
            workers = self.config.workers
            if self.config.use_processes:
                self._executor = ProcessPoolExecutor(max_workers=workers)
            else:
                self._executor = ThreadPoolExecutor(
                    max_workers=workers,
                    thread_name_prefix="repro-engine",
                )
        return self._executor

    def close(self) -> None:
        """Shut the worker pool down (idempotent)."""
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None

    def __enter__(self) -> "RoundScheduler":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Round execution
    # ------------------------------------------------------------------

    def _run_round(
        self,
        mode: str,
        instance: Instance,
        rules: Sequence[Rule],
        delta: Iterable[Atom],
    ) -> list:
        """Shard the delta, run one task per non-empty shard, return the
        per-shard results in shard order."""
        views = self._index.ingest(delta)
        tasks = [view for view in views if len(view)]
        if not tasks:
            return []
        if self.config.workers == 1 or len(tasks) == 1:
            return [_run_shard(mode, rules, instance, v) for v in tasks]
        if self.config.use_processes:
            context_blob = pickle.dumps(
                (tuple(rules), instance), protocol=pickle.HIGHEST_PROTOCOL
            )
            payloads = [
                (context_blob, mode, tuple(v.sorted_atoms())) for v in tasks
            ]
            return list(self._pool().map(_run_shard_payload, payloads))
        return list(
            self._pool().map(
                lambda v: _run_shard(mode, rules, instance, v), tasks
            )
        )

    def enumerate_images(
        self,
        instance: Instance,
        rules: Sequence[Rule],
        delta: Iterable[Atom],
    ) -> list[list[tuple[tuple, Substitution]]]:
        """Canonically ordered body matches of one round.

        Returns one list per rule (in rule order) of ``(image, hom)``
        pairs sorted by image — exactly the order the sequential delta
        engine fires in.  Duplicate images across shards (a body touching
        delta atoms in two shards) merge by keyed union.
        """
        shard_results = self._run_round(_ENUMERATE, instance, rules, delta)
        merged: list[dict[tuple, Substitution]] = [{} for _ in rules]
        for per_rule in shard_results:
            for target, found in zip(merged, per_rule):
                for image, hom in found.items():
                    if image not in target:
                        target[image] = hom
        return [sorted(found.items()) for found in merged]

    def derive_atoms(
        self,
        instance: Instance,
        rules: Sequence[Rule],
        delta: Iterable[Atom],
    ) -> set[Atom]:
        """Batched derivation mode: the union of all head instantiations
        whose body uses ≥ 1 delta atom (order-free, for saturations)."""
        shard_results = self._run_round(_DERIVE, instance, rules, delta)
        derived: set[Atom] = set()
        for per_shard in shard_results:
            derived.update(per_shard)
        return derived

    # ------------------------------------------------------------------
    # Diagnostics
    # ------------------------------------------------------------------

    def shard_sizes(self) -> tuple[int, ...]:
        """Cumulative per-shard atom counts routed so far this run."""
        return self._index.sizes()
