"""Persistent delta-fed process workers.

The legacy process backend of the round scheduler re-pickles the whole
``(rules, instance)`` context every round — the instance grows, so the
payload grows with it.  A :class:`WorkerPool` inverts that: each worker
process holds a *long-lived replica* of the instance, seeded once when the
pool first runs, and every later round ships only the **per-round delta**
(the atoms added since the replicas were last synced, straight from
:meth:`~repro.logic.instances.Instance.delta_since`).  Payload size is
proportional to what changed, not to what exists.

Protocol
--------
One duplex pipe per worker.  Atom and task payloads travel in the
interned-term columnar encoding of :mod:`repro.engine.wire`: the pool
owns a :class:`~repro.engine.wire.WireEncoder` whose append-only
term/predicate tables are the shared vocabulary, each message carries
the *table segment* its worker has not seen yet (tracked by a per-worker
high-water mark, so a symbol crosses a pipe once per worker, ever), and
the payloads themselves are flat ``array('I')`` id buffers.  Only the
message envelope below, the ``Rule`` objects and error tracebacks are
pickled — that is also how the pool accounts transport in
:data:`TRANSPORT_STATS`, which keeps per-command byte/atom counters.

``("seed", segment, rules, atoms_buf)``
    Replace the worker's rule list and rebuild its replica from the
    packed atom buffer.  Sent once per (pool, rule set) — at pool start,
    or if a caller reuses the pool under different rules.
``("sync", segment, sync_buf)``
    Fold the packed per-round delta into the replica and acknowledge.
    Sent to workers that have no pivots/tasks in a round where others
    do — replicas always mirror the parent instance at round start.
``("enumerate"|"derive", segment, sync_buf, pivot_buf)``
    One enumeration round: fold the packed ``sync_buf`` delta into the
    replica, then run the shared delta core with the decoded
    ``pivot_buf`` atoms (this worker's hash shards of the delta) as the
    pivot source against the full replica.  Replies with one packed
    buffer: per-rule image streams (``enumerate`` — the parent rebuilds
    the ``{image: hom}`` dicts from the images alone) or a derived atom
    stream (``derive``).
``("probe", segment, sync_buf, rules, tasks_buf)``
    The worker-resident half of the restricted chase's satisfaction
    claim (the *probe/claim* gate): fold the sync delta into the
    replica, then, for each packed ``(index, rule_index, image)`` task —
    one existential-free trigger of the round — instantiate the ground
    head *once* and split it against the replica.  The reply packs the
    whole slice into **one** buffer pairing each index with its
    ``(present, missing)`` split: the head atoms already in the replica
    and the would-be witnesses it lacks.  The parent resolves the final
    claims lazily from the ``missing`` sets while it records the round
    in canonical order (:meth:`RoundScheduler.fire_split_round
    <repro.engine.scheduler.RoundScheduler.fire_split_round>`), and the
    claimed triggers' outputs are exactly ``present ∪ missing`` — no
    second instantiation, parent- or worker-side.  The round's distinct
    rules ride along so probing works even before the first enumeration
    seeds the worker.
``("fire", segment, rules, tasks_buf)``
    Instantiate head atoms for a slice of a round's triggers.  Each
    packed task is ``(index, rule_index, image, null_ids)`` — the
    trigger's homomorphism is reconstructed from its image along the
    rule's canonical body-variable order.  The reply packs each index
    with its instantiated output atoms into one buffer.  The distinct
    rules of the round ride along (a few hundred bytes) so firing works
    even before the first enumeration seeds the worker.
``("stop",)``
    Acknowledge and exit.

Workers never talk to each other and never allocate null names — the
parent draws every null from the run's :class:`~repro.logic.terms.FreshSupply`
in canonical trigger order and ships the assignments, which is what keeps
sharded firing bit-identical to the sequential engines (see
:meth:`repro.engine.scheduler.RoundScheduler.fire_round`).  Every
non-interleaved round the :class:`~repro.engine.runner.ChaseRunner`
policies produce fires this way — and the restricted chase's rounds with
existential-free triggers (pure *or* mixed with an existential remainder)
resolve their satisfaction probes worker-side through ``probe`` before
the parent's canonical-order recording walk finalizes the claims.

Failure handling: a failed or dead worker surfaces as
:class:`~repro.errors.ChaseError`, but only after every outstanding reply
of the round has been drained, and the pool is marked *broken* — its
replicas may have half-applied the round's sync and an undrained pipe
could hand a stale round reply to the next reader, so ``close()`` skips
the stop handshake on a broken pool and tears the processes down by
closing the pipes instead.

Decoded terms and atoms rebuild through their constructors on arrival
(:func:`repro.logic.terms.term_from_wire`,
:func:`repro.logic.atoms.build_atom` — and ``Term.__reduce__`` for the
still-pickled rules), so cached hashes are recomputed under the worker's
own ``PYTHONHASHSEED`` and replica indexes stay consistent.
"""

from __future__ import annotations

import multiprocessing
import pickle
import time
import traceback
from typing import Iterable, Sequence

from repro.engine import shm as shm_transport
from repro.engine import wire
from repro.obs.trace import active_round
from repro.engine.columnar import ColumnarInstance, Vocabulary
from repro.engine.wire import WireEncoder
from repro.errors import ChaseError
from repro.logic.atoms import Atom
from repro.logic.instances import Instance
from repro.rules.rule import Rule

_PROTOCOL = pickle.HIGHEST_PROTOCOL


class TransportStats:
    """Byte/message counters for the pool's pipe traffic.

    Module-global (like ``MATCHER_STATS`` in the homomorphism matcher) so
    benchmarks can quantify the persistent mode's payload win over the
    per-round full-context pickles of the legacy process backend.
    ``context_bytes``/``context_pickles`` are fed by the scheduler's
    legacy blob cache for the same comparison.

    Beyond the totals, :attr:`commands` keys per-command counters —
    ``{"messages", "bytes_sent", "bytes_received", "shm_bytes",
    "atoms_sent", "atoms_received"}`` for each of ``seed``/``sync``/
    ``enumerate``/``derive``/``probe``/``fire``/``stop`` — so tests and
    benchmarks can pin exactly where transport goes.  Sync deltas riding
    an enumerate/derive/probe message are counted under ``sync`` (atoms)
    while the envelope bytes land on the carrying command.

    The byte accounting is split by *channel*: ``bytes_sent``/
    ``bytes_received`` are **pipe** bytes (the pickled envelopes — with
    shared memory on, that is refs and small payloads only), and
    ``shm_bytes`` counts the payload bytes that traveled through
    :class:`~repro.engine.shm.SegmentPool` segments instead.  A
    payload's bytes land on exactly one channel, so the two gates in
    ``tools/check_transport_budget.py`` partition the transport.  Shm
    bytes for a shared sync buffer are attributed to ``sync`` (the
    buffer leaves the carrying envelope entirely) and counted once per
    publish, not per worker — segments are read in place, fan-out is
    free.

    :attr:`worker_seconds` aggregates the worker-side
    ``(decode_s, execute_s, encode_s)`` wall-clock triples stamped into
    every reply envelope (:func:`repro.engine.wire.pack_reply`), per
    command — the only non-deterministic counters in here, kept apart
    from the byte counters the budget gate pins.  Registered as the
    ``transport`` group of :func:`repro.obs.default_registry`.
    """

    __slots__ = (
        "bytes_sent",
        "bytes_received",
        "shm_bytes",
        "shm_publishes",
        "shm_segments",
        "messages",
        "seeds",
        "probes",
        "context_bytes",
        "context_pickles",
        "commands",
        "worker_seconds",
    )

    def __init__(self):
        self.reset()

    def reset(self) -> None:
        self.bytes_sent = 0
        self.bytes_received = 0
        self.shm_bytes = 0
        self.shm_publishes = 0
        self.shm_segments = 0
        self.messages = 0
        self.seeds = 0
        self.probes = 0
        self.context_bytes = 0
        self.context_pickles = 0
        self.commands: dict[str, dict[str, int]] = {}
        self.worker_seconds: dict[str, dict[str, float]] = {}

    def command(self, name: str) -> dict[str, int]:
        """The (auto-created) per-command counter dict for ``name``."""
        entry = self.commands.get(name)
        if entry is None:
            entry = self.commands[name] = {
                "messages": 0,
                "bytes_sent": 0,
                "bytes_received": 0,
                "shm_bytes": 0,
                "atoms_sent": 0,
                "atoms_received": 0,
            }
        return entry

    def record_send(self, name: str, nbytes: int) -> None:
        self.bytes_sent += nbytes
        self.messages += 1
        entry = self.command(name)
        entry["messages"] += 1
        entry["bytes_sent"] += nbytes

    def record_receive(self, name: str, nbytes: int) -> None:
        self.bytes_received += nbytes
        self.command(name)["bytes_received"] += nbytes

    def record_shm(self, name: str, nbytes: int) -> None:
        """Account one payload routed through a shared-memory segment."""
        self.shm_bytes += nbytes
        self.shm_publishes += 1
        self.command(name)["shm_bytes"] += nbytes

    def count_atoms_sent(self, name: str, count: int) -> None:
        if count:
            self.command(name)["atoms_sent"] += count

    def count_atoms_received(self, name: str, count: int) -> None:
        if count:
            self.command(name)["atoms_received"] += count

    def worker_timing(self, name: str) -> dict[str, float]:
        """The (auto-created) worker-timing aggregate for command ``name``."""
        entry = self.worker_seconds.get(name)
        if entry is None:
            entry = self.worker_seconds[name] = {
                "replies": 0,
                "decode_s": 0.0,
                "execute_s": 0.0,
                "encode_s": 0.0,
            }
        return entry

    def record_worker_timings(
        self, name: str, timings: tuple[float, float, float]
    ) -> None:
        decode_s, execute_s, encode_s = timings
        entry = self.worker_timing(name)
        entry["replies"] += 1
        entry["decode_s"] += decode_s
        entry["execute_s"] += execute_s
        entry["encode_s"] += encode_s

    def worker_totals(self) -> dict[str, float]:
        """Worker-side seconds summed across commands (for round deltas)."""
        totals = {"decode_s": 0.0, "execute_s": 0.0, "encode_s": 0.0}
        for entry in self.worker_seconds.values():
            totals["decode_s"] += entry["decode_s"]
            totals["execute_s"] += entry["execute_s"]
            totals["encode_s"] += entry["encode_s"]
        return totals

    def snapshot(self) -> dict:
        """A JSON-able copy: flat totals plus the per-command dicts."""
        snap: dict = {
            name: getattr(self, name)
            for name in self.__slots__
            if name not in ("commands", "worker_seconds")
        }
        snap["commands"] = {
            name: dict(entry) for name, entry in self.commands.items()
        }
        snap["worker_seconds"] = {
            name: dict(entry) for name, entry in self.worker_seconds.items()
        }
        return snap


#: Global transport counters; reset before a measured run.
TRANSPORT_STATS = TransportStats()


def fire_tasks(
    rules: Sequence[Rule], tasks: Iterable[tuple]
) -> list[tuple[int, set[Atom]]]:
    """Instantiate the head atoms of a slice of firing tasks.

    Each task is ``(index, rule_index, mapping, existential_map)``.  The
    instantiation is :meth:`Rule.instantiate_head
    <repro.rules.rule.Rule.instantiate_head>` — the same code
    :meth:`Trigger.output <repro.chase.trigger.Trigger.output>` runs, so
    a worker returns exactly the atoms the sequential engine would have
    produced.  Top-level so both process backends can ship it by
    reference.
    """
    return [
        (index, rules[rule_index].instantiate_head(mapping, existential_map))
        for index, rule_index, mapping, existential_map in tasks
    ]


def _fire_payload(payload: tuple) -> list[tuple[int, set[Atom]]]:
    """Legacy process-pool entry point for one firing slice."""
    rules, tasks = payload
    return fire_tasks(rules, tasks)


def probe_tasks(
    rules: Sequence[Rule], instance: Instance, tasks: Iterable[tuple]
) -> list[tuple[int, tuple[Atom, ...], tuple[Atom, ...]]]:
    """Instantiate and satisfaction-probe a slice of ground-head triggers.

    Each task is ``(index, rule_index, mapping)`` for an existential-free
    trigger: the body homomorphism grounds the whole head, so the head is
    instantiated exactly once and split against ``instance`` (the worker's
    replica, mirroring the chase instance at round start) into the atoms
    already ``present`` and the witnesses ``missing``.  The trigger is
    unsatisfied at round start iff ``missing`` is non-empty; the parent
    finalizes the claim against the atoms the round has recorded *before*
    the trigger (only the ``missing`` atoms need re-checking — ``present``
    atoms can never leave an append-only chase instance), and a claimed
    trigger's output is ``present ∪ missing``.  Atoms are sorted so the
    reply bytes are deterministic.
    """
    results: list[tuple[int, tuple[Atom, ...], tuple[Atom, ...]]] = []
    for index, rule_index, mapping in tasks:
        head = rules[rule_index].instantiate_head(mapping)
        present: list[Atom] = []
        missing: list[Atom] = []
        for head_atom in head:
            (present if head_atom in instance else missing).append(head_atom)
        results.append((index, tuple(sorted(present)), tuple(sorted(missing))))
    return results


def _worker_main(conn, columnar: bool = False) -> None:
    """The long-lived worker loop: one replica, one rule list, one wire
    table; per-round packed deltas in, one packed reply per round out.

    With ``columnar=True`` the replica is an id-native
    :class:`~repro.engine.columnar.ColumnarInstance` over the decoder's
    table replica: packed seed/sync buffers fold straight into flat id
    columns (``decode_atoms`` leaves the per-round hot path), probes run
    on id tuples, and atoms materialize lazily only where the matcher
    touches them.  Payload fields may arrive as
    :class:`~repro.engine.shm.SegmentRef`\\ s instead of bytes; they are
    resolved against a per-worker :class:`~repro.engine.shm.SegmentReader`
    (attach once per segment, memcpy per read) before decoding.

    Every reply envelope carries the worker's
    ``(decode_s, execute_s, encode_s)`` wall-clock split
    (:func:`repro.engine.wire.pack_reply`): *decode* covers unpickling
    the envelope, resolving shm refs, replaying the table segment and
    unpacking the id buffers; *execute* the replica update and the
    actual shard work; *encode* packing the reply buffer.  The blocking
    ``recv`` (waiting for the parent) and the envelope's own final
    pickle are excluded — the triple measures worker compute, not pipe
    idleness.
    """
    # Imported here (not at module top) to keep the spawn path lean: the
    # scheduler module pulls in the whole engine package.
    from repro.engine.scheduler import _run_shard

    perf = time.perf_counter
    rules: tuple[Rule, ...] = ()
    decoder = wire.WireDecoder()
    replica = (
        ColumnarInstance(Vocabulary.of_decoder(decoder))
        if columnar
        else Instance(add_top=False)
    )
    reader = shm_transport.SegmentReader()
    resolve = shm_transport.resolve
    while True:
        try:
            blob = conn.recv_bytes()
        except (EOFError, OSError):
            break
        decode_start = perf()
        message = pickle.loads(blob)
        command = message[0]
        if command == "stop":
            decoded = perf()
            conn.send_bytes(
                pickle.dumps(
                    wire.pack_reply(
                        "ok", None, (decoded - decode_start, 0.0, 0.0)
                    ),
                    _PROTOCOL,
                )
            )
            break
        try:
            if command == "seed":
                _, segment, rules, atoms_buf = message
                decoder.apply_segment(segment)
                atoms_buf = resolve(reader, atoms_buf)
                if columnar:
                    decoded = perf()
                    replica = ColumnarInstance(Vocabulary.of_decoder(decoder))
                    replica.ingest_packed(atoms_buf)
                else:
                    atoms = decoder.decode_atoms(atoms_buf)
                    decoded = perf()
                    replica = Instance(atoms, add_top=False)
                value = len(replica)
                executed = perf()
            elif command == "sync":
                _, segment, sync_buf = message
                decoder.apply_segment(segment)
                sync_buf = resolve(reader, sync_buf)
                if columnar:
                    decoded = perf()
                    value = replica.ingest_packed(sync_buf)
                else:
                    sync_atoms = decoder.decode_atoms(sync_buf)
                    decoded = perf()
                    replica.update(sync_atoms)
                    value = len(sync_atoms)
                executed = perf()
            elif command in ("enumerate", "derive"):
                _, segment, sync_buf, pivot_buf = message
                decoder.apply_segment(segment)
                sync_buf = resolve(reader, sync_buf)
                pivot_buf = resolve(reader, pivot_buf)
                if columnar:
                    decoded = perf()
                    replica.ingest_packed(sync_buf)
                    view = ColumnarInstance(replica.vocabulary)
                    view.ingest_packed(pivot_buf)
                else:
                    sync_atoms = decoder.decode_atoms(sync_buf)
                    pivot_atoms = decoder.decode_atoms(pivot_buf)
                    decoded = perf()
                    replica.update(sync_atoms)
                    view = Instance(pivot_atoms, add_top=False)
                result = _run_shard(command, rules, replica, view)
                executed = perf()
                if command == "derive":
                    value = wire.encode_derive_reply(decoder, result)
                else:
                    value = wire.encode_enumerate_reply(
                        decoder, rules, result
                    )
            elif command == "probe":
                _, segment, sync_buf, probe_rules, tasks_buf = message
                decoder.apply_segment(segment)
                sync_buf = resolve(reader, sync_buf)
                tasks_buf = resolve(reader, tasks_buf)
                tasks = decoder.decode_probe_tasks(tasks_buf, probe_rules)
                if columnar:
                    decoded = perf()
                    replica.ingest_packed(sync_buf)
                else:
                    sync_atoms = decoder.decode_atoms(sync_buf)
                    decoded = perf()
                    replica.update(sync_atoms)
                results = probe_tasks(probe_rules, replica, tasks)
                executed = perf()
                value = wire.encode_probe_reply(decoder, results)
            elif command == "fire":
                _, segment, fire_rules, tasks_buf = message
                decoder.apply_segment(segment)
                tasks_buf = resolve(reader, tasks_buf)
                tasks = decoder.decode_fire_tasks(tasks_buf, fire_rules)
                decoded = perf()
                pairs = fire_tasks(fire_rules, tasks)
                executed = perf()
                value = wire.encode_fire_reply(decoder, pairs)
            else:
                raise ChaseError(f"unknown worker command {command!r}")
            reply = wire.pack_reply(
                "ok",
                value,
                (
                    decoded - decode_start,
                    executed - decoded,
                    perf() - executed,
                ),
            )
        except Exception:
            reply = wire.pack_reply("error", traceback.format_exc())
        conn.send_bytes(pickle.dumps(reply, _PROTOCOL))
    reader.close()
    conn.close()


class WorkerPool:
    """A fixed-size pool of persistent, delta-fed worker processes.

    Lifecycle: the pool spawns lazily on first use, is owned by one
    :class:`~repro.engine.scheduler.RoundScheduler` (and therefore one
    chase/closure run), and is torn down by the scheduler's ``close()`` —
    the same ``EngineConfig``-driven lifecycle as the legacy executors.

    Replica consistency: the pool tracks the revision its replicas are
    synced to and computes each round's sync payload with
    ``instance.delta_since`` — so rounds the scheduler chose to run inline
    (single non-empty shard) are transparently caught up on the next
    fanned-out round.

    Wire tables: the pool owns the run's :class:`WireEncoder` and a
    per-worker ``(term, predicate)`` high-water mark into its tables.
    Segments are cut per worker **after** all of a broadcast's payloads
    are encoded, so each worker's segment covers every symbol its
    message references — including workers that skip a round (their mark
    simply stays behind until their next message catches them up).
    """

    def __init__(
        self,
        size: int,
        *,
        columnar: bool = False,
        shared_memory: bool = False,
        shm_threshold: int = shm_transport.DEFAULT_THRESHOLD,
    ):
        if size < 1:
            raise ChaseError(
                f"a worker pool needs at least 1 worker, got {size}"
            )
        if shared_memory and not shm_transport.shm_available():
            raise ChaseError(
                "shared_memory requested but multiprocessing.shared_memory "
                "is unavailable on this platform"
            )
        self.size = size
        self.columnar = columnar
        self.shared_memory = shared_memory
        self.shm_threshold = shm_threshold
        self._connections: list = []
        self._processes: list = []
        self._started = False
        self._broken = False
        self._rules: tuple[Rule, ...] | None = None
        self._replica_revision = 0
        self._encoder = WireEncoder()
        self._marks: list[tuple[int, int]] = [(0, 0)] * size
        self._segment_pool: shm_transport.SegmentPool | None = None

    @property
    def broken(self) -> bool:
        """True once a round failed and the pipes can no longer be trusted."""
        return self._broken

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def _start(self) -> None:
        if self._broken:
            raise ChaseError(
                "this worker pool is broken after a failed round; "
                "close it and create a new pool"
            )
        if self._started:
            return
        if self.shared_memory and self._segment_pool is None:
            self._segment_pool = shm_transport.SegmentPool(self.shm_threshold)
        self._spawn(self.size)
        self._started = True

    def _spawn(self, count: int) -> None:
        """Start ``count`` fresh worker processes (appended in order)."""
        try:
            context = multiprocessing.get_context("fork")
        except ValueError:  # pragma: no cover - non-POSIX platforms
            context = multiprocessing.get_context("spawn")
        for _ in range(count):
            parent_conn, child_conn = context.Pipe(duplex=True)
            process = context.Process(
                target=_worker_main,
                args=(child_conn, self.columnar),
                daemon=True,
            )
            process.start()
            child_conn.close()
            self._connections.append(parent_conn)
            self._processes.append(process)

    def close(self) -> None:
        """Stop every worker and reap the processes (idempotent).

        On a healthy pool this is the stop handshake: every pipe is in
        lockstep (each sent message has had its reply read), so a ``stop``
        is acknowledged and the workers exit.  A *broken* pool never
        reuses its desynced pipes — a stale round reply could be misread
        as the stop ack — so the handshake is skipped and the processes
        are terminated outright (their replicas are scratch state; under
        the fork start method siblings hold inherited copies of each
        other's pipe ends, so closing the parent ends alone would not
        even unblock them).
        """
        if not self._started:
            if self._segment_pool is not None:  # pragma: no cover - defensive
                self._segment_pool.close()
                self._segment_pool = None
            return
        if self._broken:
            for conn in self._connections:
                try:
                    conn.close()
                except OSError:  # pragma: no cover - defensive
                    pass
            for process in self._processes:
                process.terminate()
                process.join(timeout=5.0)
        else:
            stop_blob = pickle.dumps(("stop",), _PROTOCOL)
            for conn in self._connections:
                try:
                    conn.send_bytes(stop_blob)
                except (BrokenPipeError, OSError):
                    continue
                TRANSPORT_STATS.record_send("stop", len(stop_blob))
            for conn in self._connections:
                try:
                    if conn.poll(1.0):
                        ack = conn.recv_bytes()
                        TRANSPORT_STATS.record_receive("stop", len(ack))
                        _, _, timings = wire.unpack_reply(pickle.loads(ack))
                        if timings is not None:
                            TRANSPORT_STATS.record_worker_timings(
                                "stop", timings
                            )
                except (EOFError, OSError):
                    pass
            for conn in self._connections:
                conn.close()
            for process in self._processes:
                process.join(timeout=5.0)
                if process.is_alive():  # pragma: no cover - defensive
                    process.terminate()
                    process.join(timeout=1.0)
        self._connections = []
        self._processes = []
        self._started = False
        self._rules = None
        self._replica_revision = 0
        # The workers' table replicas died with them: start a fresh
        # vocabulary so a reused pool re-ships symbols from scratch.
        self._encoder = WireEncoder()
        self._marks = [(0, 0)] * self.size
        if self._segment_pool is not None:
            self._segment_pool.close()
            self._segment_pool = None

    def resize(self, size: int) -> None:
        """Change the pool size mid-run, keeping symbol tables warm.

        The run's :class:`WireEncoder` and every *surviving* worker's
        table high-water mark are preserved — only the rows need
        re-shipping, not the vocabulary.  The next round therefore
        reseeds all workers (``_rules`` is cleared to force it): new
        workers get a segment covering the whole table, survivors get an
        empty-or-tiny segment plus the same shared row buffer, from
        which every worker rebuilds its replica.

        Shrinking stops the excess workers with the normal handshake —
        the pool is in lockstep between rounds, so their pipes are
        clean.  Raises on a broken pool (its pipes can't be trusted for
        the stop handshake; close it instead).
        """
        if size < 1:
            raise ChaseError(
                f"a worker pool needs at least 1 worker, got {size}"
            )
        if self._broken:
            raise ChaseError(
                "cannot resize a broken worker pool; close it and "
                "create a new one"
            )
        if not self._started:
            self.size = size
            self._marks = [(0, 0)] * size
            return
        if size < self.size:
            stop_blob = pickle.dumps(("stop",), _PROTOCOL)
            for worker in range(size, self.size):
                conn = self._connections[worker]
                try:
                    conn.send_bytes(stop_blob)
                    TRANSPORT_STATS.record_send("stop", len(stop_blob))
                    if conn.poll(1.0):
                        ack = conn.recv_bytes()
                        TRANSPORT_STATS.record_receive("stop", len(ack))
                except (BrokenPipeError, EOFError, OSError):
                    pass
                conn.close()
            for process in self._processes[size:]:
                process.join(timeout=5.0)
                if process.is_alive():  # pragma: no cover - defensive
                    process.terminate()
                    process.join(timeout=1.0)
            self._connections = self._connections[:size]
            self._processes = self._processes[:size]
            self._marks = self._marks[:size]
        elif size > self.size:
            self._spawn(size - self.size)
            self._marks = self._marks + [(0, 0)] * (size - self.size)
        self.size = size
        # Force a rows-only reseed on the next round: replicas must be
        # rebuilt on every worker (new ones are empty; survivors redo a
        # cheap idempotent fold), but the preserved marks mean the seed
        # segment for survivors carries no symbol they already hold.
        self._rules = None
        self._replica_revision = 0

    # ------------------------------------------------------------------
    # Messaging
    # ------------------------------------------------------------------

    def _segment(self, worker: int):
        """Cut ``worker``'s table segment and advance its high-water mark."""
        term_mark, pred_mark = self._marks[worker]
        segment = self._encoder.segment(term_mark, pred_mark)
        self._marks[worker] = self._encoder.marks()
        return segment

    def _ship(self, command: str, buf: bytes):
        """Route one payload: an shm ref above the threshold, raw bytes
        below (or always, with shared memory off).

        Published payloads are accounted under ``command``'s
        ``shm_bytes``; whatever rides the pickle envelope lands in the
        pipe counters at send time as before.  The returned object is
        safe to share across every worker's message — segments are read
        in place, so fan-out costs nothing.
        """
        pool = self._segment_pool
        if pool is None or len(buf) < pool.threshold:
            return buf
        ref = pool.publish(buf)
        TRANSPORT_STATS.record_shm(command, len(buf))
        TRANSPORT_STATS.shm_segments = max(
            TRANSPORT_STATS.shm_segments, pool.segments_created
        )
        return ref

    def _collect_segments(self) -> None:
        """Recycle the broadcast's segments (every reply is gathered, so
        no live worker can still hold a ref into them)."""
        if self._segment_pool is not None:
            self._segment_pool.collect()

    def _shared_messages(self, build) -> list[tuple]:
        """One message per worker, shared by equal table marks.

        ``build(segment)`` constructs the message; workers whose marks
        coincide receive the *same object*, which the broadcast pickles
        once.  Every worker's mark is advanced to current.
        """
        cache: dict[tuple[int, int], tuple] = {}
        messages: list[tuple] = []
        for worker in range(self.size):
            key = self._marks[worker]
            message = cache.get(key)
            if message is None:
                message = build(self._segment(worker))
                cache[key] = message
            else:
                self._marks[worker] = self._encoder.marks()
            messages.append(message)
        return messages

    def _send_bytes(self, worker: int, blob: bytes, command: str) -> None:
        TRANSPORT_STATS.record_send(command, len(blob))
        self._connections[worker].send_bytes(blob)

    def _send(self, worker: int, message: tuple) -> None:
        # checks: allow[T202] -- envelope choke point: every message reaching
        # here is a command tuple built by the round methods below.
        self._send_bytes(worker, pickle.dumps(message, _PROTOCOL), message[0])

    def _receive(self, worker: int, command: str = "reply"):
        try:
            blob = self._connections[worker].recv_bytes()
        except (EOFError, OSError) as exc:
            raise ChaseError(
                f"persistent worker {worker} died mid-round: {exc!r}"
            ) from exc
        TRANSPORT_STATS.record_receive(command, len(blob))
        status, value, timings = wire.unpack_reply(pickle.loads(blob))
        if timings is not None:
            TRANSPORT_STATS.record_worker_timings(command, timings)
        if status != "ok":
            raise ChaseError(
                f"persistent worker {worker} failed:\n{value}"
            )
        return value

    def _broadcast_and_gather(
        self, messages: Sequence[tuple | None]
    ) -> list[tuple[int, object]]:
        """Send one message per worker (None skips), gather the replies.

        Returns ``(worker, reply)`` pairs in worker order.  Repeated
        message *objects* (the seed broadcast, sync-only rounds) are
        pickled once and the same bytes written to every pipe — the
        protocol's largest payloads serialize O(1) times, not O(workers).

        A failed reply (worker error or death) does not abort the gather:
        every remaining sent worker is still drained first, so no pipe is
        left holding a stale round reply that a later reader (the stop
        handshake, a retried round) would misread as its own.  Only then
        is the first failure raised — and the pool marked broken, because
        the failed worker's replica state is unknown.
        """
        blobs: dict[int, bytes] = {}
        sent = []
        failure: ChaseError | None = None
        for worker, message in enumerate(messages):
            if message is None:
                continue
            blob = blobs.get(id(message))
            if blob is None:
                # checks: allow[T202] -- envelope choke point: broadcast
                # messages are command tuples built by the round methods.
                blob = pickle.dumps(message, _PROTOCOL)
                blobs[id(message)] = blob
            try:
                self._send_bytes(worker, blob, message[0])
            except (BrokenPipeError, OSError) as exc:
                # A dead worker at send time: stop broadcasting (the
                # round is lost either way) but still drain the workers
                # already sent to, below.
                failure = ChaseError(
                    f"persistent worker {worker} died mid-round: {exc!r}"
                )
                break
            sent.append(worker)
        replies: list[tuple[int, object]] = []
        for worker in sent:
            try:
                replies.append(
                    (worker, self._receive(worker, messages[worker][0]))
                )
            except ChaseError as exc:
                if failure is None:
                    failure = exc
        if failure is not None:
            self._broken = True
            raise failure
        return replies

    # ------------------------------------------------------------------
    # Rounds
    # ------------------------------------------------------------------

    def _slice(self, per_worker: Sequence[list], worker: int) -> list:
        return per_worker[worker] if worker < len(per_worker) else []

    def _seed(self, rules: tuple[Rule, ...], instance: Instance) -> None:
        TRANSPORT_STATS.seeds += 1
        encoder = self._encoder
        recorder = active_round()
        sync_start = time.perf_counter() if recorder is not None else 0.0
        encoder.intern_rules(rules)
        atoms = instance.sorted_atoms()
        atoms_buf = encoder.encode_atoms(atoms)
        if recorder is not None:
            recorder.add_phase("sync", time.perf_counter() - sync_start)
        atoms_payload = self._ship("seed", atoms_buf)
        messages = self._shared_messages(
            lambda segment: ("seed", segment, rules, atoms_payload)
        )
        TRANSPORT_STATS.count_atoms_sent("seed", len(atoms) * self.size)
        try:
            self._broadcast_and_gather(messages)
        finally:
            self._collect_segments()
        self._rules = rules
        self._replica_revision = instance.revision

    def run_round(
        self,
        mode: str,
        rules: Sequence[Rule],
        instance: Instance,
        pivots_per_worker: Sequence[list[Atom]],
    ) -> list:
        """Run one enumeration (or derivation) round across the pool.

        ``pivots_per_worker`` assigns each worker its slice of the round's
        delta as pivot source (the scheduler's hash-shard routing); the
        sync payload — everything the replicas have not seen yet — is
        computed here and shipped to *every* worker, so replicas always
        mirror the parent instance at round start.  Returns the non-empty
        workers' results in worker order (per-rule image dicts for
        ``enumerate``, derived atom sets for ``derive``).
        """
        self._start()
        rules = tuple(rules)
        if self._rules is None or rules != self._rules:
            self._seed(rules, instance)
        recorder = active_round()
        sync_start = time.perf_counter() if recorder is not None else 0.0
        sync_atoms = instance.delta_since(self._replica_revision)
        self._replica_revision = instance.revision
        encoder = self._encoder
        sync_buf = encoder.encode_atoms(sync_atoms) if sync_atoms else b""
        if recorder is not None:
            recorder.add_phase("sync", time.perf_counter() - sync_start)
        pivot_lists = [
            self._slice(pivots_per_worker, worker)
            for worker in range(self.size)
        ]
        # Encode every payload of the broadcast *before* cutting any
        # worker's segment — a pivot atom for worker N may intern a
        # symbol that worker 0's segment must already carry.
        pivot_bufs = [
            encoder.encode_atoms(pivots) if pivots else b""
            for pivots in pivot_lists
        ]
        # Route the bulk payloads: the sync delta is published once and
        # the same ref rides every worker's envelope.
        sync_payload = self._ship("sync", sync_buf) if sync_buf else b""
        pivot_payloads = [
            self._ship(mode, buf) if buf else b"" for buf in pivot_bufs
        ]
        # One shared sync-only message per table mark for pivotless
        # workers: the broadcast pickles each distinct object once.
        sync_cache: dict[tuple[int, int], tuple] = {}
        messages: list[tuple | None] = []
        gathered_workers: list[int] = []
        for worker in range(self.size):
            if pivot_lists[worker]:
                messages.append(
                    (
                        mode,
                        self._segment(worker),
                        sync_payload,
                        pivot_payloads[worker],
                    )
                )
                gathered_workers.append(worker)
                TRANSPORT_STATS.count_atoms_sent("sync", len(sync_atoms))
                TRANSPORT_STATS.count_atoms_sent(
                    mode, len(pivot_lists[worker])
                )
            elif sync_atoms:
                key = self._marks[worker]
                message = sync_cache.get(key)
                if message is None:
                    message = ("sync", self._segment(worker), sync_payload)
                    sync_cache[key] = message
                else:
                    self._marks[worker] = encoder.marks()
                messages.append(message)
                TRANSPORT_STATS.count_atoms_sent("sync", len(sync_atoms))
            else:
                messages.append(None)
        try:
            replies = dict(self._broadcast_and_gather(messages))
        finally:
            self._collect_segments()
        # Sync-only workers just acknowledge; keep the shape (non-empty
        # pivot slices only) the scheduler's merge expects.
        results = []
        for worker in gathered_workers:
            if mode == "derive":
                derived = wire.decode_derive_reply(encoder, replies[worker])
                TRANSPORT_STATS.count_atoms_received("derive", len(derived))
                results.append(derived)
            else:
                results.append(
                    wire.decode_enumerate_reply(
                        encoder, rules, replies[worker]
                    )
                )
        return results

    def probe_round(
        self,
        rules: Sequence[Rule],
        instance: Instance,
        tasks_per_worker: Sequence[list[tuple]],
    ) -> list[tuple[int, tuple[Atom, ...], tuple[Atom, ...]]]:
        """Fan one round's satisfaction probes across the pool.

        ``rules`` are the round's distinct rules (shipped per message,
        like ``fire`` — the probe never reseeds the pool's resident rule
        list), ``tasks_per_worker`` assigns each worker its slice of the
        round's existential-free triggers as ``(index, rule_index,
        mapping)`` tasks, packed into one flat buffer per worker.  The
        sync payload — everything the replicas have not seen yet — is
        computed here and shipped to *every* worker, so each probe runs
        against a replica mirroring the chase instance at round start.
        Each worker answers its whole slice in **one** packed reply; the
        round counts once in ``TRANSPORT_STATS.probes``.  Returns the
        concatenated ``(index, present, missing)`` triples; the caller
        re-orders by index, so reply order is irrelevant.
        """
        self._start()
        TRANSPORT_STATS.probes += 1
        rules = tuple(rules)
        recorder = active_round()
        sync_start = time.perf_counter() if recorder is not None else 0.0
        sync_atoms = instance.delta_since(self._replica_revision)
        self._replica_revision = instance.revision
        encoder = self._encoder
        sync_buf = encoder.encode_atoms(sync_atoms) if sync_atoms else b""
        if recorder is not None:
            recorder.add_phase("sync", time.perf_counter() - sync_start)
        task_lists = [
            self._slice(tasks_per_worker, worker)
            for worker in range(self.size)
        ]
        task_bufs = [
            encoder.encode_probe_tasks(rules, tasks) if tasks else b""
            for tasks in task_lists
        ]
        sync_payload = self._ship("sync", sync_buf) if sync_buf else b""
        task_payloads = [
            self._ship("probe", buf) if buf else b"" for buf in task_bufs
        ]
        sync_cache: dict[tuple[int, int], tuple] = {}
        messages: list[tuple | None] = []
        probe_workers: list[int] = []
        for worker in range(self.size):
            if task_lists[worker]:
                messages.append(
                    (
                        "probe",
                        self._segment(worker),
                        sync_payload,
                        rules,
                        task_payloads[worker],
                    )
                )
                probe_workers.append(worker)
                TRANSPORT_STATS.count_atoms_sent("sync", len(sync_atoms))
            elif sync_atoms:
                key = self._marks[worker]
                message = sync_cache.get(key)
                if message is None:
                    message = ("sync", self._segment(worker), sync_payload)
                    sync_cache[key] = message
                else:
                    self._marks[worker] = encoder.marks()
                messages.append(message)
                TRANSPORT_STATS.count_atoms_sent("sync", len(sync_atoms))
            else:
                messages.append(None)
        try:
            replies = dict(self._broadcast_and_gather(messages))
        finally:
            self._collect_segments()
        results: list[tuple[int, tuple[Atom, ...], tuple[Atom, ...]]] = []
        for worker in probe_workers:
            decoded = wire.decode_probe_reply(encoder, replies[worker])
            TRANSPORT_STATS.count_atoms_received(
                "probe",
                sum(len(p) + len(m) for _, p, m in decoded),
            )
            results.extend(decoded)
        return results

    def fire(
        self,
        rules: Sequence[Rule],
        tasks_per_worker: Sequence[list[tuple]],
    ) -> list[tuple[int, set[Atom]]]:
        """Fan one round's firing tasks across the pool.

        Tasks are packed into one flat buffer per worker and each worker
        answers its whole slice in one packed reply.  Returns the
        concatenated ``(index, output_atoms)`` pairs; the caller
        re-orders by index, so reply order is irrelevant.
        """
        self._start()
        rules = tuple(rules)
        encoder = self._encoder
        task_lists = [
            self._slice(tasks_per_worker, worker)
            for worker in range(self.size)
        ]
        task_bufs = [
            encoder.encode_fire_tasks(rules, tasks) if tasks else None
            for tasks in task_lists
        ]
        task_payloads = [
            self._ship("fire", buf) if buf is not None else None
            for buf in task_bufs
        ]
        messages: list[tuple | None] = [
            ("fire", self._segment(worker), rules, task_payloads[worker])
            if task_payloads[worker] is not None
            else None
            for worker in range(self.size)
        ]
        try:
            replies = self._broadcast_and_gather(messages)
        finally:
            self._collect_segments()
        results: list[tuple[int, set[Atom]]] = []
        for _, reply in replies:
            decoded = wire.decode_fire_reply(encoder, reply)
            TRANSPORT_STATS.count_atoms_received(
                "fire", sum(len(atoms) for _, atoms in decoded)
            )
            results.extend(decoded)
        return results

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
