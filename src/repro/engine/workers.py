"""Persistent delta-fed process workers.

The legacy process backend of the round scheduler re-pickles the whole
``(rules, instance)`` context every round — the instance grows, so the
payload grows with it.  A :class:`WorkerPool` inverts that: each worker
process holds a *long-lived replica* of the instance, seeded once when the
pool first runs, and every later round ships only the **per-round delta**
(the atoms added since the replicas were last synced, straight from
:meth:`~repro.logic.instances.Instance.delta_since`).  Payload size is
proportional to what changed, not to what exists.

Protocol
--------
One duplex pipe per worker; every message is an explicitly pickled tuple
(explicit so the pool can account transport bytes in
:data:`TRANSPORT_STATS`):

``("seed", rules, atoms)``
    Replace the worker's rule list and rebuild its replica from scratch.
    Sent once per (pool, rule set) — at pool start, or if a caller reuses
    the pool under different rules.
``("enumerate"|"derive", sync_atoms, pivot_atoms)``
    One enumeration round: fold ``sync_atoms`` (the per-round delta) into
    the replica, then run the shared delta core with ``pivot_atoms`` (this
    worker's hash shards of the delta) as the pivot source against the
    full replica.  Replies with per-rule ``{image: hom}`` dicts
    (``enumerate``) or a derived atom set (``derive``).
``("probe", sync_atoms, rules, tasks)``
    The worker-resident half of the restricted chase's satisfaction
    claim (the *probe/claim* gate): fold ``sync_atoms`` into the replica,
    then, for each ``(index, rule_index, mapping)`` task — one
    existential-free trigger of the round — instantiate the ground head
    *once* and split it against the replica.  The reply pairs each index
    with ``(present, missing)``: the head atoms already in the replica
    and the would-be witnesses it lacks.  The parent resolves the final
    claims lazily from the ``missing`` sets while it records the round in
    canonical order (:meth:`RoundScheduler.fire_split_round
    <repro.engine.scheduler.RoundScheduler.fire_split_round>`), and the
    claimed triggers' outputs are exactly ``present ∪ missing`` — no
    second instantiation, parent- or worker-side.  The round's distinct
    rules ride along so probing works even before the first enumeration
    seeds the worker.
``("fire", rules, tasks)``
    Instantiate head atoms for a slice of a round's triggers.  Each task
    is ``(index, rule_index, mapping, existential_map)``; the reply pairs
    each index with the instantiated output atoms.  The distinct rules of
    the round ride along (a few hundred bytes) so firing works even
    before the first enumeration seeds the worker.
``("stop",)``
    Acknowledge and exit.

Workers never talk to each other and never allocate null names — the
parent draws every null from the run's :class:`~repro.logic.terms.FreshSupply`
in canonical trigger order and ships the assignments, which is what keeps
sharded firing bit-identical to the sequential engines (see
:meth:`repro.engine.scheduler.RoundScheduler.fire_round`).  Every
non-interleaved round the :class:`~repro.engine.runner.ChaseRunner`
policies produce fires this way — and the restricted chase's rounds with
existential-free triggers (pure *or* mixed with an existential remainder)
resolve their satisfaction probes worker-side through ``probe`` before
the parent's canonical-order recording walk finalizes the claims.

Failure handling: a failed or dead worker surfaces as
:class:`~repro.errors.ChaseError`, but only after every outstanding reply
of the round has been drained, and the pool is marked *broken* — its
replicas may have half-applied the round's sync and an undrained pipe
could hand a stale round reply to the next reader, so ``close()`` skips
the stop handshake on a broken pool and tears the processes down by
closing the pipes instead.

Pickled atoms/terms rebuild through ``__init__`` on arrival
(``Term.__reduce__``), so cached hashes are recomputed under the worker's
own ``PYTHONHASHSEED`` and replica indexes stay consistent.
"""

from __future__ import annotations

import multiprocessing
import pickle
import traceback
from typing import Iterable, Sequence

from repro.errors import ChaseError
from repro.logic.atoms import Atom
from repro.logic.instances import Instance
from repro.rules.rule import Rule

_PROTOCOL = pickle.HIGHEST_PROTOCOL


class TransportStats:
    """Byte/message counters for the pool's pipe traffic.

    Module-global (like ``MATCHER_STATS`` in the homomorphism matcher) so
    benchmarks can quantify the persistent mode's payload win over the
    per-round full-context pickles of the legacy process backend.
    ``context_bytes``/``context_pickles`` are fed by the scheduler's
    legacy blob cache for the same comparison.
    """

    __slots__ = (
        "bytes_sent",
        "bytes_received",
        "messages",
        "seeds",
        "probes",
        "context_bytes",
        "context_pickles",
    )

    def __init__(self):
        self.reset()

    def reset(self) -> None:
        self.bytes_sent = 0
        self.bytes_received = 0
        self.messages = 0
        self.seeds = 0
        self.probes = 0
        self.context_bytes = 0
        self.context_pickles = 0

    def snapshot(self) -> dict[str, int]:
        return {name: getattr(self, name) for name in self.__slots__}


#: Global transport counters; reset before a measured run.
TRANSPORT_STATS = TransportStats()


def fire_tasks(
    rules: Sequence[Rule], tasks: Iterable[tuple]
) -> list[tuple[int, set[Atom]]]:
    """Instantiate the head atoms of a slice of firing tasks.

    Each task is ``(index, rule_index, mapping, existential_map)``.  The
    instantiation is :meth:`Rule.instantiate_head
    <repro.rules.rule.Rule.instantiate_head>` — the same code
    :meth:`Trigger.output <repro.chase.trigger.Trigger.output>` runs, so
    a worker returns exactly the atoms the sequential engine would have
    produced.  Top-level so both process backends can ship it by
    reference.
    """
    return [
        (index, rules[rule_index].instantiate_head(mapping, existential_map))
        for index, rule_index, mapping, existential_map in tasks
    ]


def _fire_payload(payload: tuple) -> list[tuple[int, set[Atom]]]:
    """Legacy process-pool entry point for one firing slice."""
    rules, tasks = payload
    return fire_tasks(rules, tasks)


def probe_tasks(
    rules: Sequence[Rule], instance: Instance, tasks: Iterable[tuple]
) -> list[tuple[int, tuple[Atom, ...], tuple[Atom, ...]]]:
    """Instantiate and satisfaction-probe a slice of ground-head triggers.

    Each task is ``(index, rule_index, mapping)`` for an existential-free
    trigger: the body homomorphism grounds the whole head, so the head is
    instantiated exactly once and split against ``instance`` (the worker's
    replica, mirroring the chase instance at round start) into the atoms
    already ``present`` and the witnesses ``missing``.  The trigger is
    unsatisfied at round start iff ``missing`` is non-empty; the parent
    finalizes the claim against the atoms the round has recorded *before*
    the trigger (only the ``missing`` atoms need re-checking — ``present``
    atoms can never leave an append-only chase instance), and a claimed
    trigger's output is ``present ∪ missing``.  Atoms are sorted so the
    reply bytes are deterministic.
    """
    results: list[tuple[int, tuple[Atom, ...], tuple[Atom, ...]]] = []
    for index, rule_index, mapping in tasks:
        head = rules[rule_index].instantiate_head(mapping)
        present: list[Atom] = []
        missing: list[Atom] = []
        for head_atom in head:
            (present if head_atom in instance else missing).append(head_atom)
        results.append((index, tuple(sorted(present)), tuple(sorted(missing))))
    return results


def _worker_main(conn) -> None:
    """The long-lived worker loop: one replica, one rule list, per-round
    deltas in, per-round results out."""
    # Imported here (not at module top) to keep the spawn path lean: the
    # scheduler module pulls in the whole engine package.
    from repro.engine.scheduler import _run_shard

    rules: tuple[Rule, ...] = ()
    replica = Instance(add_top=False)
    while True:
        try:
            message = pickle.loads(conn.recv_bytes())
        except (EOFError, OSError):
            break
        command = message[0]
        if command == "stop":
            conn.send_bytes(pickle.dumps(("ok", None), _PROTOCOL))
            break
        try:
            if command == "seed":
                _, rules, atoms = message
                replica = Instance(atoms, add_top=False)
                reply = ("ok", len(replica))
            elif command in ("enumerate", "derive"):
                _, sync_atoms, pivot_atoms = message
                replica.update(sync_atoms)
                view = Instance(pivot_atoms, add_top=False)
                reply = ("ok", _run_shard(command, rules, replica, view))
            elif command == "probe":
                _, sync_atoms, probe_rules, tasks = message
                replica.update(sync_atoms)
                reply = ("ok", probe_tasks(probe_rules, replica, tasks))
            elif command == "fire":
                _, fire_rules, tasks = message
                reply = ("ok", fire_tasks(fire_rules, tasks))
            else:
                reply = ("error", f"unknown worker command {command!r}")
        except Exception:
            reply = ("error", traceback.format_exc())
        conn.send_bytes(pickle.dumps(reply, _PROTOCOL))
    conn.close()


class WorkerPool:
    """A fixed-size pool of persistent, delta-fed worker processes.

    Lifecycle: the pool spawns lazily on first use, is owned by one
    :class:`~repro.engine.scheduler.RoundScheduler` (and therefore one
    chase/closure run), and is torn down by the scheduler's ``close()`` —
    the same ``EngineConfig``-driven lifecycle as the legacy executors.

    Replica consistency: the pool tracks the revision its replicas are
    synced to and computes each round's sync payload with
    ``instance.delta_since`` — so rounds the scheduler chose to run inline
    (single non-empty shard) are transparently caught up on the next
    fanned-out round.
    """

    def __init__(self, size: int):
        if size < 1:
            raise ChaseError(
                f"a worker pool needs at least 1 worker, got {size}"
            )
        self.size = size
        self._connections: list = []
        self._processes: list = []
        self._started = False
        self._broken = False
        self._rules: tuple[Rule, ...] | None = None
        self._replica_revision = 0

    @property
    def broken(self) -> bool:
        """True once a round failed and the pipes can no longer be trusted."""
        return self._broken

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def _start(self) -> None:
        if self._broken:
            raise ChaseError(
                "this worker pool is broken after a failed round; "
                "close it and create a new pool"
            )
        if self._started:
            return
        try:
            context = multiprocessing.get_context("fork")
        except ValueError:  # pragma: no cover - non-POSIX platforms
            context = multiprocessing.get_context("spawn")
        for _ in range(self.size):
            parent_conn, child_conn = context.Pipe(duplex=True)
            process = context.Process(
                target=_worker_main, args=(child_conn,), daemon=True
            )
            process.start()
            child_conn.close()
            self._connections.append(parent_conn)
            self._processes.append(process)
        self._started = True

    def close(self) -> None:
        """Stop every worker and reap the processes (idempotent).

        On a healthy pool this is the stop handshake: every pipe is in
        lockstep (each sent message has had its reply read), so a ``stop``
        is acknowledged and the workers exit.  A *broken* pool never
        reuses its desynced pipes — a stale round reply could be misread
        as the stop ack — so the handshake is skipped and the processes
        are terminated outright (their replicas are scratch state; under
        the fork start method siblings hold inherited copies of each
        other's pipe ends, so closing the parent ends alone would not
        even unblock them).
        """
        if not self._started:
            return
        if self._broken:
            for conn in self._connections:
                try:
                    conn.close()
                except OSError:  # pragma: no cover - defensive
                    pass
            for process in self._processes:
                process.terminate()
                process.join(timeout=5.0)
        else:
            for conn in self._connections:
                try:
                    conn.send_bytes(pickle.dumps(("stop",), _PROTOCOL))
                except (BrokenPipeError, OSError):
                    continue
            for conn in self._connections:
                try:
                    if conn.poll(1.0):
                        conn.recv_bytes()
                except (EOFError, OSError):
                    pass
            for conn in self._connections:
                conn.close()
            for process in self._processes:
                process.join(timeout=5.0)
                if process.is_alive():  # pragma: no cover - defensive
                    process.terminate()
                    process.join(timeout=1.0)
        self._connections = []
        self._processes = []
        self._started = False
        self._rules = None
        self._replica_revision = 0

    # ------------------------------------------------------------------
    # Messaging
    # ------------------------------------------------------------------

    def _send_bytes(self, worker: int, blob: bytes) -> None:
        TRANSPORT_STATS.bytes_sent += len(blob)
        TRANSPORT_STATS.messages += 1
        self._connections[worker].send_bytes(blob)

    def _send(self, worker: int, message: tuple) -> None:
        self._send_bytes(worker, pickle.dumps(message, _PROTOCOL))

    def _receive(self, worker: int):
        try:
            blob = self._connections[worker].recv_bytes()
        except (EOFError, OSError) as exc:
            raise ChaseError(
                f"persistent worker {worker} died mid-round: {exc!r}"
            ) from exc
        TRANSPORT_STATS.bytes_received += len(blob)
        status, value = pickle.loads(blob)
        if status != "ok":
            raise ChaseError(
                f"persistent worker {worker} failed:\n{value}"
            )
        return value

    def _broadcast_and_gather(
        self, messages: Sequence[tuple | None]
    ) -> list[tuple[int, object]]:
        """Send one message per worker (None skips), gather the replies.

        Returns ``(worker, reply)`` pairs in worker order.  Repeated
        message *objects* (the seed broadcast, sync-only rounds) are
        pickled once and the same bytes written to every pipe — the
        protocol's largest payloads serialize O(1) times, not O(workers).

        A failed reply (worker error or death) does not abort the gather:
        every remaining sent worker is still drained first, so no pipe is
        left holding a stale round reply that a later reader (the stop
        handshake, a retried round) would misread as its own.  Only then
        is the first failure raised — and the pool marked broken, because
        the failed worker's replica state is unknown.
        """
        blobs: dict[int, bytes] = {}
        sent = []
        failure: ChaseError | None = None
        for worker, message in enumerate(messages):
            if message is None:
                continue
            blob = blobs.get(id(message))
            if blob is None:
                blob = pickle.dumps(message, _PROTOCOL)
                blobs[id(message)] = blob
            try:
                self._send_bytes(worker, blob)
            except (BrokenPipeError, OSError) as exc:
                # A dead worker at send time: stop broadcasting (the
                # round is lost either way) but still drain the workers
                # already sent to, below.
                failure = ChaseError(
                    f"persistent worker {worker} died mid-round: {exc!r}"
                )
                break
            sent.append(worker)
        replies: list[tuple[int, object]] = []
        for worker in sent:
            try:
                replies.append((worker, self._receive(worker)))
            except ChaseError as exc:
                if failure is None:
                    failure = exc
        if failure is not None:
            self._broken = True
            raise failure
        return replies

    # ------------------------------------------------------------------
    # Rounds
    # ------------------------------------------------------------------

    def _seed(self, rules: tuple[Rule, ...], instance: Instance) -> None:
        TRANSPORT_STATS.seeds += 1
        # One shared message object: the broadcast pickles it once.
        message = ("seed", rules, instance.sorted_atoms())
        self._broadcast_and_gather([message] * self.size)
        self._rules = rules
        self._replica_revision = instance.revision

    def run_round(
        self,
        mode: str,
        rules: Sequence[Rule],
        instance: Instance,
        pivots_per_worker: Sequence[list[Atom]],
    ) -> list:
        """Run one enumeration (or derivation) round across the pool.

        ``pivots_per_worker`` assigns each worker its slice of the round's
        delta as pivot source (the scheduler's hash-shard routing); the
        sync payload — everything the replicas have not seen yet — is
        computed here and shipped to *every* worker, so replicas always
        mirror the parent instance at round start.  Returns the non-empty
        workers' results in worker order (per-rule image dicts for
        ``enumerate``, derived atom sets for ``derive``).
        """
        self._start()
        rules = tuple(rules)
        if self._rules is None or rules != self._rules:
            self._seed(rules, instance)
        sync_atoms = instance.delta_since(self._replica_revision)
        self._replica_revision = instance.revision
        # One shared sync-only message for pivotless workers: the
        # broadcast pickles it once.
        sync_only = (mode, sync_atoms, []) if sync_atoms else None
        messages: list[tuple | None] = []
        gathered_workers: list[int] = []
        for worker in range(self.size):
            pivots = (
                pivots_per_worker[worker]
                if worker < len(pivots_per_worker)
                else []
            )
            if pivots:
                messages.append((mode, sync_atoms, pivots))
                gathered_workers.append(worker)
            else:
                messages.append(sync_only)
        replies = dict(self._broadcast_and_gather(messages))
        # Workers that only synced return empty results; keep the shape
        # (non-empty pivot slices only) the scheduler's merge expects.
        return [replies[worker] for worker in gathered_workers]

    def probe_round(
        self,
        rules: Sequence[Rule],
        instance: Instance,
        tasks_per_worker: Sequence[list[tuple]],
    ) -> list[tuple[int, tuple[Atom, ...], tuple[Atom, ...]]]:
        """Fan one round's satisfaction probes across the pool.

        ``rules`` are the round's distinct rules (shipped per message,
        like ``fire`` — the probe never reseeds the pool's resident rule
        list), ``tasks_per_worker`` assigns each worker its slice of the
        round's existential-free triggers as ``(index, rule_index,
        mapping)`` tasks.  The sync payload — everything the replicas have
        not seen yet — is computed here and shipped to *every* worker, so
        each probe runs against a replica mirroring the chase instance at
        round start.  Returns the concatenated ``(index, present,
        missing)`` triples; the caller re-orders by index, so reply order
        is irrelevant.
        """
        self._start()
        TRANSPORT_STATS.probes += 1
        rules = tuple(rules)
        sync_atoms = instance.delta_since(self._replica_revision)
        self._replica_revision = instance.revision
        # One shared sync-only message for taskless workers: the
        # broadcast pickles it once.
        sync_only = ("probe", sync_atoms, (), ()) if sync_atoms else None
        messages: list[tuple | None] = []
        for worker in range(self.size):
            tasks = (
                tasks_per_worker[worker]
                if worker < len(tasks_per_worker)
                else []
            )
            if tasks:
                messages.append(("probe", sync_atoms, rules, tasks))
            else:
                messages.append(sync_only)
        results: list[tuple[int, tuple[Atom, ...], tuple[Atom, ...]]] = []
        for _, per_worker in self._broadcast_and_gather(messages):
            results.extend(per_worker)
        return results

    def fire(
        self,
        rules: Sequence[Rule],
        tasks_per_worker: Sequence[list[tuple]],
    ) -> list[tuple[int, set[Atom]]]:
        """Fan one round's firing tasks across the pool.

        Returns the concatenated ``(index, output_atoms)`` pairs; the
        caller re-orders by index, so reply order is irrelevant.
        """
        self._start()
        rules = tuple(rules)
        messages: list[tuple | None] = [
            ("fire", rules, tasks) if tasks else None
            for tasks in tasks_per_worker
        ]
        results: list[tuple[int, set[Atom]]] = []
        for _, per_worker in self._broadcast_and_gather(messages):
            results.extend(per_worker)
        return results

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
