"""The unified saturation runner: one strategy-driven loop for every variant.

The paper's chase variants (oblivious, semi-oblivious, restricted) and the
semi-naive Datalog closure are all the *same* loop — enumerate the triggers
new against the last delta, gate them, fire, record, check budgets and the
fixpoint — differing only in a handful of strategy decisions.  This module
owns that loop once:

* :class:`ChaseRunner` — engine resolution, scheduler/worker-pool
  lifecycle, the per-round enumerate → gate → fire → record cycle, budget
  handling with strict/partial semantics, fixpoint detection, and the
  supply rewind on a mid-round budget stop.
* :class:`VariantPolicy` — the small strategy surface that actually
  differs per variant: how triggers are enumerated (delta-filtered or by
  naive re-match against a seen set), the claim gate (none, frontier-class
  dedup, or the restricted chase's satisfaction check), the firing mode of
  each round (batched-shardable vs interleaved), and the budget-exceeded
  wording of round-vs-level accounting.

The chase variants (:mod:`repro.chase.oblivious`,
:mod:`repro.chase.semi_oblivious`, :mod:`repro.chase.restricted`) and the
Datalog closure (:mod:`repro.rewriting.datalog`) are thin policy
declarations over this runner; engine features — new backends, sharded
firing, adaptive routing — land here once instead of once per variant.

Delta-driven satisfaction and sharded restricted firing
-------------------------------------------------------
The restricted chase historically forced *interleaved* firing: its claim
(the head-satisfaction check) reads the instance as it grows within the
round, so triggers had to be claimed, instantiated and recorded one at a
time.  The runner's :class:`RoundPlan` lets the restricted policy mark
any round containing existential-free triggers as a *split* round
instead: those triggers' outputs are fully determined by their body
homomorphisms, so their heads are instantiated up front — sharded across
the persistent pool's worker replicas via the ``probe`` protocol
command, which also pre-resolves each head's round-start satisfaction
witnesses — while the claims themselves still run lazily, in canonical
order, inside one amortized recording pass that interleaves the (small)
existential remainder's satisfaction checks in place.  Mixed rounds
therefore no longer interleave everything: only the existential triggers
do, and the rest fans out — bit-identically to the interleaved reference
(same claims, same canonical firing order, same provenance records,
null names and budget-stop positions).

Import layering
---------------
``repro.engine`` sits *below* ``repro.chase`` (the trigger module builds
on :mod:`repro.engine.core`), so this module imports the trigger/result
layer lazily inside its methods — the runner is importable from either
direction without cycles.
"""

from __future__ import annotations

import time
from typing import TYPE_CHECKING, Callable, Iterable, NamedTuple, Sequence

from repro.engine.batch import fire_round
from repro.engine.config import EngineConfig, resolve_engine
from repro.engine.core import derive_delta_atoms
from repro.engine.scheduler import RoundScheduler
from repro.engine.workers import TRANSPORT_STATS
from repro.errors import ChaseBudgetExceeded, ChaseError
from repro.logic.terms import FreshSupply
from repro.obs import default_registry
from repro.obs.trace import TRACE_SCHEMA_VERSION, RunTrace, active_round

if TYPE_CHECKING:  # annotation-only: keeps engine importable below chase
    from repro.chase.result import ChaseResult
    from repro.chase.trigger import Trigger
    from repro.logic.atoms import Atom
    from repro.logic.instances import Instance
    from repro.rules.ruleset import RuleSet


class RoundPlan(NamedTuple):
    """How one round fires: the claim gate and the firing mode.

    ``claim`` is evaluated in canonical firing order, exactly once per
    trigger (it may be stateful); ``None`` fires everything.  With
    ``interleaved=False`` the round goes through the batched recording
    pass — and through sharded firing when the engine backend supports it;
    ``interleaved=True`` records each application before the next claim
    runs, for gates that must observe mid-round growth.

    ``split=True`` marks a restricted *split* round — one containing
    existential-free triggers whose ground outputs double as their own
    satisfaction witnesses.  Such a round ignores ``claim``: the
    existential-free triggers are instantiated up front (sharded across
    worker replicas via the ``probe`` protocol on a persistent backend)
    and the round records in one canonical-order lazy pass that gates
    each probed trigger by witness membership and interleaves the
    existential remainder's satisfaction checks in place — bit-identical
    to the fully interleaved reference, mixed rounds included.
    """

    claim: Callable[["Trigger"], bool] | None
    interleaved: bool
    split: bool = False


#: The plan of an ungated batched round (the oblivious chase's only plan).
FIRE_ALL = RoundPlan(claim=None, interleaved=False)


class VariantPolicy:
    """The strategy surface of one saturation variant.

    A policy instance is created per run (it may carry per-run state such
    as the naive engine's seen set or the semi-oblivious frontier classes)
    and handed to :class:`ChaseRunner`, which owns everything else.  The
    base class implements the common case — unfiltered delta enumeration,
    ungated batched firing, level accounting — so concrete policies only
    override what genuinely differs.
    """

    #: Human-readable variant name, used in budget-exceeded messages.
    variant = "chase"
    #: Prefix of the run's default :class:`~repro.logic.terms.FreshSupply`.
    supply_prefix = "_n"
    #: True for saturation policies without trigger identity (the Datalog
    #: closure): rounds derive atom sets instead of firing triggers.
    derivation = False
    #: Stop (fixpoint) as soon as a round enumerates no new triggers.
    stop_on_empty_round = True
    #: Stop (fixpoint) when a fired round recorded no applications — the
    #: restricted chase's convergence rule.
    stop_on_idle_round = False
    #: After the step budget runs out, enumerate once more to distinguish
    #: "stopped exactly at the fixpoint" from a genuine budget stop.
    probe_fixpoint = True
    #: What a step is called in budget messages (``levels`` or ``rounds``).
    step_noun = "levels"

    # -- enumeration ---------------------------------------------------

    def filter_new(self, triggers: Iterable["Trigger"]) -> list["Trigger"]:
        """Post-filter the delta/parallel enumeration of one round."""
        return triggers if isinstance(triggers, list) else list(triggers)

    def naive_new_triggers(
        self, instance: "Instance", rules: "RuleSet"
    ) -> list["Trigger"]:
        """One round of the naive engine: full re-match minus the seen set.

        The policy owns the seen-set bookkeeping (trigger identity for the
        oblivious/restricted variants, frontier classes for the
        semi-oblivious one) and must register the returned triggers so the
        next round does not re-fire them.
        """
        raise NotImplementedError

    # -- fixpoint probe ------------------------------------------------

    def naive_has_remaining(
        self, instance: "Instance", rules: "RuleSet"
    ) -> bool:
        """Existence probe after the step budget, naive engine."""
        raise NotImplementedError

    def delta_has_remaining(
        self, instance: "Instance", rules: "RuleSet", delta: list["Atom"]
    ) -> bool:
        """Existence probe after the step budget, delta engines.

        Existence-only, so the sequential enumeration serves every engine
        (the parallel scheduler is already closed when this runs).
        """
        from repro.chase.trigger import new_triggers_of

        remaining = new_triggers_of(instance, rules, delta)
        return any(True for _ in remaining)

    # -- firing --------------------------------------------------------

    def plan_round(
        self, result: "ChaseResult", triggers: Sequence["Trigger"]
    ) -> RoundPlan:
        """Choose the claim gate and firing mode of one round."""
        return FIRE_ALL

    # -- goal-directed stopping ----------------------------------------

    def begin_run(self, result: "ChaseResult") -> None:
        """Observe the run's result object before the first round.

        Called once per trigger-mode run, after the initial instance copy
        is made but before any round executes — a policy that probes the
        growing instance (e.g. the serving layer's goal-directed
        entailment) anchors its ``delta_since`` watermark here.
        """

    def round_complete(self, result: "ChaseResult") -> bool:
        """Post-round hook; return True to stop the run at this round.

        Evaluated after the round's applications are recorded (and after
        the idle-round fixpoint check).  A True return is a *goal stop*:
        the run ends with ``result.stopped_on_goal`` set and without the
        post-budget fixpoint probe — the instance is a sound chase prefix,
        not necessarily the full chase.  The default never stops, so the
        existing variants are unaffected.  While the round is traced the
        hook's wall-clock lands on the ``probe`` phase.
        """
        return False

    # -- budget wording ------------------------------------------------

    def atom_budget_message(self, max_atoms: int, step: int) -> str:
        return f"{self.variant} exceeded {max_atoms} atoms"

    def step_budget_message(self, max_steps: int) -> str:
        return (
            f"{self.variant} did not terminate within "
            f"{max_steps} {self.step_noun}"
        )


class FixpointOutcome(NamedTuple):
    """What a :meth:`ChaseRunner.fixpoint` run reports back.

    ``complete`` is True only when the frontier genuinely emptied — a set
    fixpoint, not a budget stop.  ``rounds`` counts the expansion rounds
    that ran to completion; ``telemetry`` is the PR-7-style registry
    snapshot of the run (``None`` only when collection was impossible).
    """

    complete: bool
    rounds: int
    telemetry: dict | None = None


class FixpointPolicy(VariantPolicy):
    """A saturation policy over arbitrary items instead of instance atoms.

    The breadth-first loops that do not grow an :class:`Instance` — the
    UCQ piece-rewriter being the canonical case — still share the
    runner's shape: expand a frontier, fold the new items in, stop on an
    empty frontier or a budget.  A :class:`FixpointPolicy` owns the item
    universe (the accumulated set, subsumption/dedup, per-item budgets)
    and the runner owns the loop: round tracing (``plan="expand"``),
    strict/partial budget semantics, and the telemetry scope.

    ``expand`` returns the items that are *new* this round (the next
    frontier); the policy registers them against its accumulated state
    itself.  ``exhausted`` is consulted after each expansion: True means
    a per-round budget (e.g. a disjunct cap) truncated the expansion, so
    the run must stop *incomplete* even if the frontier looks empty.
    """

    variant = "fixpoint"
    step_noun = "rounds"

    def expand(self, frontier: list) -> list:
        """One breadth round: the new items reachable from ``frontier``."""
        raise NotImplementedError

    def exhausted(self) -> bool:
        """True when a mid-round budget truncated the last expansion."""
        return False


class ChaseRunner:
    """The saturation loop every chase variant and closure runs through.

    One runner serves one run: it resolves the engine, owns the parallel
    scheduler's lifecycle (and through it the worker pool's), executes the
    per-round enumerate → gate → fire → record cycle, enforces the atom
    and step budgets with strict/partial semantics, and detects the
    fixpoint.  Everything variant-specific is delegated to the
    :class:`VariantPolicy`.

    Parameters
    ----------
    policy:
        The per-run strategy instance.
    engine:
        A registered engine name or an explicit :class:`EngineConfig`.
    max_steps:
        The level/round budget (the policy's ``step_noun`` names it).
    max_atoms:
        Abort (or raise, with ``strict=True``) when the instance outgrows
        this budget mid-round.
    strict:
        When True, exceeding a budget raises
        :class:`~repro.errors.ChaseBudgetExceeded` instead of returning
        the partial result.
    supply:
        The run's fresh-null supply; defaults to a new supply with the
        policy's prefix.
    trace:
        An optional :class:`~repro.obs.trace.RunTrace`.  When given, the
        runner emits one structured record per round — disjoint phase
        timers (enumerate/gate/fire/record/sync/probe), trigger and
        new-atom counts, the round plan, per-shard routing weights, and
        transport byte / worker-time deltas — plus a run header and a
        final summary.  Tracing never changes results: the engine hooks
        are no-ops while no round is active.
    """

    def __init__(
        self,
        policy: VariantPolicy,
        engine: str | EngineConfig = "delta",
        *,
        max_steps: int,
        max_atoms: int,
        strict: bool = False,
        supply: FreshSupply | None = None,
        trace: RunTrace | None = None,
    ):
        self.policy = policy
        self.config = resolve_engine(engine)
        self.max_steps = max_steps
        self.max_atoms = max_atoms
        self.strict = strict
        self.supply = supply or FreshSupply(prefix=policy.supply_prefix)
        self.trace = trace
        self._seen_revision = 0
        self._scheduler: RoundScheduler | None = None
        self._used = False

    def _begin_trace(self, mode: str) -> None:
        if self.trace is not None:
            self.trace.begin_run(
                variant=self.policy.variant,
                engine=self.config.name,
                mode=mode,
                workers=self.config.workers,
                shards=self.config.shard_count,
                max_steps=self.max_steps,
                max_atoms=self.max_atoms,
            )

    # ------------------------------------------------------------------
    # Trigger-mode runs (the three chase variants)
    # ------------------------------------------------------------------

    def run(self, instance: "Instance", rules: "RuleSet") -> "ChaseResult":
        """Run the policy's chase from ``instance`` under ``rules``.

        Returns the :class:`~repro.chase.result.ChaseResult` with full
        timestamps and provenance; all engines produce bit-identical
        results (same atoms, levels, null names, provenance records and
        budget-stop supply positions) for every worker/shard count.

        The run executes inside a :meth:`MetricsRegistry.collect
        <repro.obs.registry.MetricsRegistry.collect>` scope of the
        default registry; the counter deltas it isolates land on
        ``result.telemetry`` (also on the strict-mode partial result).
        """
        from repro.chase.result import ChaseResult

        self._claim_run()
        result = ChaseResult(instance)
        self.policy.begin_run(result)
        self._begin_trace("trigger")
        try:
            with default_registry().collect() as scope:
                self._run_rounds(result, rules)
        finally:
            result.telemetry = {
                "schema_version": TRACE_SCHEMA_VERSION,
                "registry": scope.delta,
            }
            if self.trace is not None:
                self.trace.finish_run(
                    terminated=result.terminated, **result.statistics()
                )
        return result

    def _run_rounds(self, result: "ChaseResult", rules: "RuleSet") -> None:
        """The per-round loop of a trigger-mode run.

        Mutates ``result`` in place (levels, termination flag) so every
        stop path — fixpoint, budget, strict raise — leaves it
        consistent for the :meth:`run` wrapper to finalize.
        """
        policy = self.policy
        trace = self.trace
        self._open()
        try:
            for step in range(self.max_steps):
                recorder = None
                if trace is not None:
                    recorder = trace.begin_round(step + 1)
                    atoms_before = len(result.instance)
                    sent_before = TRANSPORT_STATS.bytes_sent
                    received_before = TRANSPORT_STATS.bytes_received
                    worker_before = TRANSPORT_STATS.worker_totals()
                triggers_count = 0
                applied = 0
                try:
                    if recorder is not None:
                        with recorder.outer_phase("enumerate"):
                            triggers = self._new_triggers(
                                result.instance, rules
                            )
                    else:
                        triggers = self._new_triggers(result.instance, rules)
                    triggers_count = len(triggers)
                    if policy.stop_on_empty_round and not triggers:
                        result.terminated = True
                        result.levels_completed = step
                        return
                    plan = policy.plan_round(result, triggers)
                    if recorder is not None:
                        recorder.plan = (
                            "split"
                            if plan.split
                            else "interleaved"
                            if plan.interleaved
                            else "batched"
                        )
                        with recorder.outer_phase("fire"):
                            outcome = fire_round(
                                result,
                                triggers,
                                self.supply,
                                level=step + 1,
                                max_atoms=self.max_atoms,
                                claim=plan.claim,
                                interleaved=plan.interleaved,
                                split=plan.split,
                                scheduler=self._scheduler,
                            )
                    else:
                        outcome = fire_round(
                            result,
                            triggers,
                            self.supply,
                            level=step + 1,
                            max_atoms=self.max_atoms,
                            claim=plan.claim,
                            interleaved=plan.interleaved,
                            split=plan.split,
                            scheduler=self._scheduler,
                        )
                    applied = outcome.applied
                    if outcome.budget_exceeded:
                        result.levels_completed = step
                        if self.strict:
                            raise ChaseBudgetExceeded(
                                policy.atom_budget_message(
                                    self.max_atoms, step + 1
                                ),
                                partial_result=result,
                            )
                        return
                    result.levels_completed = step + 1
                    if policy.stop_on_idle_round and not outcome.applied:
                        result.terminated = True
                        return
                    if recorder is not None:
                        with recorder.outer_phase("probe"):
                            goal_stop = policy.round_complete(result)
                    else:
                        goal_stop = policy.round_complete(result)
                    if goal_stop:
                        result.stopped_on_goal = True
                        return
                finally:
                    if recorder is not None:
                        worker_after = TRANSPORT_STATS.worker_totals()
                        trace.end_round(
                            recorder,
                            triggers=triggers_count,
                            applied=applied,
                            new_atoms=len(result.instance) - atoms_before,
                            transport={
                                "bytes_sent": (
                                    TRANSPORT_STATS.bytes_sent - sent_before
                                ),
                                "bytes_received": (
                                    TRANSPORT_STATS.bytes_received
                                    - received_before
                                ),
                            },
                            worker={
                                key: worker_after[key] - worker_before[key]
                                for key in worker_after
                            },
                        )
        finally:
            self._close()

        if policy.probe_fixpoint and not self._has_remaining(
            result.instance, rules
        ):
            result.terminated = True
        elif self.strict:
            raise ChaseBudgetExceeded(
                policy.step_budget_message(self.max_steps),
                partial_result=result,
            )

    def _new_triggers(
        self, instance: "Instance", rules: "RuleSet"
    ) -> list["Trigger"]:
        """Enumerate one round's candidate triggers on the run's engine."""
        from repro.chase.trigger import new_triggers_of, parallel_new_triggers_of

        policy = self.policy
        if self.config.is_naive:
            return policy.naive_new_triggers(instance, rules)
        delta = instance.delta_since(self._seen_revision)
        self._seen_revision = instance.revision
        recorder = active_round()
        if recorder is not None:
            recorder.delta_atoms = len(delta)
        if self._scheduler is not None:
            enumerated: Iterable["Trigger"] = parallel_new_triggers_of(
                instance, rules, delta, self._scheduler
            )
        else:
            enumerated = new_triggers_of(instance, rules, delta)
        return policy.filter_new(enumerated)

    def _has_remaining(self, instance: "Instance", rules: "RuleSet") -> bool:
        """The post-budget fixpoint probe."""
        if self.config.is_naive:
            return self.policy.naive_has_remaining(instance, rules)
        delta = instance.delta_since(self._seen_revision)
        return self.policy.delta_has_remaining(instance, rules, delta)

    # ------------------------------------------------------------------
    # Derivation-mode runs (the Datalog closure)
    # ------------------------------------------------------------------

    def saturate(self, instance: "Instance", rules: "RuleSet") -> "Instance":
        """Run a derivation-mode saturation to its set fixpoint.

        The loop of the semi-naive Datalog closure: each round derives the
        head atoms whose body uses at least one delta atom — with no
        trigger identity or provenance, which is all a saturation needs —
        and folds the new ones in.  Budget violations always raise (a
        closure has no meaningful partial-result mode); the overgrown or
        unconverged instance rides along as ``partial_result``.

        With a :class:`~repro.obs.trace.RunTrace` attached each round is
        recorded with ``plan="derive"``: the derivation sweep lands on
        the ``enumerate`` phase, the fold-in of new atoms on ``record``.
        """
        self._claim_run()
        policy = self.policy
        total = instance.copy()
        trace = self.trace
        self._begin_trace("derivation")
        self._open()
        try:
            for step in range(self.max_steps):
                recorder = None
                if trace is not None:
                    recorder = trace.begin_round(step + 1)
                    recorder.plan = "derive"
                    sent_before = TRANSPORT_STATS.bytes_sent
                    received_before = TRANSPORT_STATS.bytes_received
                    worker_before = TRANSPORT_STATS.worker_totals()
                derived_count = 0
                new_count = 0
                try:
                    if recorder is not None:
                        with recorder.outer_phase("enumerate"):
                            derived = self._derive(total, rules)
                        start = time.perf_counter()
                        new_atoms = {a for a in derived if a not in total}
                        if new_atoms:
                            total.update(new_atoms)
                        recorder.add_phase(
                            "record", time.perf_counter() - start
                        )
                    else:
                        derived = self._derive(total, rules)
                        new_atoms = {a for a in derived if a not in total}
                        if new_atoms:
                            total.update(new_atoms)
                    derived_count = len(derived)
                    new_count = len(new_atoms)
                finally:
                    if recorder is not None:
                        worker_after = TRANSPORT_STATS.worker_totals()
                        trace.end_round(
                            recorder,
                            triggers=derived_count,
                            applied=new_count,
                            new_atoms=new_count,
                            transport={
                                "bytes_sent": (
                                    TRANSPORT_STATS.bytes_sent - sent_before
                                ),
                                "bytes_received": (
                                    TRANSPORT_STATS.bytes_received
                                    - received_before
                                ),
                            },
                            worker={
                                key: worker_after[key] - worker_before[key]
                                for key in worker_after
                            },
                        )
                if not new_atoms:
                    if trace is not None:
                        trace.finish_run(
                            terminated=True, atoms=len(total), rounds=step
                        )
                    return total
                if len(total) > self.max_atoms:
                    raise ChaseBudgetExceeded(
                        policy.atom_budget_message(self.max_atoms, 0),
                        partial_result=total,
                    )
        finally:
            self._close()
        raise ChaseBudgetExceeded(
            policy.step_budget_message(self.max_steps),
            partial_result=total,
        )

    def _derive(self, total: "Instance", rules: "RuleSet") -> set["Atom"]:
        """One derivation round on the run's engine.

        ``naive`` re-derives from the whole instance; the sequential delta
        path streams the canonical trigger enumeration (the chase
        variants' inner loop — the reference the batched derivation mode
        is benchmarked against); the parallel scheduler runs the sharded
        batched derivation mode.
        """
        if self.config.is_naive:
            derived: set["Atom"] = set()
            for rule in rules:
                derived.update(derive_delta_atoms(rule, total, total))
            return derived
        delta = total.delta_since(self._seen_revision)
        self._seen_revision = total.revision
        recorder = active_round()
        if recorder is not None:
            recorder.delta_atoms = len(delta)
        if self._scheduler is not None:
            return self._scheduler.derive_atoms(total, rules, delta)
        from repro.chase.trigger import new_triggers_of

        derived = set()
        for trigger in new_triggers_of(total, rules, delta):
            derived.update(trigger.mapping.apply_atoms(trigger.rule.head))
        return derived

    # ------------------------------------------------------------------
    # Fixpoint-mode runs (non-instance breadth loops)
    # ------------------------------------------------------------------

    def fixpoint(self, frontier: Iterable) -> FixpointOutcome:
        """Run a :class:`FixpointPolicy` breadth loop to its fixpoint.

        The frontier items are opaque to the runner (CQs for the
        rewriter); each round hands the current frontier to
        ``policy.expand`` and adopts the returned new items as the next
        one.  An empty expansion is the fixpoint; ``policy.exhausted()``
        turning True is a mid-round budget stop; running out of
        ``max_steps`` rounds is a depth stop.  Budget stops return an
        incomplete :class:`FixpointOutcome` — or raise
        :class:`~repro.errors.ChaseBudgetExceeded` under ``strict=True``
        (unless the policy already raised a more specific error inside
        ``expand``, which wins).

        No scheduler is opened: expansion is pure frontier computation,
        so the engine backends have nothing to shard.  Round tracing and
        the telemetry collect scope work exactly as in the other modes;
        the expansion sweep lands on the ``enumerate`` phase with
        ``plan="expand"`` and ``delta_atoms`` carrying the frontier size.
        """
        self._claim_run()
        trace = self.trace
        self._begin_trace("fixpoint")
        current = list(frontier)
        try:
            with default_registry().collect() as scope:
                outcome = self._fixpoint_rounds(current)
        finally:
            if trace is not None and trace.summary is None:
                trace.finish_run(terminated=False, rounds=self.max_steps)
        return outcome._replace(
            telemetry={
                "schema_version": TRACE_SCHEMA_VERSION,
                "registry": scope.delta,
            }
        )

    def _fixpoint_rounds(self, current: list) -> FixpointOutcome:
        policy = self.policy
        trace = self.trace
        for step in range(self.max_steps):
            recorder = None
            if trace is not None:
                recorder = trace.begin_round(step + 1)
                recorder.plan = "expand"
                recorder.delta_atoms = len(current)
            new_count = 0
            try:
                if recorder is not None:
                    with recorder.outer_phase("enumerate"):
                        new = policy.expand(current)
                else:
                    new = policy.expand(current)
                new_count = len(new)
            finally:
                if recorder is not None:
                    trace.end_round(
                        recorder,
                        triggers=len(current),
                        applied=new_count,
                        new_atoms=new_count,
                    )
            if policy.exhausted():
                if self.strict:
                    raise ChaseBudgetExceeded(
                        policy.atom_budget_message(self.max_atoms, step + 1)
                    )
                if trace is not None:
                    trace.finish_run(terminated=False, rounds=step + 1)
                return FixpointOutcome(False, step + 1)
            if not new:
                if trace is not None:
                    trace.finish_run(terminated=True, rounds=step)
                return FixpointOutcome(True, step)
            current = new
        if self.strict:
            raise ChaseBudgetExceeded(
                policy.step_budget_message(self.max_steps)
            )
        if trace is not None:
            trace.finish_run(terminated=False, rounds=self.max_steps)
        return FixpointOutcome(False, self.max_steps)

    # ------------------------------------------------------------------
    # Scheduler lifecycle
    # ------------------------------------------------------------------

    def _claim_run(self) -> None:
        """Reject reuse: one runner serves one run.

        The revision watermark and the policy's per-run state (seen sets,
        fired frontier classes) are meaningless against a second instance,
        so a reused runner would silently enumerate a wrong delta —
        raising is the only safe behavior.
        """
        if self._used:
            raise ChaseError(
                "a ChaseRunner serves exactly one run; construct a new "
                "runner (and policy) per chase or closure"
            )
        self._used = True

    def _open(self) -> None:
        if self.config.is_parallel and self._scheduler is None:
            self._scheduler = RoundScheduler(self.config)

    def _close(self) -> None:
        if self._scheduler is not None:
            self._scheduler.close()
            self._scheduler = None
