"""Hash-sharded positional indexing for parallel delta enumeration.

A :class:`ShardedIndex` partitions the atoms of a growing instance across
``W`` shards by stable atom hash.  With ``track_shards=True`` each shard
is itself an :class:`~repro.logic.instances.Instance`, so it carries the
full positional index ``(predicate, position, term) -> atoms`` and its own
revision log — ``delta_since`` works per shard exactly as it does on the
parent instance.

The parallel round scheduler feeds each worker the *delta view* of one
shard (the shard's slice of the atoms added since the last round) as its
pivot-candidate source; the union of the views is the round's delta, so
the merged enumeration is exactly the sequential one.  Because chase
deltas are disjoint by construction the scheduler runs with
``track_shards=False``: atoms route straight into the per-round views and
no second copy of the instance's indexes is kept.  Shard assignment is
hash-based and therefore arbitrary — no result may depend on it, which
the cross-engine equivalence tests enforce by varying worker/shard counts.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.engine import wire
from repro.engine.columnar import ColumnarInstance, Vocabulary
from repro.errors import ChaseError
from repro.logic.atoms import Atom
from repro.logic.instances import Instance

def atom_weight(atom: Atom) -> int:
    """Wire-transport cost of one atom, in ids.

    Exactly what the atom occupies in a packed sync/pivot buffer of the
    interned-term transport (:mod:`repro.engine.wire`): one predicate id
    plus one term id per argument.  Each id costs 1–5 varint bytes on
    the wire (1 for the dense common case), so weights and sync share
    one encoding — a shard's weight is proportional, up to varint width
    and the one-time symbol-table entries, to the bytes its atoms cost
    to ship — and the adaptive router balances the quantity the
    persistent pool actually pays for.  Arity-awareness is what
    distinguishes a shard of wide atoms from a shard of narrow ones.
    """
    return 1 + len(atom.args)


class ShardedIndex:
    """Atoms of an append-only instance, partitioned into hash shards.

    Each atom lives in exactly one shard, so the shards' union equals the
    ingested atom set.  ``track_shards=False`` keeps only per-shard
    counters instead of cumulative shard instances: :meth:`ingest` then
    trusts the caller to never re-ingest an atom (true of ``delta_since``
    streams), and the cumulative accessors raise :class:`ChaseError`.
    The scheduler runs untracked; tracked mode (cumulative shard indexes
    + per-shard ``delta_since``) is the state a persistent-worker backend
    replicates per process.

    Tracked mode is *columnar* when an ``encoder`` is supplied: each
    shard is then an id-native
    :class:`~repro.engine.columnar.ColumnarInstance` keyed on the
    encoder's symbol tables, every ingested atom is interned exactly
    once, and :meth:`packed_deltas_since` serves per-shard wire buffers
    by slicing each shard's wire log instead of re-encoding atoms — the
    shard state and the transport share one encoding.
    """

    __slots__ = ("_shards", "_encoder", "_counts", "_weights", "_ingested")

    def __init__(
        self,
        shard_count: int,
        track_shards: bool = True,
        encoder: "wire.WireEncoder | None" = None,
    ):
        if shard_count < 1:
            raise ChaseError(
                f"a sharded index needs at least 1 shard, got {shard_count}"
            )
        if encoder is not None and not track_shards:
            raise ChaseError(
                "columnar shards require track_shards=True — untracked "
                "mode keeps no shard state to key on the encoder"
            )
        self._encoder = encoder
        if not track_shards:
            self._shards = None
        elif encoder is not None:
            vocabulary = Vocabulary.of_encoder(encoder)
            self._shards = tuple(
                ColumnarInstance(vocabulary) for _ in range(shard_count)
            )
        else:
            self._shards = tuple(
                Instance(add_top=False) for _ in range(shard_count)
            )
        self._counts = [0] * shard_count
        self._weights = [0] * shard_count
        self._ingested = 0

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------

    @property
    def shard_count(self) -> int:
        return len(self._counts)

    def __len__(self) -> int:
        """Number of atoms ingested (equals the sum of the shard sizes)."""
        return self._ingested

    def shard_of(self, atom: Atom) -> int:
        """The shard an atom routes to (stable within a process)."""
        # checks: allow[D102] -- routing only decides *which worker* computes;
        # outputs re-merge by canonical trigger index, so results are
        # bit-identical across routings (pinned by the equivalence matrix).
        return hash(atom) % len(self._counts)

    def _tracked(self) -> tuple[Instance, ...]:
        if self._shards is None:
            raise ChaseError(
                "this sharded index was created with track_shards=False; "
                "cumulative shard contents are not kept"
            )
        return self._shards

    def shard(self, index: int) -> "Instance | ColumnarInstance":
        """The cumulative contents of one shard (a positional-indexed
        instance — columnar when the index was built with an encoder;
        treat as read-only)."""
        return self._tracked()[index]

    def shards(self) -> "tuple[Instance | ColumnarInstance, ...]":
        return self._tracked()

    def ingest(self, atoms: Iterable[Atom]) -> tuple[Instance, ...]:
        """Route ``atoms`` into their shards; return this batch's views.

        The views are small positional-indexed instances, one per shard,
        holding exactly the freshly routed atoms — the per-shard delta the
        scheduler hands each enumeration worker.  Empty views are returned
        too (callers skip them) so view index == shard index.  In tracked
        mode an already-ingested atom is dropped; untracked mode assumes
        the caller streams each atom at most once.
        """
        shards = self._shards
        encoder = self._encoder
        counts = self._counts
        count = len(counts)
        views = tuple(Instance(add_top=False) for _ in range(count))
        ingested = 0
        weights = self._weights
        for atom in atoms:
            # checks: allow[D102] -- same routing-only bucketing as shard_of.
            index = hash(atom) % count
            if shards is not None:
                added = (
                    shards[index].add_atom(atom, encoder)
                    if encoder is not None
                    else shards[index].add(atom)
                )
                if not added:
                    continue
            if views[index].add(atom):
                counts[index] += 1
                weights[index] += atom_weight(atom)
                ingested += 1
        self._ingested += ingested
        return views

    # ------------------------------------------------------------------
    # Per-shard deltas
    # ------------------------------------------------------------------

    def revision_marks(self) -> tuple[int, ...]:
        """Snapshot of every shard's revision counter (tracked mode).

        Pair with :meth:`deltas_since` for per-shard incremental reads
        that are independent of :meth:`ingest` batch boundaries.
        """
        return tuple(s.revision for s in self._tracked())

    def deltas_since(self, marks: Sequence[int]) -> list[list[Atom]]:
        """Per-shard atoms added after the given revision marks."""
        shards = self._tracked()
        if len(marks) != len(shards):
            raise ChaseError(
                f"expected {len(shards)} revision marks, got {len(marks)}"
            )
        if self._encoder is not None:
            return [
                shard.delta_atoms_since(mark)
                for shard, mark in zip(shards, marks)
            ]
        return [
            shard.delta_since(mark) for shard, mark in zip(shards, marks)
        ]

    def packed_deltas_since(
        self,
        marks: Sequence[int],
        encoder: "wire.WireEncoder | None" = None,
    ) -> list[bytes]:
        """Per-shard deltas, packed in the wire encoding (tracked mode).

        The replica-per-shard transport path.  Columnar shards serve
        this by *slicing* their append-only wire logs
        (:meth:`~repro.engine.columnar.ColumnarInstance.packed_delta_since`)
        — each atom was encoded exactly once, at ingest.  Object-level
        shards re-encode their ``delta_since`` stream through
        ``encoder`` (required in that mode), so the bytes a shard costs
        to ship are exactly its :func:`atom_weight` sum (plus the
        one-time symbol-table entries the encoder has not interned yet).
        """
        shards = self._tracked()
        if self._encoder is not None:
            if len(marks) != len(shards):
                raise ChaseError(
                    f"expected {len(shards)} revision marks, "
                    f"got {len(marks)}"
                )
            return [
                shard.packed_delta_since(mark)
                for shard, mark in zip(shards, marks)
            ]
        if encoder is None:
            raise ChaseError(
                "object-level shards need an encoder to pack deltas; "
                "build the index with encoder=... for sliced columnar "
                "deltas"
            )
        return [
            encoder.encode_atoms(delta)
            for delta in self.deltas_since(marks)
        ]

    def sizes(self) -> tuple[int, ...]:
        """Per-shard atom counts (load-balance diagnostics)."""
        return tuple(self._counts)

    def weights(self) -> tuple[int, ...]:
        """Cumulative per-shard estimated byte weights (diagnostics).

        The same :func:`atom_weight` estimate the size-balanced
        (``adaptive_routing``) scheduler placement applies to each
        round's shard views, accumulated over the run — the companion of
        :meth:`sizes` for judging whether a workload's shards are skewed
        by bytes rather than by atom count.  Accounting only: neither
        can ever affect results.
        """
        return tuple(self._weights)
