"""Shared-memory transport for the persistent pool's large payloads.

The pool's pipes carry two very different kinds of traffic: small
control envelopes (command tags, marks, rule indexes — tens of bytes)
and the packed atom streams that dominate ``TRANSPORT_STATS`` (seed
rows, per-round sync deltas, pivot buffers — kilobytes).  This module
moves the second kind off the pipe: payloads at or above a size
threshold are written into a :mod:`multiprocessing.shared_memory`
segment owned by a parent-side :class:`SegmentPool`, and the pickle
envelope carries only a :class:`SegmentRef` — ``(name, generation,
offset, length)`` — that the worker resolves with a
:class:`SegmentReader` against its attach cache.  One memcpy in, one
memcpy out, zero pipe bytes for the bulk data.

Release handshake
-----------------
The pool's protocol is lockstep — the parent broadcasts a command, then
gathers exactly one reply per worker before the next command.  A reply
therefore *is* the release: once every worker has answered, no live
reference to the segments published for that command can exist, and
:meth:`SegmentPool.collect` returns them to the free list for reuse.
There is no per-segment refcount to get wrong.

Generation tokens
-----------------
Reuse makes stale refs a hazard (a worker resolving a ref after the
parent recycled the segment would read the *next* command's bytes).
Every segment carries a monotonically increasing generation, bumped on
each reuse, written into the segment's 8-byte header and embedded in
every ref; :meth:`SegmentReader.read` verifies the header still matches
the ref and raises :class:`~repro.errors.ChaseError` otherwise.  Under
the lockstep handshake the check never fires — it exists to turn a
protocol violation into a loud error instead of silent corruption.

Teardown
--------
``SegmentPool.close()`` closes *and unlinks* every segment it ever
created — free, pending, or mid-flight — and is called from both the
pool's normal close and the broken-pool teardown path, so a crashed
worker never strands ``/dev/shm`` blocks.  A module-level registry of
live segment names (:func:`active_segments`) lets tests assert the
invariant directly.

Availability
------------
Constrained runners (no ``/dev/shm``, locked-down sandboxes) may lack
working shared memory; :func:`shm_available` probes once with a real
create/attach round-trip and callers (``EngineConfig`` validation, the
shm test suite) degrade to pipe-only transport when it fails.
"""

from __future__ import annotations

import struct
from typing import NamedTuple

from repro.errors import ChaseError

try:  # pragma: no cover - import guard exercised only on exotic builds
    from multiprocessing import resource_tracker, shared_memory
except ImportError:  # pragma: no cover
    resource_tracker = None  # type: ignore[assignment]
    shared_memory = None  # type: ignore[assignment]

#: Payloads >= this many bytes ride shared memory; smaller ones stay on
#: the pipe (a ref costs ~90 pickled bytes, so tiny payloads would lose).
DEFAULT_THRESHOLD = 256

#: Segment layout: an 8-byte little-endian generation header, then data.
_HEADER = struct.Struct("<Q")
_HEADER_SIZE = _HEADER.size

#: Smallest segment we bother allocating (allocation granularity is a
#: page anyway; round-tripping lots of tiny segments just churns fds).
_MIN_SEGMENT = 4096

#: Names of every currently-linked segment created by this process's
#: pools — the test suite's leak oracle.
_LIVE_SEGMENTS: set[str] = set()

_availability: bool | None = None


def shm_available() -> bool:
    """Probe (once) whether shared-memory segments actually work here."""
    global _availability
    if _availability is None:
        if shared_memory is None:
            _availability = False
        else:
            try:
                probe = shared_memory.SharedMemory(create=True, size=16)
            except (OSError, ValueError):  # pragma: no cover - env specific
                _availability = False
            else:
                # Release in a finally: a failed write must not strand
                # the probe segment in /dev/shm.
                try:
                    probe.buf[0] = 1
                    _availability = True
                except (OSError, ValueError):  # pragma: no cover - env specific
                    _availability = False
                finally:
                    probe.close()
                    probe.unlink()
    return _availability


def active_segments() -> frozenset[str]:
    """Names of segments currently linked by this process's pools."""
    return frozenset(_LIVE_SEGMENTS)


def _untrack(name: str) -> None:
    """Detach a segment from the resource tracker's leak bookkeeping.

    Ownership is explicit here — the creating :class:`SegmentPool`
    always unlinks in ``close()`` — but every created ``SharedMemory``
    handle registers itself with
    :mod:`multiprocessing.resource_tracker`, which then prints spurious
    "leaked shared_memory objects" warnings at interpreter exit for
    segments the pool reaped itself.  Python 3.13 grew ``track=False``
    for exactly this; this is the documented equivalent for 3.11/3.12.
    Unregister exactly once per registration: attaches on <=3.12 never
    register (and :class:`SegmentReader` passes ``track=False`` on
    3.13+), so only the create path calls this.
    """
    if resource_tracker is not None:
        try:
            resource_tracker.unregister("/" + name, "shared_memory")
        except (KeyError, ValueError):  # pragma: no cover - best effort
            pass


class SegmentRef(NamedTuple):
    """A picklable pointer into a shared-memory segment.

    Travels on the pipe in place of the payload it names; resolved
    worker-side by :meth:`SegmentReader.read`.
    """

    name: str
    generation: int
    offset: int
    length: int


class _Segment:
    """Parent-side bookkeeping for one owned shared-memory block."""

    __slots__ = ("shm", "capacity", "generation")

    def __init__(self, shm, capacity: int):
        self.shm = shm
        self.capacity = capacity
        self.generation = 0


class SegmentPool:
    """Parent-owned pool of reusable shared-memory segments.

    Usage follows the pool's lockstep protocol::

        ref = pool.publish(big_payload)     # before broadcasting
        ... send envelopes carrying ``ref`` instead of the bytes ...
        ... gather one reply per worker ...
        pool.collect()                      # segments back on the free list

    ``publish`` is also safe for fan-out: one published ref may appear
    in every worker's envelope (they all read the same block).
    """

    def __init__(self, threshold: int = DEFAULT_THRESHOLD):
        if shared_memory is None:  # pragma: no cover - exotic builds
            raise ChaseError("shared memory is not available on this platform")
        self.threshold = threshold
        self._free: list[_Segment] = []
        self._pending: list[_Segment] = []
        self._closed = False
        #: Lifetime counters, read into ``TransportStats``.
        self.segments_created = 0
        self.publishes = 0
        self.bytes_published = 0

    # -- allocation ----------------------------------------------------

    def _allocate(self, needed: int) -> _Segment:
        capacity = _MIN_SEGMENT
        while capacity < needed:
            capacity *= 2
        shm = shared_memory.SharedMemory(create=True, size=capacity)
        _untrack(shm.name)
        _LIVE_SEGMENTS.add(shm.name)
        self.segments_created += 1
        return _Segment(shm, capacity)

    def _acquire(self, needed: int) -> _Segment:
        best = None
        best_index = -1
        for index, segment in enumerate(self._free):
            if segment.capacity >= needed and (
                best is None or segment.capacity < best.capacity
            ):
                best, best_index = segment, index
        if best is None:
            return self._allocate(needed)
        self._free.pop(best_index)
        return best

    # -- protocol ------------------------------------------------------

    def publish(self, data: bytes) -> SegmentRef:
        """Write ``data`` into a segment and return its ref.

        The segment stays pending (unavailable for reuse) until the
        next :meth:`collect`.
        """
        if self._closed:
            raise ChaseError("publish on a closed SegmentPool")
        segment = self._acquire(_HEADER_SIZE + len(data))
        segment.generation += 1
        buf = segment.shm.buf
        _HEADER.pack_into(buf, 0, segment.generation)
        end = _HEADER_SIZE + len(data)
        buf[_HEADER_SIZE:end] = data
        self._pending.append(segment)
        self.publishes += 1
        self.bytes_published += len(data)
        return SegmentRef(
            segment.shm.name, segment.generation, _HEADER_SIZE, len(data)
        )

    def collect(self) -> None:
        """Recycle every pending segment (call after the reply gather)."""
        self._free.extend(self._pending)
        self._pending.clear()

    # -- teardown ------------------------------------------------------

    def close(self) -> None:
        """Close and unlink every owned segment; idempotent, never raises.

        Pending segments are torn down too: this is the broken-pool
        path's guarantee that a crashed worker leaks nothing.
        """
        if self._closed:
            return
        self._closed = True
        for segment in self._free + self._pending:
            name = segment.shm.name
            try:
                segment.shm.close()
            except (OSError, BufferError):  # pragma: no cover - best effort
                pass
            try:
                segment.shm.unlink()
            except (OSError, FileNotFoundError):  # pragma: no cover
                pass
            _LIVE_SEGMENTS.discard(name)
        self._free.clear()
        self._pending.clear()

    def __del__(self):  # pragma: no cover - safety net
        try:
            self.close()
        except Exception:
            pass


class SegmentReader:
    """Worker-side resolver for :class:`SegmentRef`\\ s.

    Keeps an attach cache so each segment is mapped once per worker no
    matter how many refs land in it across the run, and validates the
    generation header on every read.
    """

    def __init__(self):
        self._attached: dict[str, object] = {}

    def read(self, ref: SegmentRef) -> bytes:
        if shared_memory is None:  # pragma: no cover - exotic builds
            raise ChaseError("shared memory is not available on this platform")
        shm = self._attached.get(ref.name)
        if shm is None:
            try:
                try:
                    # 3.13+: attaches are tracked by default; opt out —
                    # the creating pool owns the unlink.
                    shm = shared_memory.SharedMemory(name=ref.name, track=False)
                except TypeError:
                    # <=3.12: no ``track`` parameter, attaches untracked.
                    shm = shared_memory.SharedMemory(name=ref.name)
            except FileNotFoundError:
                raise ChaseError(
                    f"shm segment {ref.name} vanished (pool torn down "
                    f"while a ref was in flight)"
                ) from None
            self._attached[ref.name] = shm
        (generation,) = _HEADER.unpack_from(shm.buf, 0)
        if generation != ref.generation:
            raise ChaseError(
                f"stale shm ref into {ref.name}: segment at generation "
                f"{generation}, ref at {ref.generation}"
            )
        return bytes(shm.buf[ref.offset:ref.offset + ref.length])

    def close(self) -> None:
        """Unmap every attached segment (workers call this on stop)."""
        for shm in self._attached.values():
            try:
                shm.close()
            except (OSError, BufferError):  # pragma: no cover - best effort
                pass
        self._attached.clear()


def maybe_publish(pool: "SegmentPool | None", data: bytes):
    """Route one payload: a :class:`SegmentRef` via ``pool`` when it is
    large enough, the raw bytes otherwise (or when shm is off).

    The single choke point both sides agree on: anything the parent may
    publish, the worker resolves with :func:`resolve`.
    """
    if pool is not None and len(data) >= pool.threshold:
        return pool.publish(data)
    return data


def resolve(reader: "SegmentReader | None", payload) -> bytes:
    """Inverse of :func:`maybe_publish` on the worker side."""
    if isinstance(payload, SegmentRef):
        if reader is None:
            raise ChaseError("shm ref received by a worker without a reader")
        return reader.read(payload)
    return payload
