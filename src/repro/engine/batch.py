"""Batched trigger firing: apply a whole round in one recording pass.

The sequential engines interleave three per-trigger steps — claim check,
head instantiation, provenance recording.  :func:`fire_round` keeps the
canonical firing order (so results stay bit-identical) but splits the
round into a claim/instantiate pass and one amortized
:meth:`~repro.chase.result.ChaseResult.record_round` pass, which binds the
provenance structures once per round instead of once per trigger.

A claim that must observe mid-round growth cannot batch blindly:
``interleaved=True`` falls back to per-trigger recording while keeping
the budget/claim plumbing shared with the batched rounds.  Between the
two sits the restricted chase's *split* round (``split=True``): the
round's existential-free triggers have fully determined ground outputs,
so they are instantiated up front (worker-side on a replica backend, via
the ``probe`` protocol command — one packed task buffer and one packed
reply per worker slice, see :mod:`repro.engine.wire`) while the claims
themselves — membership
of the ground head for existential-free triggers, the satisfaction
check for the existential remainder — still resolve lazily inside one
canonical-order :meth:`~repro.chase.result.ChaseResult.record_round`
pass, observing mid-round growth exactly like the interleaved reference
(see :mod:`repro.chase.restricted`).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Sequence

from repro.obs.trace import RoundRecorder, active_round

if TYPE_CHECKING:  # imported for annotations only: keeps engine below chase
    from repro.chase.result import ChaseResult
    from repro.chase.trigger import Trigger
    from repro.logic.terms import FreshSupply


@dataclass(frozen=True)
class RoundOutcome:
    """What one fired round did.

    ``applied`` counts recorded trigger applications;
    ``budget_exceeded`` is True when the atom budget was hit mid-round
    (the round stopped at the same trigger the sequential engine would
    have stopped at).
    """

    applied: int
    budget_exceeded: bool


def _timed_gate(
    claim: Callable[["Trigger"], bool], recorder: "RoundRecorder"
) -> Callable[["Trigger"], bool]:
    """Wrap a claim gate so each call's wall-clock lands on ``gate``.

    Only installed while a round is traced; the wrapped claim flows
    through every non-interleaved path unchanged (inline stream and
    sharded chunks alike), so gate time is attributed once no matter
    which backend fires the round.
    """
    perf = time.perf_counter
    add_phase = recorder.add_phase

    def gated(trigger: "Trigger") -> bool:
        start = perf()
        try:
            return claim(trigger)
        finally:
            add_phase("gate", perf() - start)

    return gated


def _split_round_stream(
    triggers: Sequence["Trigger"],
    result: "ChaseResult",
    supply: "FreshSupply",
    recorder: "RoundRecorder | None" = None,
):
    """The inline split-round stream: lazy per-trigger restricted claims.

    Yields ``(trigger, (output_atoms, existential_map))`` pairs in
    canonical order for :meth:`~repro.chase.result.ChaseResult.record_round`
    to pull; each pair is recorded before the next claim runs, so both
    claim flavors observe mid-round growth exactly like the interleaved
    reference — the difference is purely the amortized recording (and
    that an existential-free trigger's head is instantiated once, as
    both the claim probe and the output).  With a ``recorder`` the
    satisfaction checks — the split round's claim gate — are timed into
    the ``gate`` phase.
    """
    instance = result.instance
    if recorder is None:
        for trigger in triggers:
            if trigger.rule.existential_order():
                if trigger.is_satisfied_using_index(instance):
                    continue
                yield trigger, trigger.output(supply)
            else:
                head = trigger.rule.instantiate_head(trigger.mapping)
                if all(a in instance for a in head):
                    continue
                yield trigger, (head, {})
        return
    perf = time.perf_counter
    add_phase = recorder.add_phase
    for trigger in triggers:
        if trigger.rule.existential_order():
            start = perf()
            satisfied = trigger.is_satisfied_using_index(instance)
            add_phase("gate", perf() - start)
            if satisfied:
                continue
            yield trigger, trigger.output(supply)
        else:
            head = trigger.rule.instantiate_head(trigger.mapping)
            start = perf()
            satisfied = all(a in instance for a in head)
            add_phase("gate", perf() - start)
            if satisfied:
                continue
            yield trigger, (head, {})


def fire_round(
    result: "ChaseResult",
    triggers: Sequence["Trigger"],
    supply: "FreshSupply",
    *,
    level: int,
    max_atoms: int,
    claim: Callable[["Trigger"], bool] | None = None,
    interleaved: bool = False,
    split: bool = False,
    scheduler=None,
) -> RoundOutcome:
    """Fire ``triggers`` in canonical order into ``result``.

    Parameters
    ----------
    claim:
        Per-trigger gate evaluated in firing order; return False to skip.
        May be stateful (the semi-oblivious frontier-class dedup) — it is
        called exactly once per trigger, in order, and never past a
        mid-round budget stop, on every firing path.
    interleaved:
        When True each application is recorded before the next trigger's
        claim runs, so claims observe mid-round growth (the restricted
        chase's all-existential rounds).
        When False the round streams through one amortized
        :meth:`~repro.chase.result.ChaseResult.record_round` pass — valid
        whenever claims are independent of the instance.  The stream is
        lazy, so on a budget hit no further trigger is claimed or
        instantiated and the supply stops at exactly the same null the
        sequential engines stop at — bit-identical either way.
    split:
        The restricted chase's mixed/existential-free rounds: claims are
        the satisfaction gate itself, resolved lazily per trigger inside
        one ``record_round`` pass (``_split_round_stream``), with the
        existential remainder interleaved in place.  On a replica backend
        the existential-free triggers' instantiation and round-start
        satisfaction probes fan out across the pool first
        (:meth:`RoundScheduler.fire_split_round
        <repro.engine.scheduler.RoundScheduler.fire_split_round>`).
        ``claim`` is ignored — the split gate owns claiming.
    scheduler:
        An optional :class:`~repro.engine.scheduler.RoundScheduler`.  When
        its backend shards firing (persistent workers, or a legacy process
        pool) and the round is not interleaved, head instantiation fans
        out across the pool via :meth:`RoundScheduler.fire_round
        <repro.engine.scheduler.RoundScheduler.fire_round>` — same claims
        (in budget-safe chunks, so stateful claims stay lazy and
        exactly-once), same null names, same provenance order, same
        budget-stop position.  Interleaved rounds ignore it: their claims
        read the instance as it grows, which is inherently sequential.

    The caller owns ``levels_completed`` and the strict-mode raise; this
    function only reports the outcome.
    """
    recorder = active_round()
    if recorder is not None and claim is not None and not interleaved:
        claim = _timed_gate(claim, recorder)
    if scheduler is not None and not interleaved:
        if split:
            outcome = scheduler.fire_split_round(
                result, triggers, supply, level=level, max_atoms=max_atoms
            )
        else:
            outcome = scheduler.fire_round(
                result,
                triggers,
                supply,
                level=level,
                max_atoms=max_atoms,
                claim=claim,
            )
        if outcome is not None:
            return outcome
    if split and not interleaved:
        applied, exceeded = result.record_round(
            _split_round_stream(triggers, result, supply, recorder),
            level=level,
            max_atoms=max_atoms,
        )
        return RoundOutcome(applied, exceeded)
    applied = 0
    if interleaved:
        if recorder is not None:
            return _interleaved_traced(
                result, triggers, supply,
                level=level, max_atoms=max_atoms, claim=claim,
                recorder=recorder,
            )
        for trigger in triggers:
            if claim is not None and not claim(trigger):
                continue
            output_atoms, existential_map = trigger.output(supply)
            result.record_application(
                trigger,
                level=level,
                created_nulls=existential_map.values(),
                output_atoms=output_atoms,
            )
            applied += 1
            if len(result.instance) > max_atoms:
                return RoundOutcome(applied, True)
        return RoundOutcome(applied, False)

    if claim is None:
        applications = ((t, t.output(supply)) for t in triggers)
    else:
        applications = (
            (t, t.output(supply)) for t in triggers if claim(t)
        )
    applied, exceeded = result.record_round(
        applications, level=level, max_atoms=max_atoms
    )
    return RoundOutcome(applied, exceeded)


def _interleaved_traced(
    result: "ChaseResult",
    triggers: Sequence["Trigger"],
    supply: "FreshSupply",
    *,
    level: int,
    max_atoms: int,
    claim: Callable[["Trigger"], bool] | None,
    recorder: "RoundRecorder",
) -> RoundOutcome:
    """The interleaved loop with per-trigger gate/record attribution.

    Identical semantics to the untraced loop (same claim sequence, same
    recording, same budget stop); head instantiation stays unattributed
    and lands in the round's outer ``fire`` phase.
    """
    perf = time.perf_counter
    add_phase = recorder.add_phase
    applied = 0
    for trigger in triggers:
        if claim is not None:
            start = perf()
            keep = claim(trigger)
            add_phase("gate", perf() - start)
            if not keep:
                continue
        output_atoms, existential_map = trigger.output(supply)
        start = perf()
        result.record_application(
            trigger,
            level=level,
            created_nulls=existential_map.values(),
            output_atoms=output_atoms,
        )
        add_phase("record", perf() - start)
        applied += 1
        if len(result.instance) > max_atoms:
            return RoundOutcome(applied, True)
    return RoundOutcome(applied, False)
