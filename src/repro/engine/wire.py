"""Interned-term columnar wire codec for the persistent worker protocol.

The persistent pool used to pickle ``Atom`` lists on every round: each
sync, pivot, probe and fire payload re-shipped full predicate and term
objects (their class names, their string names) for every occurrence.
This module replaces those payloads with an *interned* encoding:

Symbol tables
    A :class:`WireEncoder` (parent-owned, one per pool) holds an
    append-only :class:`TermTable` and :class:`PredicateTable` mapping
    every distinct term/predicate the pool has ever shipped to a dense
    integer id.  Each message carries a *table segment* — only the
    entries appended since that worker's last message — so a symbol
    crosses a pipe **once** per worker, ever.  Worker-side, a
    :class:`WireDecoder` replays the segments into id-indexed lists plus
    the reverse maps it needs to encode replies.  Table entries are
    rebuilt through the term/predicate constructors
    (:func:`repro.logic.terms.term_from_wire`,
    :class:`~repro.logic.predicates.Predicate`), so cached hashes are
    recomputed under the receiving interpreter's own ``PYTHONHASHSEED``
    — the same property ``Term.__reduce__`` gave the pickled protocol.

Flat buffers
    Every payload is one flat id stream, packed as LEB128 varints
    (:func:`pack_ids`/:func:`unpack_ids` — table ids are dense and
    small, so most ids cost one byte instead of a fixed four): atoms are
    ``(pred_id, term_ids...)`` streams (self-delimiting — the
    predicate's arity says how many term ids follow); fire/probe tasks
    pack a trigger as its *body-variable image* along the rule's
    canonical :meth:`~repro.rules.rule.Rule.body_variable_order` (plus
    drawn null ids along :meth:`~repro.rules.rule.Rule.existential_order`
    for fire), exploiting that a trigger's mapping is exactly
    reconstructible from its image: ``Trigger.__init__`` restricts the
    mapping to the body variables and ``Substitution`` drops identity
    pairs.  Decoded atoms rebuild through the cached-hash fast path
    :func:`repro.logic.atoms.build_atom`.

Replies
    Workers answer with one packed buffer per message (one reply per
    worker slice, not per trigger).  A reply references symbols as
    ``2 * table_id`` when the shared table holds them, or as
    ``2 * literal_index + 1`` for message-local literals shipped
    alongside the buffer — the escape hatch for symbols the parent never
    shipped (in practice :meth:`WireEncoder.intern_rules` pre-interns
    every head symbol a reply can mention, so the literal lists stay
    empty).

Reply envelope
    Every worker reply is ``(status, value, timings)`` built by
    :func:`pack_reply` and read by :func:`unpack_reply`: ``timings`` is
    the worker's ``(decode_s, execute_s, encode_s)`` wall-clock triple
    packed as one fixed-size 24-byte struct (:data:`REPLY_TIMINGS`), or
    ``None`` on error replies.  Fixed-size means the reply byte counters
    stay deterministic — a float's value never changes the envelope
    length.  ``unpack_reply`` tolerates the legacy 2-tuple shape
    (timings ``None``), so mixed-version pipes degrade instead of
    desyncing.  The parent aggregates the triples per command into
    ``TRANSPORT_STATS.worker_seconds``, which is what finally separates
    parent-blocked-on-pipe time from worker compute.

What still pickles: the message envelope itself (a small tuple of
command name, segment, and buffer bytes), the round's ``Rule`` objects
(a few hundred bytes, shipped only on seed/probe/fire), and error
tracebacks.  See ``engine/README.md`` for the protocol walk-through.
"""

from __future__ import annotations

import struct
from typing import Iterable, Sequence

from repro.errors import ChaseError
from repro.logic.atoms import Atom, build_atom
from repro.logic.predicates import Predicate
from repro.logic.substitutions import Substitution
from repro.logic.terms import Term, term_from_wire
from repro.rules.rule import Rule


#: The reply envelope's fixed-size worker-timing triple:
#: ``(decode_s, execute_s, encode_s)`` as three little-endian doubles.
REPLY_TIMINGS = struct.Struct("<ddd")


def pack_reply(
    status: str, value, timings: tuple[float, float, float] | None = None
) -> tuple:
    """Build one worker reply envelope ``(status, value, timings)``.

    ``timings`` is the worker-side ``(decode_s, execute_s, encode_s)``
    wall-clock split, packed into :data:`REPLY_TIMINGS`'s 24 fixed bytes
    so the envelope's pickled size never depends on the float values —
    byte counters stay deterministic.  Error replies ship ``None``.
    """
    packed = REPLY_TIMINGS.pack(*timings) if timings is not None else None
    return (status, value, packed)


def unpack_reply(message: tuple) -> tuple[str, object, tuple | None]:
    """Open a reply envelope; returns ``(status, value, timings)``.

    Tolerates the legacy 2-tuple ``(status, value)`` shape (no timings)
    so a mixed-version pipe degrades to untimed replies instead of
    desyncing.
    """
    if len(message) == 2:
        status, value = message
        return status, value, None
    status, value, packed = message
    timings = REPLY_TIMINGS.unpack(packed) if packed else None
    return status, value, timings


# checks: hot
def pack_ids(ids: Iterable[int]) -> bytes:
    """Pack non-negative ids as an LEB128 varint stream.

    Seven id bits per byte, high bit = continuation.  Table ids are
    dense (interning order) and task indexes are small, so the common
    id costs one byte — the packed stream undercuts both a fixed-width
    array and a pickled object graph by a wide margin.
    """
    out = bytearray()
    append = out.append
    for value in ids:
        while value >= 0x80:
            append((value & 0x7F) | 0x80)
            value >>= 7
        append(value)
    return bytes(out)


# checks: hot
def unpack_ids(data: bytes) -> list[int]:
    """Inverse of :func:`pack_ids`."""
    ids: list[int] = []
    append = ids.append
    current = 0
    shift = 0
    for byte in data:
        if byte & 0x80:
            current |= (byte & 0x7F) << shift
            shift += 7
        else:
            append(current | (byte << shift))
            current = 0
            shift = 0
    if shift:
        raise ChaseError("truncated varint id stream")
    return ids


# checks: hot
def iter_atom_spans(data: bytes, arity_of) -> Iterable[tuple]:
    """Walk a packed atom stream, yielding one ``(pred_id, term_ids,
    start, stop)`` tuple per atom.

    ``arity_of(pred_id)`` supplies the argument count that delimits each
    atom; ``data[start:stop]`` is exactly the atom's own wire bytes, so a
    consumer that stores rows *and* their encoding (the columnar store's
    revision-sliced wire log) copies the bytes as-is instead of
    re-packing them — ingest and re-serve share one encoding.
    """
    position = 0
    end = len(data)
    while position < end:
        start = position
        ids: list[int] = []
        count = -1  # predicate id first, then `arity` term ids
        while True:
            current = 0
            shift = 0
            while True:
                if position >= end:
                    raise ChaseError("truncated packed atom stream")
                byte = data[position]
                position += 1
                if byte & 0x80:
                    current |= (byte & 0x7F) << shift
                    shift += 7
                else:
                    current |= byte << shift
                    break
            ids.append(current)
            if count < 0:
                count = arity_of(current)
            elif len(ids) == count + 1:
                break
            if count == 0:
                break
        # checks: allow[H402] -- per-atom output: the yielded term-id tuple
        # IS the row consumers key their column stores by.
        yield ids[0], tuple(ids[1:]), start, position


class TermTable:
    """Append-only ``Term ↔ id`` table (parent side).

    ``specs[i]`` is the wire spec ``(rank, name)`` of ``objects[i]`` —
    the rank indexes :data:`repro.logic.terms.TERM_KINDS`, so a worker
    rebuilds the term through its class constructor.
    """

    __slots__ = ("ids", "objects", "specs")

    def __init__(self):
        self.ids: dict[Term, int] = {}
        self.objects: list[Term] = []
        self.specs: list[tuple[int, str]] = []

    def __len__(self) -> int:
        return len(self.objects)

    def intern(self, term: Term) -> int:
        index = self.ids.get(term)
        if index is None:
            index = len(self.objects)
            self.ids[term] = index
            self.objects.append(term)
            self.specs.append((type(term)._rank, term.name))
        return index


class PredicateTable:
    """Append-only ``Predicate ↔ id`` table (parent side).

    ``specs[i]`` is the wire spec ``(name, arity)`` of ``objects[i]``.
    """

    __slots__ = ("ids", "objects", "specs")

    def __init__(self):
        self.ids: dict[Predicate, int] = {}
        self.objects: list[Predicate] = []
        self.specs: list[tuple[str, int]] = []

    def __len__(self) -> int:
        return len(self.objects)

    def intern(self, predicate: Predicate) -> int:
        index = self.ids.get(predicate)
        if index is None:
            index = len(self.objects)
            self.ids[predicate] = index
            self.objects.append(predicate)
            self.specs.append((predicate.name, predicate.arity))
        return index


class WireEncoder:
    """Parent-side codec: interns symbols, packs payloads, reads replies.

    One encoder per :class:`~repro.engine.workers.WorkerPool`; its tables
    are the pool's shared vocabulary.  The pool tracks a per-worker
    high-water mark into the tables and ships each worker only the
    :meth:`segment` it has not seen — taken *after* every payload of a
    broadcast has been encoded, so a segment always covers everything
    the message references.
    """

    __slots__ = ("terms", "predicates")

    def __init__(self):
        self.terms = TermTable()
        self.predicates = PredicateTable()

    def marks(self) -> tuple[int, int]:
        """The current table high-water marks ``(terms, predicates)``."""
        return (len(self.terms), len(self.predicates))

    def segment(self, term_mark: int, pred_mark: int):
        """The table entries appended since ``(term_mark, pred_mark)``.

        Returns ``None`` when the worker is already current — the
        pickled envelope then carries a single byte for the slot.
        """
        term_specs = self.terms.specs
        pred_specs = self.predicates.specs
        if term_mark == len(term_specs) and pred_mark == len(pred_specs):
            return None
        return (
            term_mark,
            tuple(term_specs[term_mark:]),
            pred_mark,
            tuple(pred_specs[pred_mark:]),
        )

    def intern_rules(self, rules: Iterable[Rule]) -> None:
        """Pre-intern every non-variable head symbol of ``rules``.

        A worker reply over these rules (derived atoms, fire outputs,
        probe splits) mentions head predicates, body-image terms (which
        task/sync encoding interns) and head constants — after this, all
        of them resolve as table refs and replies need no literals.
        """
        intern_pred = self.predicates.intern
        intern_term = self.terms.intern
        for rule in rules:
            for atom in rule.head:
                intern_pred(atom.predicate)
                for term in atom.args:
                    if not term.is_variable:
                        intern_term(term)

    def encode_atoms(self, atoms: Iterable[Atom]) -> bytes:
        """Pack atoms as one flat ``(pred_id, term_ids...)`` stream."""
        intern_pred = self.predicates.intern
        intern_term = self.terms.intern
        ids: list[int] = []
        append = ids.append
        for atom in atoms:
            append(intern_pred(atom.predicate))
            for term in atom.args:
                append(intern_term(term))
        return pack_ids(ids)

    def encode_fire_tasks(
        self, rules: Sequence[Rule], tasks: Iterable[tuple]
    ) -> bytes:
        """Pack firing tasks ``(index, rule_index, mapping, nulls)``.

        Layout per task: ``index, rule_index``, the mapping's image along
        the rule's canonical body-variable order, then the parent-drawn
        null ids along the existential order.
        """
        self.intern_rules(rules)
        intern = self.terms.intern
        ids: list[int] = []
        append = ids.append
        for index, rule_index, mapping, existential_map in tasks:
            rule = rules[rule_index]
            append(index)
            append(rule_index)
            apply_term = mapping.apply_term
            for variable in rule.body_variable_order():
                append(intern(apply_term(variable)))
            for variable in rule.existential_order():
                append(intern(existential_map[variable]))
        return pack_ids(ids)

    def encode_probe_tasks(
        self, rules: Sequence[Rule], tasks: Iterable[tuple]
    ) -> bytes:
        """Pack probe tasks ``(index, rule_index, mapping)``.

        Same layout as fire tasks minus the null ids — probe tasks are
        existential-free by construction.
        """
        self.intern_rules(rules)
        intern = self.terms.intern
        ids: list[int] = []
        append = ids.append
        for index, rule_index, mapping in tasks:
            append(index)
            append(rule_index)
            apply_term = mapping.apply_term
            for variable in rules[rule_index].body_variable_order():
                append(intern(apply_term(variable)))
        return pack_ids(ids)


class WireDecoder:
    """Worker-side replica of the parent's symbol tables.

    Grown strictly by :meth:`apply_segment` in message order; holds the
    reverse maps so :class:`ReplyWriter` can emit table refs.
    """

    __slots__ = ("terms", "term_ids", "predicates", "predicate_ids")

    def __init__(self):
        self.terms: list[Term] = []
        self.term_ids: dict[Term, int] = {}
        self.predicates: list[Predicate] = []
        self.predicate_ids: dict[Predicate, int] = {}

    def apply_segment(self, segment) -> None:
        if segment is None:
            return
        term_start, term_specs, pred_start, pred_specs = segment
        if term_start != len(self.terms) or pred_start != len(self.predicates):
            raise ChaseError(
                "wire table segment out of sequence: worker at "
                f"({len(self.terms)}, {len(self.predicates)}), segment "
                f"starts at ({term_start}, {pred_start})"
            )
        for rank, name in term_specs:
            term = term_from_wire(rank, name)
            self.term_ids[term] = len(self.terms)
            self.terms.append(term)
        for name, arity in pred_specs:
            predicate = Predicate(name, arity)
            self.predicate_ids[predicate] = len(self.predicates)
            self.predicates.append(predicate)

    def decode_atoms(self, data: bytes) -> list[Atom]:
        buf = unpack_ids(data)
        terms = self.terms
        predicates = self.predicates
        atoms: list[Atom] = []
        position, end = 0, len(buf)
        while position < end:
            predicate = predicates[buf[position]]
            position += 1
            stop = position + predicate.arity
            args = tuple(terms[i] for i in buf[position:stop])
            position = stop
            atoms.append(build_atom(predicate, args))
        return atoms

    def decode_fire_tasks(
        self, data: bytes, rules: Sequence[Rule]
    ) -> list[tuple]:
        """Unpack fire tasks back to ``(index, rule_index, mapping, nulls)``."""
        buf = unpack_ids(data)
        terms = self.terms
        tasks: list[tuple] = []
        position, end = 0, len(buf)
        while position < end:
            index = buf[position]
            rule_index = buf[position + 1]
            position += 2
            rule = rules[rule_index]
            mapping: dict = {}
            for variable in rule.body_variable_order():
                term = terms[buf[position]]
                position += 1
                if term != variable:
                    mapping[variable] = term
            existential_map: dict = {}
            for variable in rule.existential_order():
                existential_map[variable] = terms[buf[position]]
                position += 1
            tasks.append(
                (
                    index,
                    rule_index,
                    Substitution._from_clean(mapping),
                    existential_map,
                )
            )
        return tasks

    def decode_probe_tasks(
        self, data: bytes, rules: Sequence[Rule]
    ) -> list[tuple]:
        """Unpack probe tasks back to ``(index, rule_index, mapping)``."""
        buf = unpack_ids(data)
        terms = self.terms
        tasks: list[tuple] = []
        position, end = 0, len(buf)
        while position < end:
            index = buf[position]
            rule_index = buf[position + 1]
            position += 2
            mapping: dict = {}
            for variable in rules[rule_index].body_variable_order():
                term = terms[buf[position]]
                position += 1
                if term != variable:
                    mapping[variable] = term
            tasks.append((index, rule_index, Substitution._from_clean(mapping)))
        return tasks


class ReplyWriter:
    """Worker-side encoder of one packed reply buffer.

    Symbol refs are ``2 * table_id`` for symbols the shared table holds,
    ``2 * literal_index + 1`` for message-local literals shipped beside
    the buffer — the escape hatch for symbols the parent never interned
    (kept for robustness; ``intern_rules`` makes it a cold path).
    """

    __slots__ = (
        "_decoder",
        "_ids",
        "_literal_terms",
        "_literal_term_ids",
        "_literal_predicates",
        "_literal_predicate_ids",
    )

    def __init__(self, decoder: WireDecoder):
        self._decoder = decoder
        self._ids: list[int] = []
        self._literal_terms: list[tuple[int, str]] = []
        self._literal_term_ids: dict[Term, int] = {}
        self._literal_predicates: list[tuple[str, int]] = []
        self._literal_predicate_ids: dict[Predicate, int] = {}

    def write_int(self, value: int) -> None:
        self._ids.append(value)

    def write_term(self, term: Term) -> None:
        index = self._decoder.term_ids.get(term)
        if index is not None:
            self._ids.append(index << 1)
            return
        literal = self._literal_term_ids.get(term)
        if literal is None:
            literal = len(self._literal_terms)
            self._literal_term_ids[term] = literal
            self._literal_terms.append((type(term)._rank, term.name))
        self._ids.append((literal << 1) | 1)

    def write_predicate(self, predicate: Predicate) -> None:
        index = self._decoder.predicate_ids.get(predicate)
        if index is not None:
            self._ids.append(index << 1)
            return
        literal = self._literal_predicate_ids.get(predicate)
        if literal is None:
            literal = len(self._literal_predicates)
            self._literal_predicate_ids[predicate] = literal
            self._literal_predicates.append((predicate.name, predicate.arity))
        self._ids.append((literal << 1) | 1)

    def write_atom(self, atom: Atom) -> None:
        self.write_predicate(atom.predicate)
        for term in atom.args:
            self.write_term(term)

    def finish(self) -> tuple:
        """The reply payload: ``(literal_terms, literal_preds, buffer)``."""
        return (
            tuple(self._literal_terms),
            tuple(self._literal_predicates),
            pack_ids(self._ids),
        )


class ReplyReader:
    """Parent-side decoder of one packed worker reply."""

    __slots__ = ("_terms", "_predicates", "_literal_terms",
                 "_literal_predicates", "_buf", "_position")

    def __init__(self, encoder: WireEncoder, reply: tuple):
        literal_terms, literal_predicates, payload = reply
        self._terms = encoder.terms.objects
        self._predicates = encoder.predicates.objects
        self._literal_terms = [
            term_from_wire(rank, name) for rank, name in literal_terms
        ]
        self._literal_predicates = [
            Predicate(name, arity) for name, arity in literal_predicates
        ]
        self._buf = unpack_ids(payload)
        self._position = 0

    @property
    def exhausted(self) -> bool:
        return self._position >= len(self._buf)

    def read_int(self) -> int:
        value = self._buf[self._position]
        self._position += 1
        return value

    def read_term(self) -> Term:
        ref = self.read_int()
        if ref & 1:
            return self._literal_terms[ref >> 1]
        return self._terms[ref >> 1]

    def read_predicate(self) -> Predicate:
        ref = self.read_int()
        if ref & 1:
            return self._literal_predicates[ref >> 1]
        return self._predicates[ref >> 1]

    def read_atom(self) -> Atom:
        predicate = self.read_predicate()
        args = tuple(self.read_term() for _ in range(predicate.arity))
        return build_atom(predicate, args)


# ----------------------------------------------------------------------
# Reply payloads, one packed buffer per worker message
# ----------------------------------------------------------------------


def encode_derive_reply(decoder: WireDecoder, atoms: Iterable[Atom]) -> tuple:
    """Pack a derived atom set: atoms until end of buffer."""
    writer = ReplyWriter(decoder)
    for atom in atoms:
        writer.write_atom(atom)
    return writer.finish()


def decode_derive_reply(encoder: WireEncoder, reply: tuple) -> set[Atom]:
    reader = ReplyReader(encoder, reply)
    derived: set[Atom] = set()
    while not reader.exhausted:
        derived.add(reader.read_atom())
    return derived


def encode_enumerate_reply(
    decoder: WireDecoder, rules: Sequence[Rule], per_rule: Sequence[dict]
) -> tuple:
    """Pack per-rule image dicts: per rule a count, then flat images.

    Only the images cross the wire — a trigger's homomorphism is exactly
    reconstructible from its image along the rule's canonical
    body-variable order (see module docstring), so the parent rebuilds
    the ``{image: hom}`` dicts without shipping ``Substitution`` graphs.
    """
    writer = ReplyWriter(decoder)
    for found in per_rule:
        writer.write_int(len(found))
        for image in found:
            for term in image:
                writer.write_term(term)
    return writer.finish()


def decode_enumerate_reply(
    encoder: WireEncoder, rules: Sequence[Rule], reply: tuple
) -> list[dict]:
    reader = ReplyReader(encoder, reply)
    results: list[dict] = []
    for rule in rules:
        order = rule.body_variable_order()
        found: dict = {}
        for _ in range(reader.read_int()):
            image = tuple(reader.read_term() for _ in order)
            mapping = {
                variable: term
                for variable, term in zip(order, image)
                if variable != term
            }
            found[image] = Substitution._from_clean(mapping)
        results.append(found)
    return results


def encode_probe_reply(decoder: WireDecoder, results: Iterable[tuple]) -> tuple:
    """Pack probe splits: per trigger ``index, |present|, |missing|, atoms``."""
    writer = ReplyWriter(decoder)
    for index, present, missing in results:
        writer.write_int(index)
        writer.write_int(len(present))
        writer.write_int(len(missing))
        for atom in present:
            writer.write_atom(atom)
        for atom in missing:
            writer.write_atom(atom)
    return writer.finish()


def decode_probe_reply(
    encoder: WireEncoder, reply: tuple
) -> list[tuple[int, tuple[Atom, ...], tuple[Atom, ...]]]:
    reader = ReplyReader(encoder, reply)
    results: list[tuple[int, tuple[Atom, ...], tuple[Atom, ...]]] = []
    while not reader.exhausted:
        index = reader.read_int()
        present_count = reader.read_int()
        missing_count = reader.read_int()
        present = tuple(reader.read_atom() for _ in range(present_count))
        missing = tuple(reader.read_atom() for _ in range(missing_count))
        results.append((index, present, missing))
    return results


def encode_fire_reply(decoder: WireDecoder, pairs: Iterable[tuple]) -> tuple:
    """Pack fire outputs: per trigger ``index, |atoms|, atoms``."""
    writer = ReplyWriter(decoder)
    for index, atoms in pairs:
        writer.write_int(index)
        writer.write_int(len(atoms))
        for atom in atoms:
            writer.write_atom(atom)
    return writer.finish()


def decode_fire_reply(
    encoder: WireEncoder, reply: tuple
) -> list[tuple[int, set[Atom]]]:
    reader = ReplyReader(encoder, reply)
    pairs: list[tuple[int, set[Atom]]] = []
    while not reader.exhausted:
        index = reader.read_int()
        count = reader.read_int()
        pairs.append((index, {reader.read_atom() for _ in range(count)}))
    return pairs
