"""The unified semi-naive delta core.

One pivot-atom decomposition serves every delta-driven round in the
library: trigger enumeration for the chase variants
(:func:`repro.chase.trigger.new_triggers_of`), sharded enumeration in the
parallel scheduler, and head derivation for the Datalog closure
(:func:`repro.rewriting.datalog.semi_naive_closure`).  Before this module
existed ``rewriting/datalog.py`` carried its own copy of the decomposition
without the positional index; now both layers share this code.

The decomposition: a homomorphism of a rule body into the instance uses at
least one delta atom exactly when some body atom maps into the delta.  For
each body atom in turn (the *pivot*), that atom is matched against the
delta only while the remaining atoms match the full instance through the
positional index.  A homomorphism whose body image touches ``k`` delta
atoms is found by ``k`` pivots; callers deduplicate on their own identity
(trigger image for the chase, the derived atom set for the closure).
"""

from __future__ import annotations

from typing import Iterable, Iterator

from repro.logic.atoms import Atom
from repro.logic.homomorphisms import (
    homomorphisms,
    homomorphisms_with_pivot,
    pivot_bindings,
)
from repro.logic.instances import Instance
from repro.logic.substitutions import Substitution
from repro.rules.rule import Rule


def as_delta_instance(delta: Iterable[Atom] | Instance) -> Instance:
    """Wrap a delta (atom iterable or instance) as a positional-indexed
    instance, so pivot candidates come from an index lookup."""
    if isinstance(delta, Instance):
        return delta
    return Instance(delta, add_top=False)


def delta_homomorphisms(
    rule: Rule, instance: Instance, delta_inst: Instance
) -> Iterator[Substitution]:
    """Homomorphisms of ``rule.body`` into ``instance`` using ≥ 1 delta atom.

    A homomorphism touching ``k`` delta atoms is yielded up to ``k`` times
    (once per pivot); the caller owns deduplication.  When ``delta_inst``
    *is* the instance every homomorphism qualifies and pivoting would
    rediscover each one per body atom, so the plain per-rule enumeration
    (body-size times cheaper) runs instead — in that case each homomorphism
    is yielded exactly once.
    """
    if delta_inst is instance:
        yield from homomorphisms(rule.body, instance)
        return
    body = rule.body
    for pivot in rule.sorted_body():
        candidates = delta_inst.sorted_with_predicate(pivot.predicate)
        if not candidates:
            continue
        yield from homomorphisms_with_pivot(body, instance, pivot, candidates)


def rule_delta_images(
    rule: Rule, instance: Instance, delta_inst: Instance
) -> dict[tuple, Substitution]:
    """Deduplicated body matches of one rule, keyed by canonical image.

    The key is ``h(x̄)`` along ``rule.body_variable_order()`` — the same
    identity :class:`~repro.chase.trigger.Trigger` uses — so merging the
    dicts produced by different delta shards (or different pivots) is a
    plain dict union: equal keys imply equal restricted homomorphisms.
    """
    order = rule.body_variable_order()
    found: dict[tuple, Substitution] = {}
    for hom in delta_homomorphisms(rule, instance, delta_inst):
        apply = hom.apply_term
        image = tuple(apply(v) for v in order)
        if image not in found:
            found[image] = hom
    return found


def derive_delta_atoms(
    rule: Rule, instance: Instance, delta_inst: Instance
) -> set[Atom]:
    """Head instantiations of ``rule`` whose body uses ≥ 1 delta atom.

    Derivation mode of the core, used by the Datalog closure: no trigger
    identity, no canonical ordering — duplicate matches collapse in the
    returned set, which is all a saturation needs.  This is the batched
    hot path: heads are instantiated straight from the matcher's raw
    bindings (:func:`~repro.logic.homomorphisms.pivot_bindings`) — no
    :class:`~repro.chase.trigger.Trigger` objects, no substitution copies,
    no sorting.
    """
    derived: set[Atom] = set()
    head = rule.head
    if delta_inst is instance:
        for hom in homomorphisms(rule.body, instance):
            derived.update(hom.apply_atoms(head))
        return derived
    add = derived.add
    body = rule.body
    for pivot in rule.sorted_body():
        candidates = delta_inst.sorted_with_predicate(pivot.predicate)
        if not candidates:
            continue
        for binding in pivot_bindings(body, instance, pivot, candidates):
            for atom in head:
                add(atom.apply(binding))
    return derived
