"""Engine configuration and the engine registry.

The chase variants and the Datalog closure accept an ``engine`` argument
that is either a registered engine *name* or an :class:`EngineConfig`
instance.  The registry replaces the ad-hoc ``engine="delta"|"naive"``
string checks that used to live in ``chase/oblivious.py``: every entry
point resolves its argument through :func:`resolve_engine`, which raises a
:class:`~repro.errors.ChaseError` naming the valid engines on a typo.

Built-in engines
----------------
``delta``
    Sequential semi-naive enumeration (the default of every chase
    variant): each round only matches rule bodies pivoted on the previous
    round's delta.
``naive``
    Full re-match reference implementation; kept as the ground truth the
    other engines are tested against.
``parallel``
    The sharded round scheduler plus batched firing
    (:mod:`repro.engine.scheduler`, :mod:`repro.engine.batch`): trigger
    enumeration fans out over a worker pool (threads by default, processes
    opt-in) and a whole round is applied with one amortized recording
    pass.  Results are bit-identical to ``delta``.
``persistent``
    The parallel engine backed by persistent delta-fed process workers
    (:mod:`repro.engine.workers`): each worker holds a long-lived replica
    of the instance seeded once at pool start and synced with only the
    per-round delta, and both enumeration *and* firing are sharded across
    the pool.  ``"persistent"`` is sugar for ``mode="parallel"`` with
    ``persistent=True``; results are bit-identical to ``delta`` for every
    worker/shard count.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.errors import ChaseError

#: Default fan-out of the ``parallel`` engine.  Chosen for laptop-scale
#: corpora; raise it via an explicit :class:`EngineConfig` on bigger boxes.
DEFAULT_PARALLEL_WORKERS = 4


#: The execution modes the chase variants know how to dispatch on.
#: ``"persistent"`` is accepted as a mode spelling but normalizes to
#: ``mode="parallel"`` + ``persistent=True`` at construction — the chase
#: variants only ever dispatch on the first three.
MODES = ("delta", "naive", "parallel", "persistent")


@dataclass(frozen=True)
class EngineConfig:
    """Resolved configuration of a chase execution engine.

    Parameters
    ----------
    name:
        The registry name the configuration is selected by.  For the
        built-ins this coincides with the mode; registered presets may
        use any name (e.g. ``"turbo"``).
    mode:
        The execution mode the chase variants dispatch on — one of
        ``"delta"``, ``"naive"``, ``"parallel"``.  Defaults to ``name``;
        a preset under a custom name must set it explicitly.  Validated
        at construction, so a typo raises instead of silently running
        the wrong engine.
    workers:
        Worker-pool size used by the parallel scheduler.  ``1`` runs the
        sharded enumeration inline (useful for debugging and for the
        determinism tests); ignored by the sequential engines.
    shards:
        Number of hash shards the per-round delta is split into.  ``0``
        (the default) means one shard per worker.  The shard count never
        affects results — only how enumeration work is distributed.
    use_processes:
        When True the scheduler uses a process pool instead of threads.
        Opt-in: processes sidestep the GIL for large per-round matching
        but pay pickling costs proportional to the instance per round.
    persistent_workers:
        When True the scheduler runs on the persistent
        :class:`~repro.engine.workers.WorkerPool` instead of an executor:
        worker processes keep long-lived instance replicas fed by
        per-round deltas (no full-context pickle per round) and the
        firing path is sharded across the pool too.  Implies a
        parallel-mode engine; ``use_processes`` is irrelevant (the pool
        is always processes).
    adaptive_routing:
        When True, the persistent pool's shard→worker placement is
        size-balanced instead of hash-uniform: each round's non-empty
        shards are binned onto workers largest-first by their estimated
        byte weight (:func:`repro.engine.shards.atom_weight`), so one hot
        predicate hashing into one shard no longer serializes the pool.
        Default False — hash-uniform round-robin placement is kept as the
        reference.  Requires ``persistent_workers`` (the executor
        backends have no shard→worker placement: their task queues
        load-balance dynamically); placement never affects results, only
        load balance.
    columnar:
        When True (the default), persistent workers hold id-native
        :class:`~repro.engine.columnar.ColumnarInstance` replicas
        instead of object-level instances: packed sync buffers fold
        straight into flat id columns (no per-round ``decode_atoms``),
        probes run on id tuples, and atoms materialize lazily only
        where the matcher touches them.  An ablation knob — results are
        bit-identical either way; ignored by the non-persistent
        engines.
    shared_memory:
        When True, the persistent pool routes payloads of at least
        ``shm_threshold`` bytes (seed rows, sync deltas, pivot/task
        buffers) through :class:`~repro.engine.shm.SegmentPool`
        shared-memory segments; the pipes carry only small control
        envelopes holding ``(segment, offset, length)`` refs.  Opt-in
        (default False) and requires ``persistent_workers`` — the other
        backends have no long-lived processes to share segments with.
        Raises at pool start when the platform has no working
        ``multiprocessing.shared_memory`` (see
        :func:`repro.engine.shm.shm_available`).
    shm_threshold:
        Minimum payload size, in bytes, that rides shared memory when
        ``shared_memory`` is on.  Below it the raw bytes stay in the
        pipe envelope (a pickled segment ref costs ~90 bytes, so tiny
        payloads would lose).
    description:
        One-line human description, shown by ``repro chase
        --list-engines`` and usable by third-party presets.  Presentation
        only — it never affects dispatch.
    """

    name: str
    mode: str = ""
    workers: int = 1
    shards: int = 0
    use_processes: bool = False
    persistent_workers: bool = False
    adaptive_routing: bool = False
    columnar: bool = True
    shared_memory: bool = False
    shm_threshold: int = 256
    description: str = ""

    def __post_init__(self):
        if not self.mode:
            object.__setattr__(self, "mode", self.name)
        if self.mode not in MODES:
            valid = ", ".join(MODES)
            raise ChaseError(
                f"engine {self.name!r} has unknown mode {self.mode!r}; "
                f"valid modes: {valid}"
            )
        if self.mode == "persistent":
            object.__setattr__(self, "mode", "parallel")
            object.__setattr__(self, "persistent_workers", True)
        if self.persistent_workers and self.mode != "parallel":
            raise ChaseError(
                f"engine {self.name!r}: persistent_workers requires a "
                f"parallel-mode engine (got mode {self.mode!r})"
            )
        if self.adaptive_routing and not self.persistent_workers:
            raise ChaseError(
                f"engine {self.name!r}: adaptive_routing requires "
                f"persistent workers — the executor backends have no "
                f"shard→worker placement to balance (their task queues "
                f"load-balance dynamically)"
            )
        if self.shared_memory and not self.persistent_workers:
            raise ChaseError(
                f"engine {self.name!r}: shared_memory requires persistent "
                f"workers — only the long-lived pool has processes to "
                f"share segments with"
            )
        if self.shm_threshold < 1:
            raise ChaseError(
                f"engine {self.name!r} needs a positive shm_threshold, "
                f"got {self.shm_threshold}"
            )
        if self.workers < 1:
            raise ChaseError(
                f"engine {self.name!r} needs at least 1 worker, "
                f"got {self.workers}"
            )
        if self.shards < 0:
            raise ChaseError(
                f"engine {self.name!r} cannot use a negative shard count"
            )

    @property
    def is_parallel(self) -> bool:
        """True when rounds go through the sharded scheduler."""
        return self.mode == "parallel"

    @property
    def is_naive(self) -> bool:
        """True for the full re-match reference mode."""
        return self.mode == "naive"

    @property
    def is_persistent(self) -> bool:
        """True when rounds run on the persistent worker pool."""
        return self.persistent_workers

    @property
    def shard_count(self) -> int:
        """The effective number of delta shards (defaults to ``workers``)."""
        return self.shards or self.workers

    def with_workers(self, workers: int) -> "EngineConfig":
        """Return a copy with a different worker-pool size."""
        return replace(self, workers=workers)


#: The registry: engine name -> default configuration.  Insertion order is
#: the order names are listed in error messages and ``--engine`` help.
_REGISTRY: dict[str, EngineConfig] = {
    "delta": EngineConfig(
        "delta",
        description=(
            "sequential semi-naive enumeration pivoted on the previous "
            "round's delta (the default)"
        ),
    ),
    "naive": EngineConfig(
        "naive",
        description=(
            "full re-match reference engine; the ground truth the others "
            "are tested against"
        ),
    ),
    "parallel": EngineConfig(
        "parallel",
        workers=DEFAULT_PARALLEL_WORKERS,
        description=(
            "sharded round scheduler (threads) plus batched firing; "
            "bit-identical for every worker/shard count"
        ),
    ),
    "persistent": EngineConfig(
        "persistent",
        workers=DEFAULT_PARALLEL_WORKERS,
        description=(
            "persistent delta-fed process workers with sharded firing; "
            "replicas seeded once, rounds ship only the delta"
        ),
    ),
}


def available_engines() -> tuple[str, ...]:
    """The registered engine names, in registration order."""
    return tuple(_REGISTRY)


def registered_engines() -> tuple[EngineConfig, ...]:
    """The registered default configurations, in registration order.

    The CLI generates ``--engine`` help and ``--list-engines`` output
    from this, so registered presets show up automatically.
    """
    return tuple(_REGISTRY.values())


def register_engine(config: EngineConfig, *, replace_existing: bool = False) -> None:
    """Register ``config`` as the default for its name.

    Third parties can add tuned presets — e.g.
    ``EngineConfig("turbo", mode="parallel", workers=8,
    use_processes=True)`` — and select them by name everywhere an
    ``engine`` argument is accepted; the preset's ``mode`` decides how
    the chase variants dispatch it.
    """
    if config.name in _REGISTRY and not replace_existing:
        raise ChaseError(
            f"engine {config.name!r} is already registered; pass "
            f"replace_existing=True to override it"
        )
    _REGISTRY[config.name] = config


def resolve_engine(engine: str | EngineConfig) -> EngineConfig:
    """Resolve an engine name or configuration to an :class:`EngineConfig`.

    Raises :class:`~repro.errors.ChaseError` with the list of valid names
    when ``engine`` is an unknown string.  Explicit :class:`EngineConfig`
    instances pass through untouched (mode and pool fields were validated
    on construction), so callers can tune workers/shards per run.
    """
    if isinstance(engine, EngineConfig):
        return engine
    config = _REGISTRY.get(engine)
    if config is None:
        valid = ", ".join(available_engines())
        raise ChaseError(
            f"unknown chase engine {engine!r}; valid engines: {valid}"
        )
    return config
