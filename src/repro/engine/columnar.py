"""Columnar id-native instances: one encoding from store to wire.

The persistent pool's PR 6 wire codec interns every symbol once, but the
*stores* on both ends of the pipe stayed object-shaped: worker replicas
decode each packed sync buffer back into ``Atom`` objects and re-index
them from scratch, and every ``delta_since`` re-encodes object atoms the
encoder has already packed before.  A :class:`ColumnarInstance` removes
that round-trip: atoms live as flat integer rows over the pool's shared
symbol tables, in exactly the id space of :mod:`repro.engine.wire`.

Layout
------
One :class:`Vocabulary` (a view over the parent's
:class:`~repro.engine.wire.WireEncoder` tables or a worker's
:class:`~repro.engine.wire.WireDecoder` replica of them) maps ids to
term/predicate objects and back.  Per predicate id the store keeps

* a flat ``array('q')`` *column* of term ids, row-major (``arity`` ids
  per row) — the same ``(pred_id, term_ids...)`` stream the wire packs,
* a row set of id tuples for O(1) membership (``probe`` runs on ids, no
  ``Atom`` is built),
* an id-level positional index ``(pred_id, position, term_id) -> rows``
  mirroring the object instance's most-selective candidate seeding.

Revision log and the wire
-------------------------
The revision counter is the number of rows ever appended.  Next to the
columns the store keeps an append-only *wire log*: each accepted row's
LEB128 encoding, concatenated, with one byte mark per revision.
:meth:`ColumnarInstance.packed_delta_since` is therefore a byte *slice*
— the delta a replica or a downstream worker needs is re-served in wire
format without touching a single id.  Ingest is symmetric:
:meth:`ColumnarInstance.ingest_packed` walks a packed buffer with
:func:`repro.engine.wire.iter_atom_spans` and copies each new row's span
straight into the wire log — packed bytes in, packed bytes out, encoded
exactly once in the row's lifetime.

Lazy materialization
--------------------
The homomorphism matcher still speaks ``Atom``: the store implements the
matcher-facing slice of the :class:`~repro.logic.instances.Instance` API
(``count`` / ``position_count`` / ``sorted_with_predicate`` /
``matching_position`` / ``__contains__``) by materializing atoms lazily,
bucket by bucket, through the cached-hash
:func:`~repro.logic.atoms.build_atom` fast path — one ``Atom`` per row
ever, built only when the matcher first touches its bucket.  Sync
ingest, membership probes, delta extraction and candidate *counting*
never build objects, which is what takes ``decode_atoms`` out of the
persistent worker's per-round hot path.

Ordering is inherited, not re-invented: materialized buckets are sorted
with the library's ``Atom`` order, so every enumeration the matcher
seeds from a columnar replica is bit-identical to one seeded from an
object instance — the equivalence matrix in
``tests/test_runner_equivalence.py`` runs the persistent engine on
columnar replicas throughout.

Columnar instances are append-only (the chase never retracts);
``discard`` has no columnar counterpart by design.
"""

from __future__ import annotations

from array import array
from typing import TYPE_CHECKING, Iterable, Iterator, Sequence

from repro.engine import wire
from repro.errors import ChaseError
from repro.logic.atoms import Atom, build_atom
from repro.logic.predicates import Predicate
from repro.logic.terms import Term

if TYPE_CHECKING:  # annotation-only
    from repro.engine.wire import WireDecoder, WireEncoder

_EMPTY_ATOMS: tuple[Atom, ...] = ()


class Vocabulary:
    """A live id ↔ object view over one side's wire symbol tables.

    Both ends of the pool hold the same append-only tables in different
    shapes — the parent's :class:`~repro.engine.wire.WireEncoder` wraps
    ``TermTable``/``PredicateTable`` objects, a worker's
    :class:`~repro.engine.wire.WireDecoder` holds flat lists.  The
    vocabulary binds the four live containers (terms, term ids,
    predicates, predicate ids) by reference, so a columnar instance
    keyed on it sees every symbol the table learns later — no copies,
    no synchronization.
    """

    __slots__ = ("terms", "term_ids", "predicates", "predicate_ids")

    def __init__(
        self,
        terms: Sequence[Term],
        term_ids: dict,
        predicates: Sequence[Predicate],
        predicate_ids: dict,
    ):
        self.terms = terms
        self.term_ids = term_ids
        self.predicates = predicates
        self.predicate_ids = predicate_ids

    @classmethod
    def of_encoder(cls, encoder: "WireEncoder") -> "Vocabulary":
        """The parent-side view over an encoder's tables."""
        return cls(
            encoder.terms.objects,
            encoder.terms.ids,
            encoder.predicates.objects,
            encoder.predicates.ids,
        )

    @classmethod
    def of_decoder(cls, decoder: "WireDecoder") -> "Vocabulary":
        """The worker-side view over a decoder's table replica."""
        return cls(
            decoder.terms,
            decoder.term_ids,
            decoder.predicates,
            decoder.predicate_ids,
        )


class ColumnarInstance:
    """An append-only id-native atom store over a shared vocabulary.

    See the module docstring for the layout.  The matcher-facing methods
    mirror :class:`~repro.logic.instances.Instance` exactly (same names,
    same deterministic orders); the id-native methods (``add_row``,
    ``contains_row``, ``ingest_packed``, ``packed_delta_since``) are the
    hot path the persistent protocol runs on.
    """

    __slots__ = (
        "_vocabulary",
        "_columns",
        "_row_sets",
        "_by_position",
        "_ranges",
        "_revision",
        "_wire",
        "_wire_marks",
        "_atom_rows",
        "_sorted_predicate",
        "_sorted_position",
    )

    def __init__(self, vocabulary: Vocabulary):
        self._vocabulary = vocabulary
        # pred_id -> flat row-major term-id column (arity ids per row).
        self._columns: dict[int, array] = {}
        # pred_id -> set of term-id row tuples (membership + dedup).
        self._row_sets: dict[int, set[tuple[int, ...]]] = {}
        # (pred_id, position, term_id) -> row indexes into the column.
        self._by_position: dict[tuple[int, int, int], list[int]] = {}
        # Revision log over row ranges: (pred_id, first_row, stop_row),
        # contiguous appends to one predicate coalesce into one entry.
        self._ranges: list[list[int]] = []
        self._revision = 0
        # The wire log: every accepted row's LEB128 bytes, appended in
        # revision order; _wire_marks[r] is the log length at revision r.
        self._wire = bytearray()
        self._wire_marks: list[int] = [0]
        # Lazy per-row Atom cache and the sorted bucket caches the
        # matcher reads (invalidated per key on append, like Instance).
        self._atom_rows: dict[int, list[Atom | None]] = {}
        self._sorted_predicate: dict[int, tuple[Atom, ...]] = {}
        self._sorted_position: dict[
            tuple[int, int, int], tuple[Atom, ...]
        ] = {}

    # ------------------------------------------------------------------
    # Id-native mutation
    # ------------------------------------------------------------------

    @property
    def vocabulary(self) -> Vocabulary:
        return self._vocabulary

    @property
    def revision(self) -> int:
        """Rows ever appended (columnar stores are append-only)."""
        return self._revision

    def row_count(self, pred_id: int) -> int:
        rows = self._row_sets.get(pred_id)
        return len(rows) if rows else 0

    def contains_row(self, pred_id: int, term_ids: tuple[int, ...]) -> bool:
        rows = self._row_sets.get(pred_id)
        return rows is not None and term_ids in rows

    def add_row(
        self,
        pred_id: int,
        term_ids: tuple[int, ...],
        wire_bytes: bytes | None = None,
    ) -> bool:
        """Append one row; return True when it was new.

        ``wire_bytes`` — the row's packed encoding, when the caller
        already holds it (a span of an ingested buffer) — is copied into
        the wire log verbatim; otherwise the row is packed here, the
        only time it will ever be.
        """
        rows = self._row_sets.get(pred_id)
        if rows is None:
            rows = self._row_sets[pred_id] = set()
            self._columns[pred_id] = array("q")
            self._atom_rows[pred_id] = []
        if term_ids in rows:
            return False
        column = self._columns[pred_id]
        arity = len(term_ids)
        row = len(column) // arity if arity else len(rows)
        rows.add(term_ids)
        column.extend(term_ids)
        self._atom_rows[pred_id].append(None)
        self._sorted_predicate.pop(pred_id, None)
        for position, term_id in enumerate(term_ids):
            key = (pred_id, position, term_id)
            bucket = self._by_position.get(key)
            if bucket is None:
                self._by_position[key] = [row]
            else:
                bucket.append(row)
            self._sorted_position.pop(key, None)
        if wire_bytes is None:
            wire_bytes = wire.pack_ids((pred_id, *term_ids))
        self._wire += wire_bytes
        ranges = self._ranges
        if ranges and ranges[-1][0] == pred_id and ranges[-1][2] == row:
            ranges[-1][2] = row + 1
        else:
            ranges.append([pred_id, row, row + 1])
        self._revision += 1
        self._wire_marks.append(len(self._wire))
        return True

    def add_atom(self, atom: Atom, encoder: "WireEncoder") -> bool:
        """Intern ``atom``'s symbols through ``encoder`` and append it.

        The parent-side ingest path (columnar
        :class:`~repro.engine.shards.ShardedIndex` shards): interning
        here is what puts the symbols on the next table segment, so the
        row's ids are resolvable wherever the segment has been replayed.
        """
        pred_id = encoder.predicates.intern(atom.predicate)
        intern = encoder.terms.intern
        return self.add_row(pred_id, tuple(intern(t) for t in atom.args))

    # checks: hot
    def ingest_packed(self, data: bytes) -> int:
        """Fold one wire-format atom buffer in; return the new-row count.

        Each atom's byte span is copied into the wire log as-is when the
        row is new — no re-encoding — and duplicate rows are dropped
        (sync streams are deduplicated already; seed-after-resize
        replays are not).
        """
        if not data:
            return 0
        predicates = self._vocabulary.predicates
        added = 0
        for pred_id, term_ids, start, stop in wire.iter_atom_spans(
            data, lambda p: predicates[p].arity
        ):
            if self.add_row(pred_id, term_ids, data[start:stop]):
                added += 1
        return added

    # ------------------------------------------------------------------
    # Deltas: served by slicing, not re-encoding
    # ------------------------------------------------------------------

    # checks: hot
    def packed_delta_since(self, revision: int) -> bytes:
        """The wire-format bytes of every row appended after ``revision``.

        One slice of the append-only wire log — exactly the buffer
        :meth:`~repro.engine.wire.WireEncoder.encode_atoms` would build
        from the same rows, at the cost of a memcpy.
        """
        if revision < 0 or revision > self._revision:
            raise ChaseError(
                f"columnar delta revision {revision} out of range "
                f"(store at {self._revision})"
            )
        return bytes(self._wire[self._wire_marks[revision]:])

    def delta_rows_since(
        self, revision: int
    ) -> Iterator[tuple[int, tuple[int, ...]]]:
        """``(pred_id, term_ids)`` rows appended after ``revision``."""
        remaining = self._revision - revision
        if remaining <= 0:
            return
        for pred_id, first, stop in self._suffix_ranges(remaining):
            yield from self._rows_of(pred_id, first, stop)

    def _suffix_ranges(
        self, remaining: int
    ) -> list[tuple[int, int, int]]:
        """The trailing ``remaining`` rows as forward-order range triples.

        Ranges are appended in revision order, so the suffix is found by
        a reversed scan and flipped back before use.
        """
        suffix: list[tuple[int, int, int]] = []
        for pred_id, first, stop in reversed(self._ranges):
            width = stop - first
            if width >= remaining:
                suffix.append((pred_id, stop - remaining, stop))
                break
            suffix.append((pred_id, first, stop))
            remaining -= width
        suffix.reverse()
        return suffix

    def delta_atoms_since(self, revision: int) -> list[Atom]:
        """Materialized delta atoms, in append order."""
        remaining = self._revision - revision
        if remaining <= 0:
            return []
        atoms: list[Atom] = []
        for pred_id, first, stop in self._suffix_ranges(remaining):
            for row in range(first, stop):
                atoms.append(self._atom_at(pred_id, row))
        return atoms

    def _rows_of(self, pred_id: int, first: int, stop: int):
        column = self._columns[pred_id]
        arity = self._vocabulary.predicates[pred_id].arity
        for row in range(first, stop):
            base = row * arity
            yield pred_id, tuple(column[base:base + arity])

    # ------------------------------------------------------------------
    # Materialization
    # ------------------------------------------------------------------

    def _atom_at(self, pred_id: int, row: int) -> Atom:
        cache = self._atom_rows[pred_id]
        atom = cache[row]
        if atom is None:
            vocabulary = self._vocabulary
            predicate = vocabulary.predicates[pred_id]
            terms = vocabulary.terms
            arity = predicate.arity
            base = row * arity
            column = self._columns[pred_id]
            atom = build_atom(
                predicate, tuple(terms[i] for i in column[base:base + arity])
            )
            cache[row] = atom
        return atom

    # ------------------------------------------------------------------
    # The matcher-facing Instance API slice
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return sum(len(rows) for rows in self._row_sets.values())

    def __iter__(self) -> Iterator[Atom]:
        for pred_id, rows in self._row_sets.items():
            for row in range(len(self._atom_rows[pred_id])):
                yield self._atom_at(pred_id, row)

    def __contains__(self, atom: Atom) -> bool:
        vocabulary = self._vocabulary
        pred_id = vocabulary.predicate_ids.get(atom.predicate)
        if pred_id is None:
            return False
        rows = self._row_sets.get(pred_id)
        if not rows:
            return False
        term_ids = vocabulary.term_ids
        ids = []
        for term in atom.args:
            term_id = term_ids.get(term)
            if term_id is None:
                return False
            ids.append(term_id)
        return tuple(ids) in rows

    def count(self, predicate: Predicate) -> int:
        pred_id = self._vocabulary.predicate_ids.get(predicate)
        return self.row_count(pred_id) if pred_id is not None else 0

    def position_count(
        self, predicate: Predicate, position: int, term: Term
    ) -> int:
        vocabulary = self._vocabulary
        pred_id = vocabulary.predicate_ids.get(predicate)
        if pred_id is None:
            return 0
        term_id = vocabulary.term_ids.get(term)
        if term_id is None:
            return 0
        bucket = self._by_position.get((pred_id, position, term_id))
        return len(bucket) if bucket else 0

    def sorted_with_predicate(self, predicate: Predicate) -> tuple[Atom, ...]:
        pred_id = self._vocabulary.predicate_ids.get(predicate)
        if pred_id is None:
            return _EMPTY_ATOMS
        cached = self._sorted_predicate.get(pred_id)
        if cached is None:
            rows = self._row_sets.get(pred_id)
            if not rows:
                return _EMPTY_ATOMS
            cached = tuple(
                sorted(
                    self._atom_at(pred_id, row) for row in range(len(rows))
                )
            )
            self._sorted_predicate[pred_id] = cached
        return cached

    def matching_position(
        self, predicate: Predicate, position: int, term: Term
    ) -> tuple[Atom, ...]:
        vocabulary = self._vocabulary
        pred_id = vocabulary.predicate_ids.get(predicate)
        if pred_id is None:
            return _EMPTY_ATOMS
        term_id = vocabulary.term_ids.get(term)
        if term_id is None:
            return _EMPTY_ATOMS
        key = (pred_id, position, term_id)
        cached = self._sorted_position.get(key)
        if cached is None:
            bucket = self._by_position.get(key)
            if bucket is None:
                return _EMPTY_ATOMS
            cached = tuple(
                sorted(self._atom_at(pred_id, row) for row in bucket)
            )
            self._sorted_position[key] = cached
        return cached

    def signature(self) -> list[Predicate]:
        """The predicates with at least one row (materialized view)."""
        predicates = self._vocabulary.predicates
        return [
            predicates[pred_id]
            for pred_id, rows in self._row_sets.items()
            if rows
        ]

    def sorted_atoms(self) -> list[Atom]:
        """Every atom, materialized, in the library's deterministic order."""
        return sorted(self)

    # Convenience for object-shaped callers (tests, ShardedIndex ingest
    # fallbacks); the protocol hot paths use ingest_packed/add_row.
    def update(self, atoms: Iterable[Atom], encoder: "WireEncoder") -> int:
        return sum(1 for atom in atoms if self.add_atom(atom, encoder))
