"""``repro.engine`` — the chase execution engine subsystem.

Every saturation in the library (the three chase variants and the
semi-naive Datalog closure) runs on the machinery in this package: one
strategy-driven saturation loop (:class:`ChaseRunner` +
:class:`VariantPolicy` in :mod:`repro.engine.runner`), one shared
pivot-decomposition core, one engine registry, one scheduler for parallel
fan-out, and one batched firing path.  The variant modules under
``repro.chase`` (and the closure in ``repro.rewriting.datalog``) are thin
policy declarations over the runner.

Engine selection
----------------
APIs that run rounds accept ``engine=`` as a registered name or an
explicit :class:`EngineConfig`:

======================  =====================================================
``engine="delta"``      Sequential semi-naive enumeration (chase default):
                        each round matches rule bodies pivoted on the
                        previous round's delta through the positional index.
``engine="naive"``      Full re-match reference engine; the ground truth
                        the others are tested against.
``engine="parallel"``   Sharded scheduler + batched firing (closure
                        default).  ``EngineConfig("parallel", workers=8)``
                        tunes the pool; ``use_processes=True`` swaps the
                        thread pool for processes.
``engine="persistent"`` The parallel engine on persistent delta-fed
                        process workers (:class:`WorkerPool`): replicas
                        seeded once, per-round delta sync instead of
                        per-round full-context pickles, sharded firing
                        and worker-resident satisfaction probes across
                        the pool.  ``adaptive_routing=True`` swaps the
                        hash-uniform shard placement for size-balanced
                        bin packing.  Replicas are id-native
                        :class:`ColumnarInstance` columns by default
                        (``columnar=False`` restores object replicas
                        for ablation); ``shared_memory=True`` moves
                        payloads above ``shm_threshold`` bytes off the
                        pipes into :class:`SegmentPool` shared-memory
                        segments.
======================  =====================================================

Unknown names raise :class:`~repro.errors.ChaseError` listing the valid
engines; :func:`register_engine` adds presets.

Sharding
--------
The parallel engine routes each round's delta through a
:class:`~repro.engine.shards.ShardedIndex`: atoms are hash-partitioned
into per-shard positional-indexed instances (with per-shard ``delta_since``
views), one enumeration task runs per non-empty shard against the full
instance, and the shard count defaults to the worker count.  Shard
assignment is invisible in the results.

Determinism guarantees
----------------------
All engines fire the same triggers in the same canonical order — per rule
in rule-set order, matches sorted by body-variable image — and therefore
produce bit-identical :class:`~repro.chase.result.ChaseResult` instances:
same atoms, levels, timestamps, null names and provenance records.  For
the parallel engine this holds for *every* worker/shard count because the
merge is a keyed union on canonical images followed by a sort; the
equivalence suite (``tests/test_engine_parallel.py``) pins this across the
corpus families.

Performance model
-----------------
The batched firing path (:mod:`repro.engine.batch`) amortizes provenance
recording over a whole round, and the closure's derivation mode skips
trigger identity entirely — these wins apply even single-threaded, which
is what ``engine="parallel"`` buys on a GIL build (see
``benchmarks/bench_exp13_parallel.py``).  Thread fan-out adds concurrency
on free-threaded builds; ``use_processes=True`` trades per-round pickling
for GIL-free matching on multicore machines.
"""

from repro.engine.batch import RoundOutcome, fire_round
from repro.engine.columnar import ColumnarInstance, Vocabulary
from repro.engine.config import (
    DEFAULT_PARALLEL_WORKERS,
    EngineConfig,
    available_engines,
    register_engine,
    registered_engines,
    resolve_engine,
)
from repro.engine.core import (
    as_delta_instance,
    delta_homomorphisms,
    derive_delta_atoms,
    rule_delta_images,
)
from repro.engine.runner import ChaseRunner, RoundPlan, VariantPolicy
from repro.engine.scheduler import RoundScheduler
from repro.engine.shards import ShardedIndex
from repro.engine.shm import SegmentPool, SegmentReader, SegmentRef, shm_available
from repro.engine.wire import WireDecoder, WireEncoder
from repro.engine.workers import TRANSPORT_STATS, WorkerPool

__all__ = [
    "ChaseRunner",
    "ColumnarInstance",
    "DEFAULT_PARALLEL_WORKERS",
    "EngineConfig",
    "RoundOutcome",
    "RoundPlan",
    "RoundScheduler",
    "SegmentPool",
    "SegmentReader",
    "SegmentRef",
    "VariantPolicy",
    "ShardedIndex",
    "TRANSPORT_STATS",
    "Vocabulary",
    "WireDecoder",
    "WireEncoder",
    "WorkerPool",
    "as_delta_instance",
    "available_engines",
    "delta_homomorphisms",
    "derive_delta_atoms",
    "fire_round",
    "register_engine",
    "registered_engines",
    "resolve_engine",
    "rule_delta_images",
    "shm_available",
]
