"""Command-line interface: ``python -m repro <command>``.

Commands
--------

``chase``      run the oblivious chase on a rule file + instance string
``answer``     serve a certain-answer request (goal-directed; JSON out)
``rewrite``    UCQ-rewrite a query against a rule file
``classify``   print rule-class membership and termination certificates
``property-p`` run the Theorem 1 verifier
``analyze``    the full analysis battery (one table row per rule set)

Rule files use the DSL of :mod:`repro.rules.parser`, one rule per line.

Observability
-------------
``repro chase`` can emit the unified telemetry of :mod:`repro.obs`::

    repro chase rules.dlg --instance 'E(a,b)' --engine persistent \
        --trace /tmp/run.jsonl --stats

``--trace PATH`` writes one JSON line per round (disjoint phase timers,
trigger/atom counts, round plan, shard routing weights, transport byte
and worker decode/execute/encode deltas) plus a run header and summary;
render it later with ``python tools/trace_summary.py PATH``.  ``--stats``
prints the per-round phase table and the run's registry counter deltas
(matcher / instantiation / transport groups) to stdout.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys

from repro.analysis.report import analyze
from repro.chase.oblivious import oblivious_chase
from repro.engine.config import (
    available_engines,
    registered_engines,
    resolve_engine,
)
from repro.core.theorem import check_property_p
from repro.io.text import format_instance, format_table
from repro.logic.instances import Instance
from repro.logic.terms import Constant
from repro.obs import TRACE_SCHEMA_VERSION, RunTrace, default_registry
from repro.rewriting.rewriter import rewrite
from repro.rules.acyclicity import chase_terminates_certificate
from repro.rules.classes import classify
from repro.rules.parser import parse_instance, parse_query, parse_rules
from repro.serving import STRATEGIES, answer


def _load_rules(path: str):
    text = pathlib.Path(path).read_text()
    return parse_rules(text, name=pathlib.Path(path).stem)


def _load_instance(text: str) -> Instance:
    return parse_instance(text) if text else Instance()


def _format_engine_listing() -> str:
    """One line per registered engine, generated from the registry."""
    lines = []
    for config in registered_engines():
        knobs = f"mode={config.mode}"
        if config.is_parallel:
            knobs += f", workers={config.workers}"
        if config.is_persistent:
            knobs += ", telemetry=transport"
        lines.append(f"  {config.name:<12} [{knobs}] {config.description}")
    lines.append(
        "  (telemetry=transport: rounds cross the worker-pool wire, so "
        "--trace/--stats\n   additionally report per-command byte counters "
        "and worker decode/execute/\n   encode timings; the other engines "
        "run in-process and emit only the\n   matcher/instantiation groups "
        "and phase timers)"
    )
    return "\n".join(lines)


def _flatten_counters(snapshot: dict, prefix: str = "") -> list[tuple]:
    """Nested counter snapshot -> sorted ``(dotted.name, value)`` rows."""
    rows: list[tuple] = []
    for key in sorted(snapshot):
        value = snapshot[key]
        name = f"{prefix}{key}"
        if isinstance(value, dict):
            rows.extend(_flatten_counters(value, prefix=name + "."))
        else:
            if isinstance(value, float):
                value = f"{value:.6f}"
            rows.append((name, value))
    return rows


def cmd_chase(args) -> int:
    if args.list_engines:
        print("registered chase engines:")
        print(_format_engine_listing())
        return 0
    if args.rules is None:
        sys.exit("repro chase: a rule file is required (or --list-engines)")
    rules = _load_rules(args.rules)
    instance = _load_instance(args.instance)
    engine = resolve_engine(args.engine)
    if args.workers is not None:
        if not engine.is_parallel:
            sys.exit(
                "repro chase: --workers requires a parallel-mode engine "
                f"(got --engine {engine.name})"
            )
        if args.workers < 1:
            sys.exit("repro chase: --workers must be >= 1")
        engine = engine.with_workers(args.workers)
    trace = RunTrace() if (args.trace or args.stats) else None
    result = oblivious_chase(
        instance, rules, max_levels=args.levels, max_atoms=args.max_atoms,
        engine=engine, trace=trace,
    )
    stats = result.statistics()
    print(
        f"levels={result.levels_completed} terminated={result.terminated} "
        f"atoms={stats['atoms']} terms={stats['terms']}"
    )
    if args.show:
        print(format_instance(result.instance, limit=args.show))
    if args.trace:
        path = trace.to_jsonl(args.trace)
        print(f"trace: {len(trace.rounds)} round records -> {path}")
    if args.stats:
        print(trace.summary_table())
        rows = [
            (name, value)
            for name, value in _flatten_counters(
                result.telemetry["registry"]
            )
            if value not in (0, "0.000000")
        ]
        print(
            format_table(
                ["counter", "delta"], rows, title="telemetry (run deltas)"
            )
        )
    return 0


def cmd_answer(args) -> int:
    rules = _load_rules(args.rules)
    instance = _load_instance(args.instance)
    answers = tuple(args.answers.split(",")) if args.answers else ()
    query = parse_query(args.query, answers=answers)
    bindings = (
        tuple(Constant(name) for name in args.bindings.split(","))
        if args.bindings
        else ()
    )
    engine = resolve_engine(args.engine)
    if args.workers is not None:
        if not engine.is_parallel:
            sys.exit(
                "repro answer: --workers requires a parallel-mode engine "
                f"(got --engine {engine.name})"
            )
        if args.workers < 1:
            sys.exit("repro answer: --workers must be >= 1")
    trace = RunTrace() if args.trace else None
    result = answer(
        instance,
        rules,
        query,
        bindings,
        strategy=args.strategy,
        engine=engine,
        workers=args.workers,
        max_levels=args.levels,
        max_atoms=args.max_atoms,
        trace=trace,
    )
    payload = {
        "entailed": result.entailed,
        "verdict": result.verdict,
        "evidence": result.evidence,
        "strategy": result.strategy,
        "provenance": result.provenance,
        "telemetry": result.telemetry,
    }
    if result.tuples is not None:
        payload["tuples"] = sorted(
            [str(t) for t in tup] for tup in result.tuples
        )
    print(json.dumps(payload, default=str, indent=2))
    if args.trace:
        path = trace.to_jsonl(args.trace)
        print(
            f"trace: {len(trace.rounds)} round records -> {path}",
            file=sys.stderr,
        )
    if args.stats:
        rows = [
            (name, value)
            for name, value in _flatten_counters(
                result.telemetry["registry"]
            )
            if value not in (0, "0.000000")
        ]
        print(
            format_table(
                ["counter", "delta"], rows, title="telemetry (request deltas)"
            ),
            file=sys.stderr,
        )
    return 0 if result.entailed else 1


def cmd_rewrite(args) -> int:
    rules = _load_rules(args.rules)
    answers = tuple(args.answers.split(",")) if args.answers else ()
    query = parse_query(args.query, answers=answers)
    result = rewrite(query, rules, max_depth=args.depth)
    if args.json:
        payload = {
            "complete": result.complete,
            "depth": result.depth,
            "generated": result.generated,
            "disjuncts": [str(d) for d in result.ucq],
            "telemetry": result.telemetry,
        }
        print(json.dumps(payload, default=str, indent=2))
        return 0 if result.complete else 1
    print(
        f"complete={result.complete} depth={result.depth} "
        f"disjuncts={len(result.ucq)}"
    )
    for disjunct in result.ucq:
        print(f"  {disjunct}")
    return 0 if result.complete else 1


def cmd_classify(args) -> int:
    rules = _load_rules(args.rules)
    report = classify(rules)
    report["termination_certificate"] = chase_terminates_certificate(rules)
    rows = sorted(report.items())
    print(format_table(["property", "value"], rows, title=rules.name))
    return 0


def cmd_property_p(args) -> int:
    rules = _load_rules(args.rules)
    instance = _load_instance(args.instance)
    report = check_property_p(
        rules, instance, max_levels=args.levels, max_atoms=args.max_atoms
    )
    print(f"tournament sizes : {report.tournament_sizes}")
    print(f"loop level       : {report.loop_level}")
    print(f"terminated       : {report.terminated}")
    print(f"consistent with (p): {report.consistent_with_property_p}")
    return 0 if report.consistent_with_property_p else 1


def cmd_analyze(args) -> int:
    rules = _load_rules(args.rules)
    instance = _load_instance(args.instance)
    if args.json:
        # Scope the registry around the battery so the JSON report also
        # carries the matcher/instantiation (and, on persistent engines,
        # transport) work the analysis cost.
        with default_registry().collect() as scope:
            report = analyze(rules, instance, max_levels=args.levels)
        report["telemetry"] = {
            "schema_version": TRACE_SCHEMA_VERSION,
            "registry": scope.delta,
        }
        print(json.dumps(report, default=str, indent=2))
    else:
        report = analyze(rules, instance, max_levels=args.levels)
        rows = sorted(report.items())
        print(format_table(["metric", "value"], rows, title=rules.name))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    sub = parser.add_subparsers(dest="command", required=True)

    chase_cmd = sub.add_parser(
        "chase", help="run the oblivious chase",
        description="Run the oblivious chase.\n\nengines (from the "
                    "registry in repro.engine.config):\n"
                    + _format_engine_listing(),
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    chase_cmd.add_argument("rules", nargs="?", default=None,
                           help="path to a rule file")
    chase_cmd.add_argument("--instance", default="", help="e.g. 'E(a,b)'")
    chase_cmd.add_argument("--levels", type=int, default=4)
    chase_cmd.add_argument("--max-atoms", type=int, default=100_000)
    chase_cmd.add_argument("--show", type=int, default=0,
                           help="print up to N atoms of the result")
    chase_cmd.add_argument("--engine", default="delta",
                           choices=available_engines(),
                           help="chase execution engine (default: "
                                "%(default)s; see --list-engines)")
    chase_cmd.add_argument("--workers", type=int, default=None,
                           help="worker-pool size for --engine "
                                "parallel/persistent (default: the "
                                "engine's preset)")
    chase_cmd.add_argument("--trace", default=None, metavar="PATH",
                           help="write a per-round telemetry trace as JSON "
                                "Lines to PATH (one record per round: phase "
                                "timers, counts, byte deltas; e.g. --trace "
                                "/tmp/run.jsonl, then render it with "
                                "tools/trace_summary.py)")
    chase_cmd.add_argument("--stats", action="store_true",
                           help="print the per-round phase table and the "
                                "run's telemetry counter deltas")
    chase_cmd.add_argument("--list-engines", action="store_true",
                           help="list the registered engines (name, mode, "
                                "default workers, transport-telemetry "
                                "support, description) and exit")
    chase_cmd.set_defaults(handler=cmd_chase)

    answer_cmd = sub.add_parser(
        "answer",
        help="serve a certain-answer request (JSON output)",
        description="Serve `<R, I> |= Q(t)` through the goal-directed "
                    "query-serving front door (repro.serving.answer). "
                    "Prints a JSON report: entailed, verdict "
                    "(exact/sound), evidence, strategy provenance and "
                    "telemetry; exit status 0 when entailed, 1 "
                    "otherwise.",
    )
    answer_cmd.add_argument("rules", help="path to a rule file")
    answer_cmd.add_argument("query", help="e.g. 'E(x,x)'")
    answer_cmd.add_argument("--instance", default="", help="e.g. 'E(a,b)'")
    answer_cmd.add_argument("--answers", default="",
                            help="comma-separated answer variables")
    answer_cmd.add_argument("--bindings", default="",
                            help="comma-separated constants grounding the "
                                 "answer variables (decision mode); empty "
                                 "with --answers enumerates the certain "
                                 "answer tuples")
    answer_cmd.add_argument("--strategy", default="auto",
                            choices=STRATEGIES,
                            help="serving strategy (default: %(default)s)")
    answer_cmd.add_argument("--engine", default="delta",
                            choices=available_engines(),
                            help="chase execution engine (default: "
                                 "%(default)s)")
    answer_cmd.add_argument("--workers", type=int, default=None,
                            help="worker-pool size for --engine "
                                 "parallel/persistent")
    answer_cmd.add_argument("--levels", type=int, default=6,
                            help="chase level budget (default: %(default)s)")
    answer_cmd.add_argument("--max-atoms", type=int, default=100_000)
    answer_cmd.add_argument("--trace", default=None, metavar="PATH",
                            help="write the strategy's per-round telemetry "
                                 "trace as JSON Lines to PATH")
    answer_cmd.add_argument("--stats", action="store_true",
                            help="print the request's telemetry counter "
                                 "deltas to stderr")
    answer_cmd.set_defaults(handler=cmd_answer)

    rewrite_cmd = sub.add_parser("rewrite", help="UCQ-rewrite a query")
    rewrite_cmd.add_argument("rules")
    rewrite_cmd.add_argument("query", help="e.g. 'E(x,x)'")
    rewrite_cmd.add_argument("--answers", default="",
                             help="comma-separated answer variables")
    rewrite_cmd.add_argument("--depth", type=int, default=10)
    rewrite_cmd.add_argument("--json", action="store_true",
                             help="emit a machine-readable JSON report "
                                  "(complete/depth/generated/disjuncts/"
                                  "telemetry) like `repro analyze --json`")
    rewrite_cmd.set_defaults(handler=cmd_rewrite)

    classify_cmd = sub.add_parser("classify", help="rule-class membership")
    classify_cmd.add_argument("rules")
    classify_cmd.set_defaults(handler=cmd_classify)

    property_cmd = sub.add_parser(
        "property-p", help="run the Theorem 1 verifier"
    )
    property_cmd.add_argument("rules")
    property_cmd.add_argument("--instance", default="")
    property_cmd.add_argument("--levels", type=int, default=4)
    property_cmd.add_argument("--max-atoms", type=int, default=30_000)
    property_cmd.set_defaults(handler=cmd_property_p)

    analyze_cmd = sub.add_parser("analyze", help="full analysis battery")
    analyze_cmd.add_argument("rules")
    analyze_cmd.add_argument("--instance", default="")
    analyze_cmd.add_argument("--levels", type=int, default=4)
    analyze_cmd.add_argument("--json", action="store_true")
    analyze_cmd.set_defaults(handler=cmd_analyze)

    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.handler(args)


if __name__ == "__main__":
    sys.exit(main())
