"""Legacy setup shim.

The execution environment has no ``wheel`` package, so PEP 660 editable
installs fail; this shim lets ``pip install -e . --no-use-pep517`` (or a
plain ``pip install -e .`` on older pips) fall back to ``setup.py develop``.

The library's one runtime dependency is networkx (graph algorithms for
acyclicity, treewidth and tournament analysis); the ``dev`` extra mirrors
``requirements-dev.txt`` (the file CI installs), so ``pip install -e
.[dev]`` and the workflow resolve the same toolchain.
"""

import pathlib

from setuptools import find_packages, setup


def _dev_requirements() -> list[str]:
    """The non-comment lines of requirements-dev.txt."""
    path = pathlib.Path(__file__).parent / "requirements-dev.txt"
    if not path.exists():  # sdist without the dev file: no extra
        return []
    return [
        line
        for line in (
            raw.strip() for raw in path.read_text().splitlines()
        )
        if line and not line.startswith("#")
    ]


setup(
    name="repro",
    version="0.3.0",
    description=(
        "Reproduction of journals_pacmmod_LarroqueOT25: chase engines, "
        "rule-set surgery and UCQ rewriting"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.11",
    install_requires=["networkx>=3.0"],
    extras_require={"dev": _dev_requirements()},
)
