"""Legacy setup shim.

The execution environment has no ``wheel`` package, so PEP 660 editable
installs fail; this shim lets ``pip install -e . --no-use-pep517`` (or a
plain ``pip install -e .`` on older pips) fall back to ``setup.py develop``.
Metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
