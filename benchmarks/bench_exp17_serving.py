"""EXP-17 — goal-directed serving vs full saturation.

PR 8's ``answer()`` front door claims that a decision query does not
need the full chase: prune the rules to the query-relevant fragment,
probe each round's delta incrementally, stop on the first witness.  The
pre-serving recipe — saturate to the depth budget, then probe once —
pays for every atom the budget allows whether or not the query needed
it.

Two workloads where the gap is structural:

* ``tc_path_60`` — transitive closure over a 60-edge path with a noise
  successor subsystem on a disjoint predicate.  The query asks for one
  nearby closure edge (``E(c0, c5)``): relevance pruning drops the noise
  rule entirely and the witness appears after three rounds of doubling,
  while saturation closes the whole prefix to the depth budget.
* ``branching_tree_3`` — the skewed-fanout corpus entry: every node
  spawns three successors, so saturation grows geometrically with
  depth; a three-step-path query is witnessed at depth three down one
  branch.

Acceptance: identical verdicts (the goal-directed run is per-level
complete for the query), measurably fewer materialized atoms — asserted
via the serving telemetry counters (``goal_stops``, ``delta_probes``,
``rules_pruned``) that land in ``BENCH_exp17.json``.
"""

import statistics
import time

from conftest import emit, emit_json, engine_provenance
from repro.chase.oblivious import oblivious_chase
from repro.corpus import branching_tree
from repro.io import format_table
from repro.logic.terms import Constant
from repro.queries.entailment import entails_cq
from repro.rules.parser import parse_instance, parse_query, parse_rules
from repro.serving import answer

MAX_LEVELS = 5
MAX_ATOMS = 200_000
TRIALS = 3


def _tc_path_workload():
    edges = ", ".join(f"E(c{i},c{i + 1})" for i in range(60))
    noise = ", ".join(f"S(d{i},d{i + 1})" for i in range(10))
    instance = parse_instance(f"{edges}, {noise}")
    rules = parse_rules(
        """
        E(x,y), E(y,z) -> E(x,z)
        S(x,y) -> exists z. S(y,z)
        """,
        name="tc_path_60",
    )
    query = parse_query("E(x,y)", answers=["x", "y"])
    bindings = (Constant("c0"), Constant("c5"))
    return "tc_path_60", instance, rules, query, bindings


def _fanout_workload():
    entry = branching_tree(3)
    query = parse_query("E(x1,x2), E(x2,x3), E(x3,x4)")
    return entry.name, entry.instance, entry.rules, query, ()


def _measure(run):
    times, result = [], None
    for _ in range(TRIALS):
        start = time.perf_counter()
        result = run()
        times.append(time.perf_counter() - start)
    return result, statistics.median(times)


def test_exp17_goal_directed_serving():
    workloads = [_tc_path_workload(), _fanout_workload()]
    engines = [("delta", "delta")]
    rows, payload = [], {}
    for name, instance, rules, query, bindings in workloads:
        # The pre-serving recipe: saturate to the budget, probe once.
        (saturated, verdict_full), full_s = _measure(
            lambda: (
                chased := oblivious_chase(
                    instance, rules, max_levels=MAX_LEVELS, max_atoms=MAX_ATOMS
                ),
                entails_cq(chased.instance, query, bindings),
            )
        )
        full_atoms = len(saturated.instance)
        rows.append(
            (name, "full saturation", full_atoms,
             saturated.levels_completed, "-", f"{full_s:.3f}")
        )
        configs = {
            "full_saturation": {
                "provenance": engine_provenance("delta"),
                "entailed": verdict_full,
                "atoms": full_atoms,
                "rounds": saturated.levels_completed,
                "median_s": full_s,
            }
        }
        for label, engine in engines:
            result, goal_s = _measure(
                lambda: answer(
                    instance,
                    rules,
                    query,
                    bindings,
                    strategy="chase",
                    engine=engine,
                    max_levels=MAX_LEVELS,
                    max_atoms=MAX_ATOMS,
                )
            )
            serving = result.telemetry["registry"]["serving"]
            # Same verdict, strictly fewer atoms — the front door's pin.
            assert result.entailed == verdict_full
            assert result.entailed and result.verdict == "exact"
            assert result.evidence["atoms"] < full_atoms
            assert serving["goal_stops"] == 1
            assert serving["delta_probes"] > 0
            rows.append(
                (name, f"goal-directed ({label})", result.evidence["atoms"],
                 result.evidence["level"], serving["delta_probes"],
                 f"{goal_s:.3f}")
            )
            configs[f"goal_directed_{label}"] = {
                "provenance": engine_provenance(engine),
                "entailed": result.entailed,
                "verdict": result.verdict,
                "evidence": result.evidence,
                "atoms": result.evidence["atoms"],
                "rounds": result.evidence["level"],
                "rules_used": result.provenance["rules_used"],
                "rules_total": result.provenance["rules_total"],
                "median_s": goal_s,
                "serving": serving,
            }
        payload[name] = configs
    emit(
        "exp17_serving",
        format_table(
            ["workload", "configuration", "atoms", "rounds",
             "delta probes", "median s"],
            rows,
            title=(
                f"EXP-17: goal-directed answer() vs full saturation "
                f"(depth budget {MAX_LEVELS})"
            ),
        ),
    )
    emit_json(
        "exp17",
        {
            "experiment": "EXP-17",
            "workloads": payload,
            "budgets": {
                "max_levels": MAX_LEVELS,
                "max_atoms": MAX_ATOMS,
                "trials": TRIALS,
            },
        },
    )
