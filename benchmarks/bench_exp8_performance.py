"""EXP-8 — engine performance: chase throughput, homomorphism search,
rewriting growth.

Harness-health numbers (no paper counterpart): they document the scale at
which the EXP-1..7 experiments run and catch performance regressions.
"""

from conftest import emit
from repro.chase import oblivious_chase
from repro.corpus import path_instance, tournament_instance
from repro.io import format_table
from repro.logic.homomorphisms import find_homomorphism
from repro.rewriting import rewrite
from repro.rules import parse_query, parse_rules


def test_exp8_chase_scaling(benchmark):
    rules = parse_rules(
        """
        E(x,y) -> exists z. E(y,z)
        E(x,y), E(y,z) -> F(x,z)
        """
    )

    def run():
        result = oblivious_chase(
            path_instance(20), rules, max_levels=3, max_atoms=50_000
        )
        return len(result.instance)

    atoms = benchmark(run)
    emit(
        "exp8_chase",
        format_table(
            ["workload", "atoms materialized"],
            [("20-path, succ+overlay, 3 levels", atoms)],
            title="EXP-8a: chase throughput",
        ),
    )
    assert atoms > 50


def test_exp8_homomorphism_search(benchmark):
    target = tournament_instance(12, seed=0)
    query = parse_query("E(x,y), E(y,z), E(z,w), E(x,w)")

    def run():
        return find_homomorphism(query.atoms, target)

    hom = benchmark(run)
    emit(
        "exp8_hom",
        format_table(
            ["workload", "found"],
            [("4-atom pattern into K12 tournament", hom is not None)],
            title="EXP-8b: homomorphism search",
        ),
    )
    assert hom is not None


def test_exp8_datalog_saturation(benchmark):
    rules = parse_rules("E(x,y), E(y,z) -> E(x,z)")

    def run():
        result = oblivious_chase(
            path_instance(12), rules, max_levels=6, max_atoms=50_000
        )
        return len(result.instance)

    atoms = benchmark(run)
    emit(
        "exp8_datalog",
        format_table(
            ["workload", "atoms in closure"],
            [("transitive closure of a 12-path", atoms)],
            title="EXP-8c: Datalog saturation",
        ),
    )
    # Closure of an n-path has n(n+1)/2 edges (+ top).
    assert atoms == 12 * 13 // 2 + 1


def test_exp8_rewriting_growth(benchmark):
    rules = parse_rules(
        """
        P(x,y) -> E(x,y)
        Q(x,y) -> P(x,y)
        R(x,y) -> Q(x,y)
        E(x,y) -> exists z. E(y,z)
        """
    )

    def run():
        result = rewrite(
            parse_query("E(x,y), E(y,z)"), rules, max_depth=10
        )
        return (result.complete, len(result.ucq), result.generated)

    complete, size, generated = benchmark(run)
    emit(
        "exp8_rewriting",
        format_table(
            ["workload", "complete", "disjuncts", "generated"],
            [("2-step query, 4-rule ontology", complete, size, generated)],
            title="EXP-8d: rewriting growth",
        ),
    )
    assert complete
