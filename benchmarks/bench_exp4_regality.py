"""EXP-4 — regality of the pipeline output (Definitions 21/22/26/27,
Lemma 25, Lemmas 31/32/33, Observation 35).

Paper claims: after streamlining and body rewriting the rule set is
forward-existential, predicate-unique and quick; the chase of its
non-Datalog part is a DAG with increasing timestamps; and the full chase
factorizes as Datalog over ``Ch(R_∃)``.
"""

from conftest import emit
from repro.core import (
    datalog_factorization_equivalent,
    existential_chase,
    existential_chase_is_dag,
    timestamps_increase_along_edges,
)
from repro.corpus import bowtie_merge, infinite_path, tournament_builder
from repro.io import format_table
from repro.logic import Instance
from repro.surgery import regal_pipeline, regality_report

ENTRIES = [infinite_path(), bowtie_merge(), tournament_builder()]


def _scan():
    rows = []
    for entry in ENTRIES:
        instance = entry.instance if len(entry.instance) > 1 else None
        pipeline = regal_pipeline(
            entry.rules, instance, rewriting_depth=10, strict=False
        )
        report = regality_report(
            pipeline.regal, witness_instances=[Instance()], max_levels=3
        )
        chase_ex = existential_chase(pipeline.regal, max_levels=3)
        rows.append(
            (
                entry.name,
                len(pipeline.regal),
                report.forward_existential,
                report.predicate_unique,
                report.quick_on_witnesses,
                existential_chase_is_dag(chase_ex),
                timestamps_increase_along_edges(chase_ex),
                datalog_factorization_equivalent(
                    pipeline.regal, max_levels=3, datalog_levels=8
                ),
            )
        )
    return rows


def test_exp4_regality(benchmark):
    rows = benchmark(_scan)
    emit(
        "exp4_regality",
        format_table(
            ["rule set", "|regal|", "fwd-ex (D21)", "pred-uniq (D22)",
             "quick (D26)", "DAG (O35)", "TS inc", "factor (L33)"],
            rows,
            title="EXP-4: regal pipeline structure checks",
        ),
    )
    for row in rows:
        assert all(value is True for value in row[2:]), row
