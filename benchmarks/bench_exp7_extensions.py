"""EXP-7 — Section 6 extensions: UCQ-defined tournaments and Conjecture 44.

Paper claims: (i) Theorem 1 extends to any relation defined by a binary
UCQ via fresh rules ``q_i(x,y) -> E(x,y)``; (ii) Conjecture 44 proposes
loop-free bdd chases have finite chromatic number — we measure chromatic
number and girth on loop-free versus loop-entailing corpus chases.
"""

import math

from conftest import emit
from repro.chase import oblivious_chase
from repro.core import (
    check_property_p,
    chromatic_number,
    clique_number,
    egraph,
    entails_loop,
    girth,
)
from repro.corpus import (
    dense_overlay,
    example_1_bdd,
    infinite_path,
    two_relation_linear,
)
from repro.io import format_table
from repro.rules import parse_rules


def test_exp7_ucq_defined_tournaments(benchmark):
    """Add q(x,y) -> E(x,y) for a two-step UCQ and re-check Property (p)."""
    base = parse_rules(
        """
        F(x,y) -> exists z. F(y,z)
        F(x,xp), F(y,yp) -> F(x,yp)
        """,
        name="f_builder",
    )
    # Define E as the UCQ q(x,y) = F(x,y) (Section 6's construction).
    extended = parse_rules(
        """
        F(x,y) -> exists z. F(y,z)
        F(x,xp), F(y,yp) -> F(x,yp)
        F(x,y) -> E(x,y)
        """,
        name="f_builder_with_E",
    )
    from repro.rules import parse_instance

    instance = parse_instance("F(a,b)")

    def scan():
        report = check_property_p(extended, instance, max_levels=4,
                                  max_atoms=30_000)
        return report

    report = benchmark(scan)
    emit(
        "exp7_ucq_defined",
        format_table(
            ["rule set", "tournament sizes", "loop level", "consistent"],
            [(
                "f_builder + q->E",
                str(report.tournament_sizes),
                report.loop_level,
                report.consistent_with_property_p,
            )],
            title="EXP-7a: Property (p) for UCQ-defined E (Section 6)",
        ),
    )
    assert report.loop_entailed
    assert report.consistent_with_property_p


def test_exp7_conjecture44_measurements(benchmark):
    loopfree = [infinite_path(), two_relation_linear(), dense_overlay()]
    looping = [example_1_bdd()]

    def scan():
        rows = []
        for entry in loopfree + looping:
            result = oblivious_chase(
                entry.instance, entry.rules, max_levels=4, max_atoms=30_000
            )
            graph = egraph(result.instance)
            loops = entails_loop(result.instance)
            chromatic = (
                "∞ (loop)" if loops else chromatic_number(graph)
            )
            graph_girth = girth(graph)
            rows.append(
                (
                    entry.name,
                    loops,
                    chromatic,
                    "∞" if math.isinf(graph_girth) else graph_girth,
                    clique_number(graph),
                )
            )
        return rows

    rows = benchmark(scan)
    emit(
        "exp7_conjecture44",
        format_table(
            ["rule set", "Loop_E", "chromatic #", "girth", "clique #"],
            rows,
            title="EXP-7b: Conjecture 44 measurements on corpus chases",
        ),
    )
    # Loop-free chases: finitely colorable prefixes (small numbers).
    for name, loops, chromatic, _, _ in rows:
        if not loops:
            assert isinstance(chromatic, int) and chromatic <= 4, name
