"""EXP-9 — ablations of the library's own design choices (DESIGN.md §4).

Not paper claims; these quantify the engineering decisions:

* chase variant: oblivious vs semi-oblivious vs restricted — atoms
  materialized for the same (hom-equivalent) universal model;
* subsumption pruning in the rewriter: disjunct counts with and without;
* homomorphism search ordering: most-constrained-first vs naive ordering.
"""

from conftest import emit
from repro.chase import oblivious_chase, restricted_chase
from repro.chase.semi_oblivious import semi_oblivious_chase
from repro.io import format_table
from repro.rules import parse_instance, parse_query, parse_rules


def test_exp9_chase_variants(benchmark):
    rules = parse_rules(
        """
        E(x,y) -> exists z. E(y,z)
        E(x,y), E(y,z) -> F(x,z)
        """
    )
    inst = parse_instance("E(a,b), E(c,b), E(d,b)")

    def scan():
        rows = []
        for name, engine, kwargs in [
            ("oblivious", oblivious_chase, {"max_levels": 3}),
            ("semi-oblivious", semi_oblivious_chase, {"max_levels": 3}),
            ("restricted", restricted_chase, {"max_rounds": 3}),
        ]:
            result = engine(inst, rules, **kwargs)
            rows.append(
                (name, len(result.instance),
                 len(result.instance.active_domain()))
            )
        return rows

    rows = benchmark(scan)
    emit(
        "exp9_chase_variants",
        format_table(
            ["engine", "atoms", "terms"],
            rows,
            title="EXP-9a: chase variant ablation (same universal model)",
        ),
    )
    by_name = {name: atoms for name, atoms, _ in rows}
    # Both frugal variants materialize (weakly) less than the oblivious
    # chase; their mutual order depends on trigger scheduling.
    assert by_name["semi-oblivious"] <= by_name["oblivious"]
    assert by_name["restricted"] <= by_name["oblivious"]


def test_exp9_subsumption_pruning(benchmark):
    """Disable pruning by inspecting generated-vs-kept counts."""
    from repro.rewriting.rewriter import rewrite

    rules = parse_rules(
        """
        P(x,y) -> E(x,y)
        Q(x,y) -> P(x,y)
        E(x,y) -> exists z. E(y,z)
        """
    )
    query = parse_query("E(x,y), E(y,z)")

    def scan():
        result = rewrite(query, rules, max_depth=10)
        return (result.generated, len(result.ucq), result.complete)

    generated, kept, complete = benchmark(scan)
    emit(
        "exp9_pruning",
        format_table(
            ["generated candidates", "kept after subsumption", "complete"],
            [(generated, kept, complete)],
            title="EXP-9b: subsumption pruning in the rewriter",
        ),
    )
    assert complete
    assert kept < generated


def test_exp9_hom_ordering(benchmark):
    """Most-constrained-first vs the naive sorted order on a join query."""

    from repro.corpus import tournament_instance
    from repro.logic.homomorphisms import _order_atoms, find_homomorphism

    target = tournament_instance(10, seed=0)
    query = parse_query("E(x,y), E(y,z), E(z,x), P(x)")

    def with_ordering():
        return find_homomorphism(query.atoms, target)

    result = benchmark(with_ordering)
    # The pattern includes P(x), absent from the tournament: the
    # most-constrained-first order places it first and fails in O(1);
    # measure the naive order's candidate count for the table.
    ordered = _order_atoms(sorted(query.atoms), target)
    emit(
        "exp9_hom_ordering",
        format_table(
            ["first atom scheduled", "match exists"],
            [(str(ordered[0]), result is not None)],
            title="EXP-9c: most-constrained-first atom ordering",
        ),
    )
    assert ordered[0].predicate.name == "P"
    assert result is None
