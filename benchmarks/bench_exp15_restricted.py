"""EXP-15 — delta-driven restricted satisfaction and sharded firing.

The restricted chase historically forced *interleaved* firing: every
trigger was satisfaction-checked against the growing instance, then
instantiated and recorded one at a time (`record_application` per
trigger).  The unified runner lets the restricted policy choose per
round: when every trigger of a round has an existential-free rule head,
satisfaction is gated against a per-round witness overlay (membership in
``instance ∪ overlay``), the whole round records through one amortized
``record_round`` pass, and on process backends head instantiation fans
out across the pool.

This experiment measures that gate on restricted Datalog saturations —
the transitive closure of a path and of a tournament, the workloads where
every round qualifies — against the seed interleaved path
(``delta_satisfaction=False``, bit-identical by construction and asserted
here).

Acceptance on this 1-CPU GIL harness:

* every configuration produces a bit-identical ``ChaseResult`` (atoms,
  provenance records, levels),
* the delta-gated batched path does not regress vs the seed interleaved
  path (the amortized recording is the single-core win), and
* the sharded persistent path agrees exactly while fanning firing out
  (its wall-clock win needs multicore; equivalence is the claim here).
"""

import statistics
import time

from conftest import emit
from repro.chase import restricted_chase
from repro.corpus import path_instance
from repro.corpus.generators import tournament_instance
from repro.engine import EngineConfig
from repro.io import format_table
from repro.rules.parser import parse_rules

PATH_N = 80
TOURNAMENT_N = 13
MAX_ROUNDS = 30
TRIALS = 3

TRANSITIVITY = "E(x,y), E(y,z) -> E(x,z)"

#: (label, engine, delta_satisfaction) — the seed interleaved path first.
CONFIGS = [
    ("interleaved (seed path)", "delta", False),
    ("delta-gated batched", "delta", True),
    ("parallel inline (w=1)", EngineConfig("parallel", workers=1), True),
    ("persistent sharded (w=2)", EngineConfig("persistent", workers=2), True),
]


def _measure(run):
    times, result = [], None
    for _ in range(TRIALS):
        start = time.perf_counter()
        result = run()
        times.append(time.perf_counter() - start)
    return result, statistics.median(times)


def _assert_bit_identical(a, b):
    assert a.instance == b.instance
    assert a.levels_completed == b.levels_completed
    assert a.terminated == b.terminated
    assert a.records() == b.records()


def _sweep(make_instance, rules):
    rows, results, times = [], {}, {}
    for label, engine, gate in CONFIGS:
        result, median_s = _measure(
            lambda: restricted_chase(
                make_instance(),
                rules,
                max_rounds=MAX_ROUNDS,
                engine=engine,
                delta_satisfaction=gate,
            )
        )
        results[label] = result
        times[label] = median_s
        rows.append(
            (
                label,
                len(result.instance),
                result.levels_completed,
                f"{median_s:.3f}",
            )
        )
    reference = results["interleaved (seed path)"]
    assert reference.terminated
    for result in results.values():
        _assert_bit_identical(result, reference)
    return rows, times


def test_exp15_restricted_path(benchmark):
    rules = parse_rules(TRANSITIVITY)
    rows, times = _sweep(lambda: path_instance(PATH_N), rules)
    atoms = benchmark.pedantic(
        lambda: len(
            restricted_chase(
                path_instance(PATH_N), rules, max_rounds=MAX_ROUNDS
            ).instance
        ),
        rounds=3,
        iterations=1,
    )
    emit(
        "exp15_restricted",
        format_table(
            ["configuration", "atoms", "rounds", "median s"],
            rows,
            title=(
                f"EXP-15: delta-driven restricted satisfaction, "
                f"transitive closure of a {PATH_N}-path"
            ),
        ),
    )
    assert atoms == len(
        restricted_chase(path_instance(PATH_N), rules).instance
    )
    # The single-core claim: the delta-gated batched path must not lose
    # to the per-trigger interleaved loop it replaces (noise-bounded
    # guard; the expected direction is a win from amortized recording).
    assert times["delta-gated batched"] <= times[
        "interleaved (seed path)"
    ] * 1.5, times


def test_exp15_restricted_tournament():
    rules = parse_rules(TRANSITIVITY)
    rows, times = _sweep(
        lambda: tournament_instance(TOURNAMENT_N, seed=0), rules
    )
    emit(
        "exp15_restricted_tournament",
        format_table(
            ["configuration", "atoms", "rounds", "median s"],
            rows,
            title=(
                f"EXP-15: delta-driven restricted satisfaction, "
                f"transitive closure of a tournament (n={TOURNAMENT_N})"
            ),
        ),
    )
