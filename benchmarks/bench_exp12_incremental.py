"""EXP-12 — incremental chase engine: semi-naive delta trigger enumeration.

Measures the delta engine (default) against the naive full-rematch
reference on path and tournament workloads at n ∈ {20, 60, 120}: chase
wall-clock and matcher work (candidate atoms tested), plus the engine
equivalence guarantee.  The matcher-work ratio is deterministic — the
naive engine re-matches the whole instance per level while the delta
engine only touches work proportional to each level's delta — so the
asserts pin the asymptotics and the table records the wall-clock.
"""

import time

from conftest import emit
from repro.chase import oblivious_chase
from repro.corpus import path_instance, tournament_instance
from repro.io import format_table
from repro.logic.homomorphisms import MATCHER_STATS
from repro.rules import parse_rules

SIZES = (20, 60, 120)
LEVELS = 16
TOURNAMENT_LEVELS = 10

SUCC_OVERLAY = """
E(x,y) -> exists z. E(y,z)
E(x,y), E(y,z) -> F(x,z)
"""

SUCCESSOR = "E(x,y) -> exists z. E(y,z)"


def _run(instance, rules, engine, levels=LEVELS):
    MATCHER_STATS.reset()
    start = time.perf_counter()
    result = oblivious_chase(
        instance, rules, max_levels=levels, max_atoms=500_000, engine=engine
    )
    elapsed = time.perf_counter() - start
    return result, elapsed, MATCHER_STATS.candidates


def _sweep(make_instance, rules, levels=LEVELS):
    rows = []
    for n in SIZES:
        delta_result, delta_s, delta_cand = _run(
            make_instance(n), rules, "delta", levels
        )
        naive_result, naive_s, naive_cand = _run(
            make_instance(n), rules, "naive", levels
        )
        assert delta_result.instance == naive_result.instance
        assert delta_result.records() == naive_result.records()
        rows.append(
            (
                n,
                len(delta_result.instance),
                f"{delta_s:.3f}",
                f"{naive_s:.3f}",
                f"{naive_s / delta_s:.1f}x",
                delta_cand,
                naive_cand,
                f"{naive_cand / delta_cand:.1f}x",
            )
        )
    return rows


HEADER = [
    "n",
    "atoms",
    "delta s",
    "naive s",
    "speedup",
    "delta cand",
    "naive cand",
    "work ratio",
]


def test_exp12_path_incremental(benchmark):
    rules = parse_rules(SUCC_OVERLAY)
    rows = _sweep(path_instance, rules)
    atoms = benchmark.pedantic(
        lambda: len(
            oblivious_chase(
                path_instance(SIZES[-1]),
                rules,
                max_levels=LEVELS,
                max_atoms=500_000,
            ).instance
        ),
        rounds=3,
        iterations=1,
    )
    emit(
        "exp12_path",
        format_table(
            HEADER,
            rows,
            title="EXP-12a: incremental chase, path + successor/overlay",
        ),
    )
    assert atoms > SIZES[-1]
    # Matcher work must scale with the delta, not the instance.
    largest = rows[-1]
    delta_cand, naive_cand = largest[5], largest[6]
    assert naive_cand >= 3 * delta_cand


def test_exp12_tournament_incremental(benchmark):
    rules = parse_rules(SUCCESSOR)
    make = lambda n: tournament_instance(n, seed=0)
    rows = _sweep(make, rules, levels=TOURNAMENT_LEVELS)
    atoms = benchmark.pedantic(
        lambda: len(
            oblivious_chase(
                make(SIZES[-1]),
                rules,
                max_levels=TOURNAMENT_LEVELS,
                max_atoms=500_000,
            ).instance
        ),
        rounds=1,
        iterations=1,
    )
    emit(
        "exp12_tournament",
        format_table(
            HEADER,
            rows,
            title="EXP-12b: incremental chase, tournament + successor",
        ),
    )
    assert atoms > SIZES[-1]
    largest = rows[-1]
    delta_cand, naive_cand = largest[5], largest[6]
    assert naive_cand >= 3 * delta_cand
