"""EXP-6 — Ramsey machinery: Theorem 7, Proposition 41, Question 46.

Paper claims: the multicolor Ramsey bound ``R(4,...,4)`` (one argument per
rewriting disjunct) caps the tournament size of any loop-free regal chase
(Section 6); the monochromatic extraction of Proposition 41 works on
concretely coloured tournaments; loop-free corpus chases stay far below
the bound.
"""

from conftest import emit
from repro.chase import oblivious_chase
from repro.core import (
    egraph,
    find_monochromatic_tournament,
    max_tournament_size,
    paper_bound,
    ramsey_upper_bound,
    verify_ramsey_on_tournament,
)
from repro.corpus import (
    dense_overlay,
    edge_coloring,
    infinite_path,
    tournament_instance,
    two_relation_linear,
)
from repro.io import format_table


def test_exp6_bound_table(benchmark):
    def table():
        rows = []
        for queries in range(1, 5):
            rows.append((queries, paper_bound(queries)))
        rows.append(("R(3,3) exact", ramsey_upper_bound(3, 3)))
        rows.append(("R(4,4) exact", ramsey_upper_bound(4, 4)))
        rows.append(("R(3,3,3) bound", ramsey_upper_bound(3, 3, 3)))
        return rows

    rows = benchmark(table)
    emit(
        "exp6_bounds",
        format_table(
            ["|Q| (or label)", "tournament size bound"],
            rows,
            title="EXP-6a: Question 46 bounds R(4,...,4) by |Q|",
        ),
    )
    assert rows[0][1] == 4 and rows[1][1] == 18


def test_exp6_monochromatic_extraction(benchmark):
    def scan():
        rows = []
        for size, colors, seed in [(6, 2, 0), (6, 2, 1), (9, 2, 2),
                                   (8, 3, 3)]:
            inst = tournament_instance(size, seed=seed)
            graph = egraph(inst)
            coloring = edge_coloring(inst, n_colors=colors, seed=seed + 50)
            target = 3
            promised = graph.number_of_nodes() >= ramsey_upper_bound(
                *([target] * colors)
            )
            found = find_monochromatic_tournament(graph, coloring, target)
            holds = verify_ramsey_on_tournament(
                graph, coloring, colors, target
            )
            rows.append(
                (size, colors, promised, found is not None, holds)
            )
        return rows

    rows = benchmark(scan)
    emit(
        "exp6_extraction",
        format_table(
            ["tournament", "colors", "above bound", "mono K3 found",
             "Thm 7 holds"],
            rows,
            title="EXP-6b: monochromatic sub-tournament extraction (Prop 41)",
        ),
    )
    assert all(row[4] for row in rows)


def test_exp6_loopfree_chases_below_bound(benchmark):
    """Loop-free bdd chases stay below even the |Q|=1 bound of 4."""
    entries = [infinite_path(), two_relation_linear(), dense_overlay()]

    def scan():
        rows = []
        for entry in entries:
            result = oblivious_chase(
                entry.instance, entry.rules, max_levels=5
            )
            size = max_tournament_size(egraph(result.instance))
            rows.append((entry.name, size, paper_bound(1)))
        return rows

    rows = benchmark(scan)
    emit(
        "exp6_loopfree",
        format_table(
            ["rule set", "max tournament (loop-free)", "bound (|Q|=1)"],
            rows,
            title="EXP-6c: loop-free chases vs the Question 46 bound",
        ),
    )
    assert all(size < bound for _, size, bound in rows)
