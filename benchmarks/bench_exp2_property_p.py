"""EXP-2 — Theorem 1 / Property (p) across the bdd corpus.

Paper claim (Theorem 1): for bdd rule sets, growing tournaments force the
loop.  We measure max tournament size and loop level per chase prefix for
every bdd corpus entry and a batch of random non-recursive rule sets; the
verdict column must never read "NO".
"""

from conftest import emit
from repro.core import check_property_p
from repro.corpus import (
    bdd_corpus,
    random_instance,
    random_nonrecursive_ruleset,
)
from repro.io import format_table
from repro.rules import stratification

RANDOM_SEEDS = 8


def _scan():
    rows = []
    for entry in bdd_corpus():
        report = check_property_p(
            entry.rules, entry.instance, max_levels=4, max_atoms=30_000
        )
        rows.append(
            (
                entry.name,
                str(report.tournament_sizes),
                report.loop_level if report.loop_entailed else "-",
                "yes" if report.consistent_with_property_p else "NO",
            )
        )
    for seed in range(RANDOM_SEEDS):
        rules = random_nonrecursive_ruleset(seed=seed)
        bottom = sorted(stratification(rules)[0])
        database = random_instance(bottom, n_terms=4, n_atoms=6, seed=seed)
        report = check_property_p(rules, database, max_levels=4)
        rows.append(
            (
                f"random_nr_{seed}",
                str(report.tournament_sizes),
                report.loop_level if report.loop_entailed else "-",
                "yes" if report.consistent_with_property_p else "NO",
            )
        )
    return rows


def test_exp2_property_p_scan(benchmark):
    rows = benchmark(_scan)
    emit(
        "exp2_property_p",
        format_table(
            ["rule set", "tournament sizes", "loop level", "consistent"],
            rows,
            title="EXP-2: Property (p) over the bdd corpus (Theorem 1)",
        ),
    )
    assert all(row[3] == "yes" for row in rows), (
        "a bdd rule set violated Property (p) — impossible by Theorem 1"
    )


def test_exp2_non_bdd_contrast(benchmark):
    """The non-bdd Example 1 shows the pattern Theorem 1 forbids for bdd
    sets — the contrast row of the experiment."""
    from repro.corpus import example_1

    entry = example_1()
    report = benchmark(
        lambda: check_property_p(entry.rules, entry.instance, max_levels=5)
    )
    emit(
        "exp2_contrast",
        format_table(
            ["rule set", "tournament sizes", "loop level", "consistent"],
            [(
                entry.name,
                str(report.tournament_sizes),
                "-",
                "NO (allowed: not bdd)",
            )],
            title="EXP-2b: the non-bdd contrast (Example 1)",
        ),
    )
    assert report.tournaments_growing and not report.loop_entailed
