"""EXP-16 — worker-resident satisfaction for mixed restricted rounds.

PR 4 made *pure* existential-free restricted rounds delta-gated and
shardable (EXP-15); mixed rounds — existential and existential-free
triggers in the same round — still interleaved everything parent-side.
The split-round path changes that: the round's existential-free triggers
are instantiated and satisfaction-probed up front (on the persistent
backend: worker-side, against long-lived replicas, via the ``probe``
protocol command), and the round then records in one canonical-order
lazy pass that interleaves only the small existential remainder.  Shard
→ worker placement is round-robin by default; ``adaptive_routing``
switches to largest-first bin packing on shard byte weights.

The workload makes every round genuinely mixed: a successor rule keeps
extending a path with fresh nulls (one unsatisfied existential trigger
per round — the interleaved remainder) while transitive closure over the
same ``E`` predicate floods each round with existential-free triggers
(the sharded sub-round).

Acceptance on this 1-CPU GIL harness:

* every configuration produces a bit-identical ``ChaseResult`` (atoms,
  provenance records, rounds) — the split decomposition of a mixed round
  is invisible in the results,
* the inline split path does not regress vs the seed interleaved loop
  (amortized recording + single head instantiation are the single-core
  win), and
* the persistent backends (hash-uniform and adaptive routing) agree
  exactly while probing worker-side (``TRANSPORT_STATS.probes`` > 0);
  their wall-clock win needs multicore — transport payload and
  equivalence are the hardware-independent claims here.
"""

import statistics
import time

from conftest import emit, emit_json, engine_provenance
from repro.chase import restricted_chase
from repro.corpus import path_instance
from repro.engine import EngineConfig, TRANSPORT_STATS
from repro.io import format_table
from repro.rules.parser import parse_rules

PATH_N = 60
MAX_ROUNDS = 8
MAX_ATOMS = 200_000
TRIALS = 3

MIXED_RULES = (
    "E(x,y) -> exists z. E(y,z)\n"
    "E(x,y), E(y,z) -> E(x,z)"
)

#: (label, engine, delta_satisfaction) — the seed interleaved path first.
CONFIGS = [
    ("interleaved (seed path)", "delta", False),
    ("split inline (delta)", "delta", True),
    ("persistent split (w=2, hash)", EngineConfig("persistent", workers=2), True),
    (
        "persistent split (w=2, adaptive)",
        EngineConfig("persistent", workers=2, shards=8, adaptive_routing=True),
        True,
    ),
]


def _measure(run):
    times, result = [], None
    for _ in range(TRIALS):
        start = time.perf_counter()
        result = run()
        times.append(time.perf_counter() - start)
    return result, statistics.median(times)


def _assert_bit_identical(a, b):
    assert a.instance == b.instance
    assert a.levels_completed == b.levels_completed
    assert a.terminated == b.terminated
    assert a.records() == b.records()


def test_exp16_mixed_rounds():
    rules = parse_rules(MIXED_RULES, name="succ_tc")
    rows, results, times, probes, transports = [], {}, {}, {}, {}
    for label, engine, gate in CONFIGS:
        TRANSPORT_STATS.reset()
        result, median_s = _measure(
            lambda: restricted_chase(
                path_instance(PATH_N),
                rules,
                max_rounds=MAX_ROUNDS,
                max_atoms=MAX_ATOMS,
                engine=engine,
                delta_satisfaction=gate,
            )
        )
        results[label] = result
        times[label] = median_s
        probes[label] = TRANSPORT_STATS.probes
        transports[label] = TRANSPORT_STATS.snapshot()
        rows.append(
            (
                label,
                len(result.instance),
                result.levels_completed,
                TRANSPORT_STATS.probes // TRIALS,
                f"{median_s:.3f}",
            )
        )
    reference = results["interleaved (seed path)"]
    for result in results.values():
        _assert_bit_identical(result, reference)
    emit(
        "exp16_mixed",
        format_table(
            ["configuration", "atoms", "rounds", "probe rounds", "median s"],
            rows,
            title=(
                f"EXP-16: worker-resident satisfaction for mixed restricted "
                f"rounds, successor + transitive closure on a {PATH_N}-path "
                f"({MAX_ROUNDS} rounds)"
            ),
        ),
    )
    emit_json(
        "exp16",
        {
            "experiment": "EXP-16",
            "workload": {
                "generator": "path_instance",
                "n": PATH_N,
                "rules": MIXED_RULES,
                "max_rounds": MAX_ROUNDS,
                "max_atoms": MAX_ATOMS,
                "trials": TRIALS,
            },
            # Transport counters accumulate over the TRIALS runs of each
            # configuration (the per-config reset is before the measure
            # loop); byte counters are deterministic, wall-clocks noisy.
            "configurations": {
                label: {
                    "provenance": engine_provenance(engine),
                    "delta_satisfaction": gate,
                    "atoms": len(results[label].instance),
                    "rounds": results[label].levels_completed,
                    "probe_rounds": probes[label] // TRIALS,
                    "median_s": times[label],
                    "transport": transports[label],
                }
                for label, engine, gate in CONFIGS
            },
        },
    )
    # The single-core claim: the inline split path must not lose to the
    # per-trigger interleaved loop it replaces (noise-bounded guard; the
    # expected direction is a win from amortized recording and
    # single-instantiation claims).
    assert times["split inline (delta)"] <= times[
        "interleaved (seed path)"
    ] * 1.5, times
    # The worker-resident gate actually ran on the persistent backends.
    assert probes["persistent split (w=2, hash)"] > 0
    assert probes["persistent split (w=2, adaptive)"] > 0
    assert probes["split inline (delta)"] == 0
