"""EXP-5 — valley queries: Observation 37, Lemma 40, Lemma 42, Prop 43.

Paper claims, measured on the regal tournament builder:

* every ``E``-edge of ``Ch(Ch(R_∃), R_DL)`` has a non-empty witness set
  (Obs 37) containing a valley query (Lemma 40);
* executing the peak-removal step strictly decreases the ``TS_m`` measure
  (the proof invariant of Lemma 40);
* a single valley query defining a 4-tournament also defines a loop
  (Prop 43, on a synthetic witness instance).
"""

import pytest

from conftest import emit
from repro.chase import oblivious_chase
from repro.core import (
    descend_to_valley,
    existential_chase,
    is_valley_query,
    loop_from_valley_tournament,
    witness_set,
)
from repro.corpus import tournament_builder
from repro.io import format_table
from repro.queries import injective_closure
from repro.queries.entailment import answer_homomorphisms, entails_cq
from repro.rewriting import rewrite
from repro.rules import parse_instance, parse_query
from repro.surgery import regal_pipeline


@pytest.fixture(scope="module")
def setup():
    regal = regal_pipeline(
        tournament_builder().rules, rewriting_depth=8, strict=False
    ).regal
    rewriting = rewrite(
        parse_query("E(x,y)", answers=("x", "y")),
        regal, max_depth=6, max_disjuncts=300,
    )
    query_set = injective_closure(rewriting.ucq)
    chase_ex = existential_chase(regal, max_levels=4)
    full = oblivious_chase(
        chase_ex.instance, regal.datalog_rules(), max_levels=8
    )
    edges = sorted(
        a for a in full.instance
        if a.predicate.name == "E" and a.args[0] != a.args[1]
    )
    return regal, chase_ex, query_set, edges


def test_exp5_witnesses_and_valleys(benchmark, setup):
    _, chase_ex, query_set, edges = setup

    def scan():
        rows = []
        for atom in edges:
            witnesses = witness_set(
                chase_ex.instance, query_set, atom.args[0], atom.args[1]
            )
            valleys = [q for q in witnesses if is_valley_query(q)]
            rows.append((str(atom), len(witnesses), len(valleys)))
        return rows

    rows = benchmark(scan)
    emit(
        "exp5_witnesses",
        format_table(
            ["edge", "|W(s,t)|", "valley witnesses"],
            rows,
            title="EXP-5a: witness sets on the regal tournament builder",
        ),
    )
    assert all(w > 0 for _, w, _ in rows), "Observation 37 violated"
    assert all(v > 0 for _, _, v in rows), "Lemma 40 violated"


def test_exp5_peak_removal_measure(benchmark, setup):
    _, chase_ex, query_set, edges = setup

    def descend_all():
        steps_taken = []
        for atom in edges:
            source, sink = atom.args
            non_valley = [
                q
                for q in witness_set(
                    chase_ex.instance, query_set, source, sink
                )
                if not is_valley_query(q)
            ]
            for query in non_valley[:1]:
                hom = next(
                    answer_homomorphisms(
                        chase_ex.instance, query, (source, sink),
                        injective=True,
                    )
                )
                _, _, steps = descend_to_valley(
                    query, hom, chase_ex, query_set, source, sink
                )
                for step in steps:
                    steps_taken.append(
                        (
                            str(atom),
                            step.removed_peak.name,
                            str(step.measure_before(chase_ex)),
                            str(step.measure_after(chase_ex)),
                            step.measure_decreased(chase_ex),
                        )
                    )
        return steps_taken

    rows = benchmark(descend_all)
    emit(
        "exp5_peak_removal",
        format_table(
            ["edge", "peak", "TS_m before", "TS_m after", "decreased"],
            rows or [("(all witnesses already valleys)", "-", "-", "-", True)],
            title="EXP-5b: peak removal strictly decreases TS_m (Lemma 40)",
        ),
    )
    assert all(row[4] for row in rows)


def test_exp5_proposition43(benchmark):
    """Prop 43 on synthetic single-valley tournaments."""
    cases = [
        (
            "two_maximal",
            parse_query("E(u,x), E(u,y)", answers=("x", "y")),
            parse_instance("E(h,k1), E(h,k2), E(h,k3), E(h,k4)"),
            ["k1", "k2", "k3", "k4"],
        ),
        (
            "disconnected",
            parse_query("E(u,x), E(w,y)", answers=("x", "y")),
            parse_instance("E(a,b), E(a,c), E(a,d), E(b,c)"),
            ["b", "c", "d"],
        ),
    ]

    def scan():
        from repro.logic.terms import Constant

        rows = []
        for name, query, instance, vertex_names in cases:
            vertices = [Constant(n) for n in vertex_names]
            looper = loop_from_valley_tournament(query, instance, vertices)
            loop_holds = (
                looper is not None
                and entails_cq(instance, query, (looper, looper))
            )
            rows.append((name, str(looper), loop_holds))
        return rows

    rows = benchmark(scan)
    emit(
        "exp5_prop43",
        format_table(
            ["case", "loop vertex", "q(u,u) holds"],
            rows,
            title="EXP-5c: Proposition 43 on single-valley tournaments",
        ),
    )
    assert all(row[2] for row in rows)
