"""EXP-11 — the two decidability routes: treewidth vs rewritability.

The paper's introduction contrasts guarded rules (bounded-treewidth chase
[5]) with bdd rules (UCQ-rewritable).  The bdd tournament builder is the
paper's motivating case where only the second route applies: its chase
densifies into cliques, so treewidth grows, yet every query rewrites.
"""

from conftest import emit
from repro.core.treewidth import guarded_chase_treewidth_report
from repro.corpus import (
    example_1_bdd,
    guarded_triangle,
    infinite_path,
)
from repro.io import format_table
from repro.rewriting import ucq_rewritability_certificate
from repro.rules import parse_query


def test_exp11_two_routes(benchmark):
    entries = [guarded_triangle(), infinite_path(), example_1_bdd()]

    def scan():
        rows = []
        for entry in entries:
            report = guarded_chase_treewidth_report(
                entry.rules, entry.instance, max_levels=4,
                max_atoms=20_000,
            )
            certificate = ucq_rewritability_certificate(
                parse_query("E(x,x)"), entry.rules, max_depth=8
            )
            rows.append(
                (
                    entry.name,
                    report.guarded,
                    report.width_bound,
                    report.within_guarded_bound,
                    certificate is not None,
                )
            )
        return rows

    rows = benchmark(scan)
    emit(
        "exp11_treewidth",
        format_table(
            ["rule set", "guarded", "chase width ≤", "guarded bound ok",
             "loop query rewritable"],
            rows,
            title="EXP-11: bounded-treewidth route vs bdd route",
        ),
    )
    by_name = {row[0]: row for row in rows}
    # Guarded entry: narrow chase, bound respected.
    assert by_name["guarded_triangle"][3]
    # The bdd merge rule set: unguarded, wide chase — only the bdd route.
    assert not by_name["example1_bdd"][1]
    assert by_name["example1_bdd"][2] >= 3
    assert by_name["example1_bdd"][4]
