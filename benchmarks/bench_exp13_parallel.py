"""EXP-13 — parallel chase engine: batched firing + sharded scheduling.

Measures ``engine="parallel"`` against the sequential delta engine on the
EXP-12-scale Datalog closure (transitive closure of a 60-path, ~1.8k
atoms over ~24 semi-naive rounds) at 1, 2 and 4 workers, plus the
cross-engine equality guarantee.

On a single-core GIL build (this harness) the speedup comes from the
batched derivation path — one amortized head-instantiation pass per round
straight from the matcher's raw bindings, no trigger identity, no
canonical sort — while thread fan-out is a structural win reserved for
free-threaded/multicore builds.  The acceptance bar is ≥1.5x wall-clock
at 4 workers over ``engine="delta"``; medians of three runs keep the
assert stable on noisy boxes.
"""

import statistics
import time

from conftest import emit
from repro.corpus import path_instance
from repro.engine import EngineConfig
from repro.io import format_table
from repro.rewriting.datalog import semi_naive_closure
from repro.rules import parse_rules

N = 60
MAX_ROUNDS = 24
TRIALS = 3

TRANSITIVITY = "E(x,y), E(y,z) -> E(x,z)"


def _run(engine):
    start = time.perf_counter()
    closure = semi_naive_closure(
        path_instance(N), parse_rules(TRANSITIVITY), max_rounds=MAX_ROUNDS,
        engine=engine,
    )
    return closure, time.perf_counter() - start


def _median_time(engine):
    times = []
    closure = None
    for _ in range(TRIALS):
        closure, elapsed = _run(engine)
        times.append(elapsed)
    return closure, statistics.median(times)


def test_exp13_parallel_closure(benchmark):
    reference, delta_s = _median_time("delta")

    rows = [("delta (sequential)", 1, len(reference), f"{delta_s:.3f}", "1.0x")]
    by_workers = {}
    for workers in (1, 2, 4):
        config = EngineConfig("parallel", workers=workers)
        closure, elapsed = _median_time(config)
        assert closure == reference  # same fixpoint, every worker count
        by_workers[workers] = elapsed
        rows.append(
            (
                "parallel",
                workers,
                len(closure),
                f"{elapsed:.3f}",
                f"{delta_s / elapsed:.1f}x",
            )
        )

    atoms = benchmark.pedantic(
        lambda: len(_run(EngineConfig("parallel", workers=4))[0]),
        rounds=3,
        iterations=1,
    )
    emit(
        "exp13_parallel",
        format_table(
            ["engine", "workers", "atoms", "median s", "speedup"],
            rows,
            title=(
                f"EXP-13: parallel vs sequential delta engine, "
                f"{N}-path Datalog closure"
            ),
        ),
    )
    assert atoms == len(reference)
    # The acceptance bar: >=1.5x over the sequential delta engine at 4
    # workers (batched derivation; see module docstring).
    assert delta_s / by_workers[4] >= 1.5
