"""EXP-1 — Example 1: finite vs unrestricted semantics.

Paper claim (Section 1, Example 1): from ``E(a,b)`` with successor +
transitivity the chase never entails ``Loop_E`` although every finite
model does; the bdd-ified variant entails it in the chase already.
"""

import networkx as nx

from conftest import emit
from repro.chase import oblivious_chase
from repro.core import egraph, entails_loop, max_tournament_size
from repro.corpus import example_1, example_1_bdd, random_digraph_instance
from repro.io import format_table


def _chase_rows(entry, max_levels=4):
    result = oblivious_chase(
        entry.instance, entry.rules, max_levels=max_levels,
        max_atoms=30_000,
    )
    rows = []
    for level in range(result.levels_completed + 1):
        prefix = result.prefix(level)
        rows.append(
            (
                entry.name,
                level,
                len(prefix),
                max_tournament_size(egraph(prefix)),
                entails_loop(prefix),
            )
        )
    return rows


def _finite_model_rows(seeds=10):
    """Close random finite digraphs under Example 1's rules; count loops."""
    rows = []
    for seed in range(seeds):
        start = egraph(random_digraph_instance(5, 0.3, seed=seed))
        if start.number_of_nodes() == 0:
            start.add_edge("a", "b")
        for node in list(start.nodes):
            if start.out_degree(node) == 0:
                start.add_edge(node, sorted(start.nodes, key=str)[0])
        closed = nx.transitive_closure(start, reflexive=False)
        has_loop = any(closed.has_edge(v, v) for v in closed.nodes)
        rows.append((seed, closed.number_of_nodes(), has_loop))
    return rows


def test_exp1_unrestricted_semantics(benchmark):
    rows = benchmark(lambda: _chase_rows(example_1()) + _chase_rows(example_1_bdd()))
    emit(
        "exp1_chase",
        format_table(
            ["rule set", "level", "atoms", "max tournament", "Loop_E"],
            rows,
            title="EXP-1a: chase prefixes of Example 1 and its bdd variant",
        ),
    )
    ex1_rows = [r for r in rows if r[0] == "example1"]
    bdd_rows = [r for r in rows if r[0] == "example1_bdd"]
    # Paper: the transitive variant never loops; the bdd variant does.
    assert not any(r[4] for r in ex1_rows)
    assert any(r[4] for r in bdd_rows)
    # Both grow tournaments.
    assert ex1_rows[-1][3] > ex1_rows[0][3]


def test_exp1_finite_models_all_loop(benchmark):
    rows = benchmark(_finite_model_rows)
    emit(
        "exp1_finite",
        format_table(
            ["seed", "model size", "has loop"],
            rows,
            title="EXP-1b: finite models of Example 1 (always looping)",
        ),
    )
    assert all(has_loop for _, _, has_loop in rows)
