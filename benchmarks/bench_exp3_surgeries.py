"""EXP-3 — chase preservation of the Section 4 surgeries.

Paper claims: Corollary 15 (instance encoding), Lemma 19 (reification),
Lemma 24 (streamlining), Lemma 30 (body rewriting) all preserve the chase
up to homomorphic equivalence (restricted to the original signature).
Every check below must print True.
"""

from conftest import emit
from repro.chase import oblivious_chase
from repro.corpus import (
    bowtie_merge,
    dense_overlay,
    infinite_path,
    two_relation_linear,
    wide_signature,
)
from repro.io import format_table
from repro.logic.homomorphisms import homomorphically_equivalent
from repro.surgery import (
    body_rewrite,
    encoded_chase_equivalent,
    reification_chase_equivalent,
    streamline_chase_equivalent,
)

ENTRIES = [
    infinite_path(),
    two_relation_linear(),
    dense_overlay(),
    bowtie_merge(),
]


def _lemma30_check(entry, max_levels=3):
    rewritten = body_rewrite(entry.rules, max_depth=10, strict=False)
    left = oblivious_chase(
        entry.instance, entry.rules, max_levels=max_levels
    )
    right = oblivious_chase(
        entry.instance, rewritten, max_levels=max_levels
    )
    return homomorphically_equivalent(left.instance, right.instance)


def _scan():
    rows = []
    for entry in ENTRIES:
        rows.append(
            (
                entry.name,
                encoded_chase_equivalent(entry.rules, entry.instance, 3),
                streamline_chase_equivalent(entry.rules, entry.instance, 2),
                _lemma30_check(entry),
            )
        )
    wide = wide_signature()
    rows.append(
        (
            wide.name,
            encoded_chase_equivalent(wide.rules, wide.instance, 3),
            "n/a (wide)",
            reification_chase_equivalent(wide.rules, wide.instance, 3),
        )
    )
    return rows


def test_exp3_surgery_preservation(benchmark):
    rows = benchmark(_scan)
    emit(
        "exp3_surgeries",
        format_table(
            ["rule set", "Cor 15 (encode)", "Lemma 24 (streamline)",
             "Lemma 30/19 (rew / reify)"],
            rows,
            title="EXP-3: chase preservation of the Section 4 surgeries",
        ),
    )
    for row in rows:
        for value in row[1:]:
            assert value in (True, "n/a (wide)"), row
