"""EXP-14 — persistent delta-fed workers vs per-round context pickling.

The legacy process backend (``use_processes=True``) re-pickles the whole
``(rules, instance)`` context every fanned-out round, so its transport
cost grows with the *instance*; the persistent ``WorkerPool`` seeds each
worker's replica once and then ships only per-round deltas, so its cost
grows with the *change*.  This experiment quantifies both on the EXP-13
workload (transitive closure of a 60-path: ~24 semi-naive rounds over a
growing instance with shrinking deltas — the shape that separates the two
designs) plus an existential chase that exercises the sharded firing
path.

Acceptance on this 1-CPU GIL harness:

* every engine produces the identical closure/chase (pinned here and in
  ``tests/test_engine_persistent.py``),
* the persistent pool's *total* pipe traffic is at most half the bytes
  the legacy backend spends on context blobs alone (the deterministic
  payload claim — it holds regardless of core count), and
* persistent wall-clock does not regress vs the legacy process backend
  (both pay IPC; persistent pays it on less data).

Thread-mode numbers (EXP-13) are the wall-clock baseline and must not
regress; process modes only win wall-clock on multicore builds where
GIL-free matching outweighs the IPC, which this box cannot show.
"""

import statistics
import time

from conftest import emit, emit_json, engine_provenance
from repro.chase import oblivious_chase
from repro.corpus import path_instance
from repro.corpus.generators import tournament_instance
from repro.engine import TRANSPORT_STATS, EngineConfig
from repro.io import format_table
from repro.rewriting.datalog import semi_naive_closure
from repro.rules.parser import parse_rules

N = 60
MAX_ROUNDS = 24
TRIALS = 3

TRANSITIVITY = "E(x,y), E(y,z) -> E(x,z)"
SUCC_OVERLAY = "E(x,y) -> exists z. E(y,z)\nE(x,y), E(y,z) -> F(x,z)"

ENGINES = [
    ("delta (sequential)", "delta"),
    ("parallel (inline)", EngineConfig("parallel", workers=1)),
    (
        "processes (context/round)",
        EngineConfig("parallel", workers=2, use_processes=True),
    ),
    ("persistent (delta-fed)", EngineConfig("persistent", workers=2)),
]


def _measure(run):
    """Median wall-clock of TRIALS runs plus the last run's transport."""
    times, result, transport = [], None, None
    for _ in range(TRIALS):
        TRANSPORT_STATS.reset()
        start = time.perf_counter()
        result = run()
        times.append(time.perf_counter() - start)
        transport = TRANSPORT_STATS.snapshot()
    payload = transport["context_bytes"] + transport["bytes_sent"]
    return result, statistics.median(times), payload, transport


def test_exp14_persistent_closure(benchmark):
    rows = []
    results = {}
    payloads = {}
    times = {}
    transports = {}
    for label, engine in ENGINES:
        closure, median_s, payload, transport = _measure(
            lambda: semi_naive_closure(
                path_instance(N),
                parse_rules(TRANSITIVITY),
                max_rounds=MAX_ROUNDS,
                engine=engine,
            )
        )
        results[label] = closure
        payloads[label] = payload
        times[label] = median_s
        transports[label] = transport
        rows.append(
            (
                label,
                len(closure),
                f"{median_s:.3f}",
                f"{payload / 1024:.0f}" if payload else "0",
            )
        )

    reference = results["delta (sequential)"]
    assert all(closure == reference for closure in results.values())

    atoms = benchmark.pedantic(
        lambda: len(
            semi_naive_closure(
                path_instance(N),
                parse_rules(TRANSITIVITY),
                max_rounds=MAX_ROUNDS,
                engine=EngineConfig("persistent", workers=2),
            )
        ),
        rounds=3,
        iterations=1,
    )
    emit(
        "exp14_persistent",
        format_table(
            ["engine", "atoms", "median s", "payload KiB"],
            rows,
            title=(
                f"EXP-14: persistent delta-fed workers vs per-round "
                f"context pickling, {N}-path Datalog closure"
            ),
        ),
    )
    emit_json(
        "exp14",
        {
            "experiment": "EXP-14",
            "workload": {
                "generator": "path_instance",
                "n": N,
                "rules": TRANSITIVITY,
                "max_rounds": MAX_ROUNDS,
                "trials": TRIALS,
            },
            "engines": {
                label: {
                    "provenance": engine_provenance(engine),
                    "atoms": len(results[label]),
                    "median_s": times[label],
                    "payload_bytes": payloads[label],
                    "transport": transports[label],
                }
                for label, engine in ENGINES
            },
        },
    )
    assert atoms == len(reference)
    # The payload claim: delta-fed replicas ship at most half the bytes
    # the legacy backend spends on context blobs alone (its total traffic
    # is strictly larger), independent of core count.
    legacy = payloads["processes (context/round)"]
    persistent = payloads["persistent (delta-fed)"]
    assert persistent <= legacy / 2, (persistent, legacy)
    # Wall-clock is report-only on shared runners (medians of 3 sub-second
    # runs are noise-bound); the guard only catches pathological blowups —
    # shipping less data through the same IPC machinery must never cost
    # multiples of the legacy backend's time.
    assert times["persistent (delta-fed)"] <= times[
        "processes (context/round)"
    ] * 3.0


def test_exp14_sharded_firing_chase():
    """The firing path: an existential chase fired through the pool."""
    rules = parse_rules(SUCC_OVERLAY)
    make = lambda: tournament_instance(10, seed=0)

    reference, delta_s, _, _ = _measure(
        lambda: oblivious_chase(make(), rules, max_levels=4)
    )
    rows = [("delta (sequential)", len(reference.instance), f"{delta_s:.3f}")]
    for label, engine in ENGINES[1:]:
        result, median_s, _, _ = _measure(
            lambda: oblivious_chase(make(), rules, max_levels=4, engine=engine)
        )
        assert result.instance == reference.instance
        assert result.records() == reference.records()
        rows.append((label, len(result.instance), f"{median_s:.3f}"))
    emit(
        "exp14_firing",
        format_table(
            ["engine", "atoms", "median s"],
            rows,
            title=(
                "EXP-14: sharded firing, oblivious chase "
                "(tournament n=10, 4 levels)"
            ),
        ),
    )
