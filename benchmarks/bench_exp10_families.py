"""EXP-10 — parametric family sweeps.

Scaling views of the Definition 3 quantities on families with known ground
truth: rewriting fixpoint depth grows linearly with inclusion-chain
length; the merge-ladder keeps entailing the loop at every width
(Property (p) under increasing density); the Datalog grid oracle pins the
closure size exactly.
"""

from conftest import emit
from repro.chase import oblivious_chase
from repro.core import check_property_p
from repro.corpus.families import (
    datalog_grid,
    inclusion_chain,
    merge_ladder,
)
from repro.io import format_table
from repro.rewriting import ucq_rewritability_certificate
from repro.rules import parse_query


def test_exp10_rewriting_depth_scaling(benchmark):
    def sweep():
        rows = []
        for length in (1, 2, 3, 4):
            entry = inclusion_chain(length)
            query = parse_query(f"P{length}(x,y)")
            certificate = ucq_rewritability_certificate(
                query, entry.rules, max_depth=length + 3
            )
            rows.append(
                (
                    length,
                    certificate.fixpoint_depth if certificate else None,
                    len(certificate.rewriting) if certificate else None,
                )
            )
        return rows

    rows = benchmark(sweep)
    emit(
        "exp10_rewriting_depth",
        format_table(
            ["chain length", "fixpoint depth", "disjuncts"],
            rows,
            title="EXP-10a: rewriting depth grows with the inclusion chain",
        ),
    )
    depths = [depth for _, depth, _ in rows]
    assert depths == sorted(depths)
    assert depths[-1] > depths[0]


def test_exp10_merge_ladder_density(benchmark):
    def sweep():
        rows = []
        for width in (1, 2):
            entry = merge_ladder(width)
            report = check_property_p(
                entry.rules, max_levels=4, max_atoms=40_000
            )
            rows.append(
                (
                    width,
                    str(report.tournament_sizes),
                    report.loop_level,
                    report.consistent_with_property_p,
                )
            )
        return rows

    rows = benchmark(sweep)
    emit(
        "exp10_merge_ladder",
        format_table(
            ["width", "tournament sizes", "loop level", "consistent"],
            rows,
            title="EXP-10b: Property (p) across merge-ladder densities",
        ),
    )
    assert all(loop is not None for _, _, loop, _ in rows)
    assert all(consistent for _, _, _, consistent in rows)


def test_exp10_datalog_oracle(benchmark):
    def sweep():
        rows = []
        for size in (4, 8, 12):
            entry = datalog_grid(size)
            result = oblivious_chase(
                entry.instance, entry.rules, max_levels=8
            )
            expected = size * (size + 1) // 2 + 1
            rows.append((size, len(result.instance), expected))
        return rows

    rows = benchmark(sweep)
    emit(
        "exp10_datalog_oracle",
        format_table(
            ["path length", "closure atoms", "oracle n(n+1)/2 + 1"],
            rows,
            title="EXP-10c: exact Datalog closure oracle",
        ),
    )
    assert all(actual == expected for _, actual, expected in rows)
