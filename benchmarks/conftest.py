"""Shared helpers for the experiment benchmarks.

Each ``bench_expN_*.py`` regenerates one paper artifact (see DESIGN.md §5)
and both prints its table and records it under ``benchmarks/results/`` so
EXPERIMENTS.md can reference the measured output.  Experiments with
machine-readable consumers (the transport-budget guard in
``tools/check_transport_budget.py``, the ROADMAP manifest migration)
additionally write a ``BENCH_<name>.json`` next to the table via
:func:`emit_json`.
"""

from __future__ import annotations

import json
import pathlib
import platform

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def emit(name: str, table: str) -> None:
    """Print a result table and persist it under benchmarks/results/."""
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(table + "\n")
    print()
    print(table)


def emit_json(name: str, payload: dict) -> None:
    """Persist a machine-readable result as ``BENCH_<name>.json``.

    A ``host`` provenance block (interpreter + platform) is stamped in so
    a checked-in artifact says where its numbers came from; byte counters
    are deterministic, wall-clocks are not.  Every artifact also carries a
    ``telemetry`` block — the schema version plus a snapshot of the
    default metrics registry (matcher / instantiation / transport
    groups) taken at emit time, i.e. the cumulative work of the whole
    benchmark process up to this artifact (``tools/check_bench_telemetry.py``
    gates its presence); benchmarks that scope their counters per phase
    can pass their own ``telemetry`` to override the default.
    """
    from repro.obs import TRACE_SCHEMA_VERSION, default_registry

    RESULTS_DIR.mkdir(exist_ok=True)
    payload = dict(payload)
    payload.setdefault(
        "host",
        {
            "python": platform.python_version(),
            "platform": platform.platform(),
        },
    )
    payload.setdefault(
        "telemetry",
        {
            "schema_version": TRACE_SCHEMA_VERSION,
            "registry": default_registry().snapshot(),
        },
    )
    (RESULTS_DIR / f"BENCH_{name}.json").write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n"
    )


def engine_provenance(engine) -> dict:
    """The engine/workers/shards provenance block of one configuration."""
    from repro.engine import resolve_engine

    config = resolve_engine(engine) if isinstance(engine, str) else engine
    return {
        "engine": config.name,
        "mode": config.mode,
        "workers": config.workers,
        "shards": config.shard_count,
        "use_processes": config.use_processes,
        "persistent_workers": config.persistent_workers,
        "adaptive_routing": config.adaptive_routing,
        "columnar": config.columnar,
        "shared_memory": config.shared_memory,
    }
