"""Shared helpers for the experiment benchmarks.

Each ``bench_expN_*.py`` regenerates one paper artifact (see DESIGN.md §5)
and both prints its table and records it under ``benchmarks/results/`` so
EXPERIMENTS.md can reference the measured output.
"""

from __future__ import annotations

import pathlib

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def emit(name: str, table: str) -> None:
    """Print a result table and persist it under benchmarks/results/."""
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(table + "\n")
    print()
    print(table)
