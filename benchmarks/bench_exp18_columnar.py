"""EXP-18 — columnar replicas + shared-memory transport vs the pipe.

PR 6's interned-term varint transport got the persistent pool's EXP-14
pipe payload down to ~18.8 KB; this experiment measures the next two
rungs on the same 60-path closure workload so the numbers are directly
comparable:

* **columnar replicas** (`EngineConfig(columnar=True)`, the default):
  workers keep id-native :class:`~repro.engine.columnar.ColumnarInstance`
  stores fed by ``ingest_packed`` — the per-round ``decode_atoms``
  object materialization leaves the hot path.  Same bytes on the wire,
  less work at both ends.
* **shared-memory transport** (``shared_memory=True``): payloads at or
  above the threshold ride :class:`~repro.engine.shm.SegmentPool`
  segments and the pipes carry only refs, splitting the transport into
  a pipe channel and an shm channel.

Acceptance (deterministic byte counters, hard-gated by
``tools/check_transport_budget.py`` against
``benchmarks/transport_budget.json``):

* all engines produce the identical closure (pinned here and in the
  equivalence suites),
* with shared memory on, the **pipe** channel drops at least 3x vs the
  18 809 B the pipe-only persistent engine ships on this workload
  (budget 6 269 B), and
* the combined pipe+shm bytes stay within the total budget — moving
  payload off the pipe must not inflate it.

Wall-clock columns are report-only on shared runners; the existential
fan-out test pins result equality on the sharded firing path.
"""

import statistics
import time

from conftest import emit, emit_json, engine_provenance
from repro.chase import oblivious_chase
from repro.corpus import path_instance
from repro.corpus.generators import tournament_instance
from repro.engine import TRANSPORT_STATS, EngineConfig, shm_available
from repro.io import format_table
from repro.rewriting.datalog import semi_naive_closure
from repro.rules.parser import parse_rules

N = 60
MAX_ROUNDS = 24
TRIALS = 3

TRANSITIVITY = "E(x,y), E(y,z) -> E(x,z)"
SUCC_OVERLAY = "E(x,y) -> exists z. E(y,z)\nE(x,y), E(y,z) -> F(x,z)"

#: The EXP-14 pipe-only measurement this experiment's shm gate is
#: anchored to (see benchmarks/transport_budget.json).
EXP14_PIPE_BYTES = 18_809

ENGINES = [
    ("persistent (pipe, object)",
     EngineConfig("persistent", workers=2, columnar=False)),
    ("persistent (pipe, columnar)",
     EngineConfig("persistent", workers=2)),
]
if shm_available():
    ENGINES.append(
        ("persistent (shm, columnar)",
         EngineConfig("persistent", workers=2, shared_memory=True))
    )


def _measure(run):
    """Median wall-clock of TRIALS runs plus the last run's channels."""
    times, result, transport = [], None, None
    for _ in range(TRIALS):
        TRANSPORT_STATS.reset()
        start = time.perf_counter()
        result = run()
        times.append(time.perf_counter() - start)
        transport = TRANSPORT_STATS.snapshot()
    pipe = transport["context_bytes"] + transport["bytes_sent"]
    shm = transport["shm_bytes"]
    return result, statistics.median(times), pipe, shm, transport


def test_exp18_columnar_shm_closure(benchmark):
    rows = []
    results, pipes, shms, times, transports = {}, {}, {}, {}, {}
    for label, engine in ENGINES:
        closure, median_s, pipe, shm, transport = _measure(
            lambda: semi_naive_closure(
                path_instance(N),
                parse_rules(TRANSITIVITY),
                max_rounds=MAX_ROUNDS,
                engine=engine,
            )
        )
        results[label] = closure
        pipes[label], shms[label] = pipe, shm
        times[label], transports[label] = median_s, transport
        rows.append(
            (
                label,
                len(closure),
                f"{median_s:.3f}",
                str(pipe),
                str(shm),
            )
        )

    reference = results[ENGINES[0][0]]
    assert all(closure == reference for closure in results.values())

    atoms = benchmark.pedantic(
        lambda: len(
            semi_naive_closure(
                path_instance(N),
                parse_rules(TRANSITIVITY),
                max_rounds=MAX_ROUNDS,
                engine=ENGINES[-1][1],
            )
        ),
        rounds=3,
        iterations=1,
    )
    assert atoms == len(reference)

    emit(
        "exp18_columnar",
        format_table(
            ["engine", "atoms", "median s", "pipe B", "shm B"],
            rows,
            title=(
                f"EXP-18: columnar replicas + shared-memory transport, "
                f"{N}-path Datalog closure"
            ),
        ),
    )
    emit_json(
        "exp18",
        {
            "experiment": "EXP-18",
            "workload": {
                "generator": "path_instance",
                "n": N,
                "rules": TRANSITIVITY,
                "max_rounds": MAX_ROUNDS,
                "trials": TRIALS,
            },
            "engines": {
                label: {
                    "provenance": engine_provenance(engine),
                    "atoms": len(results[label]),
                    "median_s": times[label],
                    "pipe_bytes": pipes[label],
                    "shm_bytes": shms[label],
                    "total_bytes": pipes[label] + shms[label],
                    "transport": transports[label],
                }
                for label, engine in ENGINES
            },
        },
    )

    # Columnar replicas change the store, not the wire: the pipe-only
    # configurations ship identical bytes.
    assert pipes["persistent (pipe, columnar)"] == pipes[
        "persistent (pipe, object)"
    ]
    if shm_available():
        pipe = pipes["persistent (shm, columnar)"]
        shm = shms["persistent (shm, columnar)"]
        # The headline claim: the pipe channel drops >= 3x vs the
        # pipe-only transport on the same workload.
        assert pipe * 3 <= EXP14_PIPE_BYTES, (pipe, EXP14_PIPE_BYTES)
        assert shm > 0
        # Splitting channels must not inflate the combined traffic.
        assert pipe + shm <= pipes["persistent (pipe, columnar)"], (
            pipe, shm, pipes["persistent (pipe, columnar)"]
        )


def test_exp18_sharded_firing_fanout():
    """Wide fan-out: an existential chase fired through both replicas."""
    rules = parse_rules(SUCC_OVERLAY)
    make = lambda: tournament_instance(10, seed=0)

    reference, delta_s, _, _, _ = _measure(
        lambda: oblivious_chase(make(), rules, max_levels=4)
    )
    rows = [("delta (sequential)", len(reference.instance), f"{delta_s:.3f}")]
    for label, engine in ENGINES:
        result, median_s, _, _, _ = _measure(
            lambda: oblivious_chase(make(), rules, max_levels=4, engine=engine)
        )
        assert result.instance == reference.instance
        assert result.records() == reference.records()
        rows.append((label, len(result.instance), f"{median_s:.3f}"))
    emit(
        "exp18_firing",
        format_table(
            ["engine", "atoms", "median s"],
            rows,
            title=(
                "EXP-18: sharded firing on columnar replicas, oblivious "
                "chase (tournament n=10, 4 levels)"
            ),
        ),
    )
