#!/usr/bin/env python3
"""An OBQA workbench session: the library as a general ontology-based
query answering tool (the paper's Section 1 motivation).

Models a tiny enterprise ontology with existential rules, then answers
queries three ways and checks they agree:

* by chasing (forward chaining, materialized universal model),
* by UCQ rewriting (backward chaining, query-time evaluation),
* by the restricted chase (the practical engine).

Usage::

    python examples/obqa_workbench.py
"""

from repro import (
    answer,
    entails_ucq,
    parse_instance,
    parse_query,
    parse_rules,
    restricted_chase,
    ucq_rewritability_certificate,
)
from repro.io import format_table
from repro.queries import entails_cq


def main() -> None:
    # Every employee works in a department; every department has a manager
    # who is an employee; managers supervise the employees of their
    # department.
    ontology = parse_rules(
        """
        Emp(e) -> exists d. WorksIn(e,d)
        WorksIn(e,d) -> Dept(d)
        Dept(d) -> exists m. Manages(m,d)
        Manages(m,d) -> Emp(m)
        Manages(m,d), WorksIn(e,d) -> Supervises(m,e)
        """,
        name="enterprise",
    )
    database = parse_instance("Emp(alice), WorksIn(bob, sales)")

    queries = [
        ("someone works somewhere", parse_query("WorksIn(e,d)")),
        ("some department has a manager", parse_query("Manages(m,d)")),
        ("someone supervises bob",
         parse_query("Supervises(m,e), WorksIn(e,d)")),
        ("somebody supervises themself", parse_query("Supervises(x,x)")),
        ("a manager is an employee", parse_query("Manages(m,d), Emp(m)")),
    ]

    rows = []
    for label, query in queries:
        # The serving front door: goal-directed chase, stops on the
        # first witness instead of saturating to the depth budget.
        served = answer(
            database, ontology, query, strategy="chase", max_levels=5
        )

        certificate = ucq_rewritability_certificate(
            query, ontology, max_depth=10
        )
        via_rewriting = (
            entails_ucq(database, certificate.rewriting)
            if certificate
            else None
        )

        restricted = restricted_chase(database, ontology, max_rounds=10)
        via_restricted = entails_cq(restricted.instance, query)

        agreement = (
            served.entailed == via_restricted
            and (via_rewriting is None or via_rewriting == served.entailed)
        )
        rows.append(
            (
                label,
                f"{served.entailed} ({served.evidence['kind']})",
                "n/a" if via_rewriting is None else via_rewriting,
                via_restricted,
                "ok" if agreement else "MISMATCH",
            )
        )

    print(format_table(
        ["query", "answer(strategy=chase)", "rewriting", "restricted",
         "agree"],
        rows,
        title="OBQA three ways over the enterprise ontology",
    ))

    # The ontology's chase never terminates (new departments/managers all
    # the way down) — the restricted chase does, and rewriting never needs
    # any materialization at all.
    print("\nNote: this ontology is bdd (every query above has a finite")
    print("rewriting), so query answering is decidable although the")
    print("oblivious chase is infinite — the paper's opening theme.")


if __name__ == "__main__":
    main()
