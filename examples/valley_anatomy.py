#!/usr/bin/env python3
"""Anatomy of the Section 5 proof on a concrete chase.

Takes the tournament-builder rule set, makes it regal, and then walks the
actual objects of the proof of Theorem 28:

1. ``Ch(R_∃)`` is a DAG with increasing timestamps (Observation 35);
2. the full chase factorizes into Datalog over ``Ch(R_∃)`` (Lemma 33);
3. every E-edge has a non-empty witness set (Observation 37);
4. every E-edge has a *valley query* witness (Lemma 40);
5. Proposition 41's coloring: edges colored by their valley witness.

Usage::

    python examples/valley_anatomy.py
"""

from collections import Counter

from repro import parse_query, parse_rules
from repro.chase import oblivious_chase
from repro.core import (
    classify_valley,
    datalog_factorization_equivalent,
    existential_chase,
    existential_chase_is_dag,
    is_valley_query,
    timestamps_increase_along_edges,
    valley_witnesses,
    witness_set,
)
from repro.queries import injective_closure
from repro.rewriting import rewrite
from repro.surgery import regal_pipeline


def main() -> None:
    rules = parse_rules(
        """
        top -> exists x, y. E(x,y)
        E(x,y) -> exists z. E(y,z)
        E(x,xp), E(y,yp) -> E(x,yp)
        """,
        name="builder",
    )
    print("making the rule set regal (Section 4 pipeline) ...")
    regal = regal_pipeline(rules, rewriting_depth=8, strict=False).regal
    print(f"  regal rule set: {len(regal)} rules "
          f"({len(regal.existential_rules())} existential, "
          f"{len(regal.datalog_rules())} Datalog)")

    print("\n[1] Observation 35 — Ch(R_ex) is a DAG:")
    chase_ex = existential_chase(regal, max_levels=4)
    print(f"  Ch(R_ex): {len(chase_ex.instance)} atoms, "
          f"DAG = {existential_chase_is_dag(chase_ex)}, "
          f"TS increases along edges = "
          f"{timestamps_increase_along_edges(chase_ex)}")

    print("\n[2] Lemma 33 — Ch(R) <-> Ch(Ch(R_ex), R_DL):")
    print(f"  factorization equivalent = "
          f"{datalog_factorization_equivalent(regal, 3, 8)}")

    print("\n[3] the injective rewriting Q of E(x,y) (Prop 6 + Def 2):")
    rewriting = rewrite(
        parse_query("E(x,y)", answers=("x", "y")),
        regal, max_depth=6, max_disjuncts=300,
    )
    query_set = injective_closure(rewriting.ucq)
    print(f"  rewriting: {len(rewriting.ucq)} disjuncts "
          f"(complete={rewriting.complete}); "
          f"injective closure: {len(query_set)} disjuncts")

    print("\n[4] witness sets W(s,t) on the E-edges (Obs 37, Lemma 40):")
    full = oblivious_chase(
        chase_ex.instance, regal.datalog_rules(), max_levels=8
    )
    edges = sorted(
        a for a in full.instance
        if a.predicate.name == "E" and a.args[0] != a.args[1]
    )
    coloring = Counter()
    for atom in edges:
        witnesses = witness_set(
            chase_ex.instance, query_set, atom.args[0], atom.args[1]
        )
        valleys = [q for q in witnesses if is_valley_query(q)]
        print(f"  {str(atom):22s} |W| = {len(witnesses):3d}, "
              f"valley witnesses = {len(valleys)}")
        if valleys:
            coloring[sorted(valleys)[0]] += 1

    print("\n[5] Proposition 41 — coloring edges by valley witness:")
    for query, count in coloring.most_common():
        print(f"  {count} edge(s) colored by [{classify_valley(query)}] "
              f"{query}")
    print("\nA single valley query covering a 4-tournament would force the")
    print("loop (Proposition 43) — the end of the paper's proof.")


if __name__ == "__main__":
    main()
