#!/usr/bin/env python3
"""Quickstart: the paper's Example 1 and Property (p) in ten minutes.

Runs the chase on Example 1 (successor + transitivity), shows that its
tournaments grow while no loop ever appears, explains why that does not
contradict the main theorem (the rule set is not bdd), and then runs the
bdd-ified variant where Property (p) bites: the loop appears immediately.

Usage::

    python examples/quickstart.py
"""

from repro import (
    chase,
    check_property_p,
    entails_loop,
    parse_instance,
    parse_query,
    parse_rules,
    rewrite,
)
from repro.core import egraph, max_tournament_size


def main() -> None:
    print("=" * 70)
    print("Example 1: successor + transitivity (NOT bdd)")
    print("=" * 70)
    rules = parse_rules(
        """
        E(x,y) -> exists z. E(y,z)
        E(x,y), E(y,z) -> E(x,z)
        """,
        name="example1",
    )
    instance = parse_instance("E(a,b)")
    result = chase(instance, rules, max_levels=5)
    print(f"chase: {len(result.instance)} atoms over "
          f"{result.levels_completed} levels")
    for level in range(result.levels_completed + 1):
        prefix = result.prefix(level)
        size = max_tournament_size(egraph(prefix))
        loop = entails_loop(prefix)
        print(f"  Ch_{level}: max tournament = {size}, Loop_E = {loop}")
    print("-> tournaments grow forever, the loop never appears.")
    print("   No contradiction with Theorem 1: this rule set is not bdd —")

    rewriting = rewrite(
        parse_query("E(x,y)", answers=("x", "y")), rules, max_depth=4
    )
    print(f"   (the rewriting of E(x,y) does not reach a fixpoint: "
          f"{len(rewriting)} disjuncts at depth {rewriting.depth}, "
          f"complete={rewriting.complete})")

    print()
    print("=" * 70)
    print("The bdd-ified Example 1 (Section 1): Property (p) in action")
    print("=" * 70)
    bdd_rules = parse_rules(
        """
        E(x,y) -> exists z. E(y,z)
        E(x,xp), E(y,yp) -> E(x,yp)
        """,
        name="example1_bdd",
    )
    report = check_property_p(bdd_rules, instance, max_levels=4)
    print(f"tournament sizes per level: {report.tournament_sizes}")
    print(f"Loop_E first entailed at level: {report.loop_level}")
    print(f"consistent with Property (p): "
          f"{report.consistent_with_property_p}")

    loop_rewriting = rewrite(parse_query("E(x,x)"), bdd_rules, max_depth=8)
    print(f"\nthe loop query's UCQ rewriting "
          f"(complete={loop_rewriting.complete}):")
    for disjunct in loop_rewriting.ucq:
        print(f"  {disjunct}")
    print("-> the loop fires as soon as any edge exists, exactly as the")
    print("   paper's introduction explains.")


if __name__ == "__main__":
    main()
