#!/usr/bin/env python3
"""A guided tour of the Section 4 surgeries: from an arbitrary bdd rule
set with a wide signature and a database to a *regal* rule set over {⊤}.

Every stage is verified on the spot: chase preservation (restricted to the
original signature), and the structural properties the next stage needs.

Usage::

    python examples/regal_surgery_tour.py
"""

from repro import parse_instance, parse_rules
from repro.io import format_ruleset
from repro.logic import Instance
from repro.rules import classify
from repro.surgery import (
    encoded_chase_equivalent,
    regal_pipeline,
    regality_report,
    reification_chase_equivalent,
    streamline_chase_equivalent,
)


def stage(title: str) -> None:
    print()
    print("=" * 70)
    print(title)
    print("=" * 70)


def main() -> None:
    # A bdd rule set over a ternary signature, plus a database.
    rules = parse_rules(
        """
        T(x,y,u) -> exists z. T(y,z,u)
        T(x,y,u) -> E(x,y)
        """,
        name="wide",
    )
    instance = parse_instance("T(a,b,c)")

    stage("Input: a bdd rule set over a ternary signature + a database")
    print(format_ruleset(rules))
    print(f"instance: {sorted(str(a) for a in instance)}")
    print(f"classification: {classify(rules)}")

    stage("Stage 1 — instance encoding (Definition 12, Corollary 15)")
    print("check: Ch(J, S) <-> Ch({T}, S + {T->J}) ...", end=" ")
    print("OK" if encoded_chase_equivalent(rules, instance, 3) else "FAIL")

    stage("Stage 2 — reification to a binary signature (Lemma 19)")
    print("check: Ch(reify(J), reify(S)) <-> reify(Ch(J, S)) ...", end=" ")
    print("OK" if reification_chase_equivalent(rules, instance, 3) else "FAIL")

    stage("Stage 3 — streamlining the heads (Lemmas 24, 25)")
    print("check: Ch(J, S) <-> Ch(J, streamline(S))|_S ...", end=" ")
    print("OK" if streamline_chase_equivalent(rules, instance, 2) else "FAIL")

    stage("Stage 4 — body rewriting for quickness (Lemmas 30-32)")
    pipeline = regal_pipeline(rules, instance, rewriting_depth=10,
                              strict=False)
    for name, stage_rules in pipeline.stages():
        print(f"  {name:12s}: {len(stage_rules):3d} rules, "
              f"binary={stage_rules.signature().is_binary()}")

    stage("Result — the regal rule set (Definition 27)")
    report = regality_report(
        pipeline.regal, witness_instances=[Instance()], max_levels=3
    )
    print(f"binary signature     : {report.binary_signature}")
    print(f"forward-existential  : {report.forward_existential}")
    print(f"predicate-unique     : {report.predicate_unique}")
    print(f"quick (on witnesses) : {report.quick_on_witnesses}")
    print(f"=> regal evidence    : {report.is_regal_evidence}")
    print()
    print("A counterexample to Property (p), had one existed, would have")
    print("survived all four surgeries into this regal world — which is")
    print("exactly how the paper reduces Theorem 1 to Theorem 28.")


if __name__ == "__main__":
    main()
