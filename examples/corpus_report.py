#!/usr/bin/env python3
"""Corpus report: the full analysis battery over every corpus entry.

For each rule set: syntactic classes, termination certificate, a bdd
probe, the Property (p) verdict, and chromatic/girth measurements of the
chase E-graph — the one-screen summary a reviewer would want.

Usage::

    python examples/corpus_report.py
"""

from repro.analysis import analyze_entry
from repro.corpus import full_corpus
from repro.corpus.families import inclusion_chain, merge_ladder
from repro.io import format_table


def main() -> None:
    entries = full_corpus() + [
        inclusion_chain(3),
        merge_ladder(2),
    ]
    rows = []
    for entry in entries:
        report = analyze_entry(entry, max_levels=3, max_atoms=20_000)
        classes = "".join(
            flag
            for flag, key in [
                ("L", "linear"),
                ("G", "guarded"),
                ("S", "sticky"),
                ("F", "forward_existential"),
                ("U", "predicate_unique"),
            ]
            if report[key]
        )
        rows.append(
            (
                report["name"],
                report["rules"],
                classes or "-",
                report["termination_certificate"] or "-",
                "yes" if report["loop_query_rewritable"] else "?",
                str(report["tournament_sizes"]),
                report["loop_level"] if report["loop_level"] is not None else "-",
                report["chromatic_number"]
                if report["chromatic_number"] is not None
                else "∞",
                "ok" if report["ground_truth_consistent"] else "MISMATCH",
            )
        )
    print(format_table(
        [
            "rule set", "|R|", "classes", "terminates", "loop rewr.",
            "tournaments", "loop@", "χ(E)", "truth",
        ],
        rows,
        title=(
            "Corpus analysis battery "
            "(classes: Linear Guarded Sticky Fwd-ex pred-Unique)"
        ),
    ))


if __name__ == "__main__":
    main()
