#!/usr/bin/env python3
"""Counterexample hunting: scan a corpus of bdd rule sets for violations
of Property (p).

Theorem 1 says no bdd rule set can grow unbounded tournaments without
entailing the loop.  This example runs the verifier over the curated
corpus plus a batch of randomly generated non-recursive (hence bdd) rule
sets — the search the theorem proves must come up empty.

Usage::

    python examples/tournament_hunt.py [--seeds N]
"""

import argparse

from repro import check_property_p
from repro.corpus import (
    bdd_corpus,
    random_instance,
    random_nonrecursive_ruleset,
)
from repro.io import format_table
from repro.rules import stratification


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--seeds", type=int, default=10,
                        help="number of random bdd rule sets to scan")
    args = parser.parse_args()

    rows = []
    violations = 0

    for entry in bdd_corpus():
        report = check_property_p(
            entry.rules, entry.instance, max_levels=4, max_atoms=30_000
        )
        consistent = report.consistent_with_property_p
        violations += not consistent
        rows.append(
            (
                entry.name,
                report.tournament_sizes,
                report.loop_level if report.loop_entailed else "-",
                "ok" if consistent else "VIOLATION",
            )
        )

    for seed in range(args.seeds):
        rules = random_nonrecursive_ruleset(
            n_strata=3, predicates_per_stratum=2, rules_per_stratum=2,
            seed=seed,
        )
        # Seed the chase with random facts over the bottom stratum.
        bottom = sorted(stratification(rules)[0])
        database = random_instance(bottom, n_terms=4, n_atoms=6, seed=seed)
        report = check_property_p(rules, database, max_levels=4)
        consistent = report.consistent_with_property_p
        violations += not consistent
        rows.append(
            (
                f"random_nr_{seed}",
                report.tournament_sizes,
                report.loop_level if report.loop_entailed else "-",
                "ok" if consistent else "VIOLATION",
            )
        )

    print(format_table(
        ["rule set", "tournament sizes / level", "loop level", "verdict"],
        rows,
        title="Property (p) scan over bdd rule sets",
    ))
    print()
    if violations:
        print(f"!!! {violations} violation(s) found — check the harness, "
              "Theorem 1 says this cannot happen for bdd rule sets.")
    else:
        print("No violations, as Theorem 1 predicts: every bdd rule set "
              "either caps its tournaments or entails the loop.")


if __name__ == "__main__":
    main()
