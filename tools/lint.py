#!/usr/bin/env python
"""``make lint``: ruff when available, a stdlib fallback otherwise —
then the project-native ``repro.checks`` passes either way.

CI installs ruff from ``requirements-dev.txt`` and gets the real thing
(``ruff check`` with the repo's configuration).  Hermetic environments
without ruff — and without a way to install it — still get a useful gate:
a stdlib-only subset of ruff's default rule set

* ``E9``  — syntax/indentation errors (the file must compile), and
* ``F401`` — imported names never used in the module,

implemented with ``ast``.  The fallback is deliberately conservative: a
name is *used* if it appears as an identifier anywhere outside import
statements, including inside string literals (which covers ``__all__``
re-export lists and string-typed annotations), so it reports no finding
ruff would not also report.

After the style gate, ``repro.checks`` (determinism, transport-boundary,
resource-lifecycle, hot-path and stats-registry invariants — see
``src/repro/checks/README.md``) runs over ``src tools benchmarks`` in
the same process, so ``make lint`` is the single static-analysis entry
point.

Usage: ``python tools/lint.py PATH [PATH ...]``
"""

from __future__ import annotations

import ast
import pathlib
import re
import shutil
import subprocess
import sys

_IDENTIFIER = re.compile(r"[A-Za-z_][A-Za-z0-9_]*")


def _python_files(paths: list[str]) -> list[pathlib.Path]:
    files: list[pathlib.Path] = []
    for raw in paths:
        path = pathlib.Path(raw)
        if path.is_dir():
            files.extend(sorted(path.rglob("*.py")))
        elif path.suffix == ".py":
            files.append(path)
    return files


def _imported_bindings(tree: ast.AST) -> list[tuple[str, int, str]]:
    """The names each import statement binds: (binding, lineno, shown)."""
    bindings: list[tuple[str, int, str]] = []
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                name = alias.asname or alias.name.split(".")[0]
                if alias.asname == alias.name:
                    continue  # `import x as x`: explicit re-export
                bindings.append((name, node.lineno, alias.name))
        elif isinstance(node, ast.ImportFrom):
            if node.module == "__future__":
                continue
            for alias in node.names:
                if alias.name == "*":
                    continue
                if alias.asname == alias.name:
                    continue  # `from m import x as x`: re-export
                name = alias.asname or alias.name
                bindings.append((name, node.lineno, alias.name))
    return bindings


def _used_names(tree: ast.AST) -> set[str]:
    """Identifiers referenced outside import statements.

    String literals contribute their identifier tokens so ``__all__``
    entries and string-typed annotations count as uses.
    """
    used: set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Name):
            used.add(node.id)
        elif isinstance(node, ast.Constant) and isinstance(node.value, str):
            used.update(_IDENTIFIER.findall(node.value))
    return used


def _fallback_lint(files: list[pathlib.Path]) -> list[str]:
    findings: list[str] = []
    for path in files:
        source = path.read_text()
        try:
            tree = ast.parse(source, filename=str(path))
        except SyntaxError as error:
            findings.append(
                f"{path}:{error.lineno}: E999 syntax error: {error.msg}"
            )
            continue
        used = _used_names(tree)
        for name, lineno, shown in _imported_bindings(tree):
            if name not in used:
                findings.append(
                    f"{path}:{lineno}: F401 `{shown}` imported but unused"
                )
    return findings


def _style_gate(paths: list[str]) -> int:
    ruff = shutil.which("ruff")
    if ruff:
        return subprocess.run([ruff, "check", *paths]).returncode
    files = _python_files(paths)
    findings = _fallback_lint(files)
    for finding in findings:
        print(finding)
    print(
        f"lint (stdlib fallback: ruff not installed): {len(files)} files, "
        f"{len(findings)} findings"
    )
    return 1 if findings else 0


def _project_checks() -> int:
    root = pathlib.Path(__file__).resolve().parent.parent
    sys.path.insert(0, str(root / "src"))
    from repro.checks import main as checks_main

    return checks_main(["--root", str(root)])


def main(argv: list[str]) -> int:
    paths = argv or ["src", "tests", "benchmarks", "tools"]
    style = _style_gate(paths)
    checks = _project_checks()
    return style or checks


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
