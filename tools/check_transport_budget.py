#!/usr/bin/env python
"""Transport-bytes regression guard for the persistent worker protocol.

Compares the measurements ``make perf-smoke`` just wrote
(``benchmarks/results/BENCH_*.json``) against the checked-in budgets
(``benchmarks/transport_budget.json``) and fails when any gated channel
exceeds its budget.  Byte counters are deterministic — unlike the
wall-clocks in the same artifacts — so these are hard gates, not noisy
ones: if one trips, the wire protocol really did get chattier (a symbol
re-shipped per round, a payload falling back to pickle, a widened id
stream, a sub-threshold payload pushed onto the pipe), and either the
protocol or, deliberately, the budget must change.

Each gate names an artifact, an engine label inside it, and a byte
*channel*: ``payload_bytes``/``pipe_bytes`` are pickled-envelope pipe
traffic, ``shm_bytes`` is payload riding shared-memory segments,
``total_bytes`` their sum.  The channel split means a regression cannot
hide by moving bytes between transports — the EXP-18 pipe gate pins the
shared-memory win, its total gate pins the combined traffic.

Exit status: 0 when every gate holds, 1 on any over-budget channel or a
missing/stale artifact (run ``make perf-smoke`` first).
"""

from __future__ import annotations

import json
import pathlib
import sys

ROOT = pathlib.Path(__file__).resolve().parent.parent
BUDGET_PATH = ROOT / "benchmarks" / "transport_budget.json"
RESULTS_DIR = ROOT / "benchmarks" / "results"


def check_gate(gate: dict, artifacts: dict) -> str | None:
    """Apply one gate; return an error line or None when it holds."""
    name = gate["artifact"]
    if name not in artifacts:
        path = RESULTS_DIR / name
        try:
            artifacts[name] = json.loads(path.read_text())
        except FileNotFoundError:
            return (
                f"{name} missing — run `make perf-smoke` (or the "
                f"{gate['experiment']} benchmark) first"
            )
        except ValueError as exc:
            return f"{name}: unreadable JSON ({exc})"
    engine, channel = gate["engine"], gate["channel"]
    try:
        measured = artifacts[name]["engines"][engine][channel]
    except KeyError:
        return f"{name}: no {channel} for engine {engine!r}"
    limit = gate["max_bytes"]
    verdict = "within" if measured <= limit else "OVER"
    print(
        f"transport budget: {gate['experiment']} {engine} {channel} "
        f"{measured} B, budget {limit} B — {verdict} budget"
    )
    if measured > limit:
        return (
            f"{gate['experiment']} {engine} {channel}: {measured} B over "
            f"the {limit} B budget"
        )
    return None


def main() -> int:
    budget = json.loads(BUDGET_PATH.read_text())
    artifacts: dict[str, dict] = {}
    failures = []
    for gate in budget["gates"]:
        problem = check_gate(gate, artifacts)
        if problem is not None:
            failures.append(problem)
    if failures:
        for problem in failures:
            print(f"transport budget: {problem}", file=sys.stderr)
        print(
            "transport budget: the persistent transport got chattier; fix "
            "the regression or deliberately raise "
            f"{BUDGET_PATH.relative_to(ROOT)}",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
