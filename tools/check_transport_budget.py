#!/usr/bin/env python
"""Transport-bytes regression guard for the persistent worker protocol.

Compares the EXP-14 measurement that ``make perf-smoke`` just wrote
(``benchmarks/results/BENCH_exp14.json``) against the checked-in budget
(``benchmarks/transport_budget.json``) and fails when the persistent
pool's payload exceeds it.  Byte counters are deterministic — unlike the
wall-clocks in the same artifact — so this is a hard gate, not a noisy
one: if it trips, the wire protocol really did get chattier (a symbol
re-shipped per round, a payload falling back to pickle, a widened id
stream), and either the protocol or, deliberately, the budget must
change.

Exit status: 0 within budget, 1 over budget or on a missing/stale
artifact (run the EXP-14 benchmark first).
"""

from __future__ import annotations

import json
import pathlib
import sys

ROOT = pathlib.Path(__file__).resolve().parent.parent
BUDGET_PATH = ROOT / "benchmarks" / "transport_budget.json"
RESULTS_PATH = ROOT / "benchmarks" / "results" / "BENCH_exp14.json"


def main() -> int:
    budget = json.loads(BUDGET_PATH.read_text())
    try:
        results = json.loads(RESULTS_PATH.read_text())
    except FileNotFoundError:
        print(
            f"transport budget: {RESULTS_PATH} missing — run "
            "`make perf-smoke` (or the EXP-14 benchmark) first",
            file=sys.stderr,
        )
        return 1
    engine = budget["engine"]
    try:
        measured = results["engines"][engine]["payload_bytes"]
    except KeyError:
        print(
            f"transport budget: no payload_bytes for engine {engine!r} "
            f"in {RESULTS_PATH}",
            file=sys.stderr,
        )
        return 1
    limit = budget["max_payload_bytes"]
    verdict = "within" if measured <= limit else "OVER"
    print(
        f"transport budget: {budget['experiment']} {engine} sent "
        f"{measured} bytes, budget {limit} — {verdict} budget"
    )
    if measured > limit:
        print(
            "transport budget: the persistent wire protocol got chattier; "
            "fix the regression or deliberately raise "
            f"{BUDGET_PATH.relative_to(ROOT)}",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
