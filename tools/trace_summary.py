#!/usr/bin/env python
"""Render the phase-time breakdown of a chase trace JSONL file.

Usage::

    python tools/trace_summary.py /tmp/run.jsonl [more.jsonl ...]

Reads traces written by ``repro chase --trace PATH`` (or any
:meth:`repro.obs.RunTrace.to_jsonl` caller) and prints, per file, the
run header, the per-round phase table (one row per round: plan,
trigger/application/new-atom counts, the six phase timers in
milliseconds) and, when present, the run summary and the per-round
transport byte / worker-time totals.
"""

from __future__ import annotations

import pathlib
import sys

ROOT = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(ROOT / "src"))

from repro.obs import RunTrace  # noqa: E402


def describe(path: pathlib.Path) -> int:
    trace = RunTrace.from_jsonl(path)
    if not trace.rounds and not trace.meta:
        print(f"{path}: no trace records", file=sys.stderr)
        return 1
    meta = ", ".join(f"{key}={trace.meta[key]}" for key in sorted(trace.meta))
    print(f"{path} (schema v{trace.schema_version})")
    if meta:
        print(f"  {meta}")
    print()
    print(trace.summary_table())
    sent = sum(
        (record.get("transport") or {}).get("bytes_sent", 0)
        for record in trace.rounds
    )
    received = sum(
        (record.get("transport") or {}).get("bytes_received", 0)
        for record in trace.rounds
    )
    worker = sum(
        sum((record.get("worker") or {}).values()) for record in trace.rounds
    )
    if sent or received:
        print(
            f"transport: {sent} bytes sent, {received} received; "
            f"worker time {worker * 1e3:.3f} ms"
        )
    if trace.summary is not None:
        fields = ", ".join(
            f"{key}={value}"
            for key, value in sorted(trace.summary.items())
            if key != "type"
        )
        print(f"summary: {fields}")
    return 0


def main(argv: list[str]) -> int:
    if not argv:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    status = 0
    for index, arg in enumerate(argv):
        if index:
            print()
        status = max(status, describe(pathlib.Path(arg)))
    return status


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
