#!/usr/bin/env python
"""Gate: every ``BENCH_*.json`` artifact must embed a telemetry snapshot.

``benchmarks/conftest.emit_json`` stamps a ``telemetry`` block — the
trace schema version plus a snapshot of the default metrics registry —
into every machine-readable benchmark artifact.  This check (run at the
end of ``make perf-smoke``) fails when an artifact is missing the block,
carries a stale schema version, or lost the registry groups: that means
a benchmark started writing JSON behind ``emit_json``'s back, or the
telemetry schema was bumped without regenerating the artifacts.

Exit status: 0 when every artifact checks out, 1 otherwise (or when no
artifacts exist at all — run ``make perf-smoke`` first).
"""

from __future__ import annotations

import json
import pathlib
import sys

ROOT = pathlib.Path(__file__).resolve().parent.parent
RESULTS_DIR = ROOT / "benchmarks" / "results"

sys.path.insert(0, str(ROOT / "src"))

from repro.obs import TRACE_SCHEMA_VERSION  # noqa: E402


def check_artifact(path: pathlib.Path) -> list[str]:
    """Return the problems of one artifact (empty = clean)."""
    rel = path.relative_to(ROOT)
    try:
        payload = json.loads(path.read_text())
    except (OSError, ValueError) as exc:
        return [f"{rel}: unreadable JSON ({exc})"]
    telemetry = payload.get("telemetry")
    if not isinstance(telemetry, dict):
        return [f"{rel}: no telemetry block (emit_json should stamp one)"]
    problems = []
    version = telemetry.get("schema_version")
    if version != TRACE_SCHEMA_VERSION:
        problems.append(
            f"{rel}: telemetry schema_version {version!r} != "
            f"{TRACE_SCHEMA_VERSION} — regenerate the artifact"
        )
    registry = telemetry.get("registry")
    if not isinstance(registry, dict) or not registry:
        problems.append(f"{rel}: telemetry.registry missing or empty")
    return problems


def main() -> int:
    artifacts = sorted(RESULTS_DIR.glob("BENCH_*.json"))
    if not artifacts:
        print(
            f"bench telemetry: no BENCH_*.json under "
            f"{RESULTS_DIR.relative_to(ROOT)} — run `make perf-smoke` first",
            file=sys.stderr,
        )
        return 1
    problems: list[str] = []
    for path in artifacts:
        problems.extend(check_artifact(path))
    if problems:
        for problem in problems:
            print(f"bench telemetry: {problem}", file=sys.stderr)
        return 1
    print(
        f"bench telemetry: {len(artifacts)} artifact(s) carry a "
        f"schema-v{TRACE_SCHEMA_VERSION} registry snapshot"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
