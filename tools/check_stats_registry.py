#!/usr/bin/env python
"""Lint: no module-global stats counters outside the metrics registry.

The library keeps exactly four process-wide stats accumulators —
``MATCHER_STATS``, ``INSTANTIATION_STATS``, ``TRANSPORT_STATS``,
``SERVING_STATS`` — and names them as groups of
:func:`repro.obs.default_registry`, so one ``reset_all()`` /
``collect()`` surface covers every counter.  A new
ad-hoc module global (``FOO_STATS = FooStats()``) would silently escape
that surface: scopes would not isolate it, the autouse test fixture
would not zero it, and benchmark artifacts would not snapshot it.

This check walks ``src/`` with the ``ast`` module and fails on any
module-level ``*_STATS`` assignment (or instantiation of a ``*Stats``
class) that is not in the allowlist below.  Adding a genuinely new
group means registering it in ``repro.obs.default_registry`` *and*
allowlisting it here, in one commit.

Exit status: 0 clean, 1 on unregistered globals (or unparsable source).
"""

from __future__ import annotations

import ast
import pathlib
import sys

ROOT = pathlib.Path(__file__).resolve().parent.parent
SRC = ROOT / "src"

#: The registered stats globals: (path relative to src/, global name).
ALLOWED = {
    ("repro/logic/homomorphisms.py", "MATCHER_STATS"),
    ("repro/rules/rule.py", "INSTANTIATION_STATS"),
    ("repro/engine/workers.py", "TRANSPORT_STATS"),
    ("repro/serving/stats.py", "SERVING_STATS"),
}


def _is_stats_call(value: ast.expr) -> bool:
    """True for ``SomethingStats(...)`` instantiations."""
    if not isinstance(value, ast.Call):
        return False
    func = value.func
    name = func.id if isinstance(func, ast.Name) else (
        func.attr if isinstance(func, ast.Attribute) else ""
    )
    return name.endswith("Stats")


def stats_globals(tree: ast.Module) -> list[tuple[str, int]]:
    """Module-level ``(name, lineno)`` pairs that look like stats globals."""
    found = []
    for node in tree.body:
        targets: list[ast.expr] = []
        value = None
        if isinstance(node, ast.Assign):
            targets, value = node.targets, node.value
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            targets, value = [node.target], node.value
        for target in targets:
            if not isinstance(target, ast.Name):
                continue
            if target.id.endswith("_STATS") or _is_stats_call(value):
                found.append((target.id, node.lineno))
    return found


def main() -> int:
    problems: list[str] = []
    for path in sorted(SRC.rglob("*.py")):
        rel = path.relative_to(SRC).as_posix()
        try:
            tree = ast.parse(path.read_text())
        except SyntaxError as exc:
            problems.append(f"{rel}: unparsable ({exc})")
            continue
        for name, lineno in stats_globals(tree):
            if (rel, name) not in ALLOWED:
                problems.append(
                    f"{rel}:{lineno}: module-global stats counter "
                    f"{name!r} is not in the metrics registry — register "
                    f"it in repro.obs.default_registry and allowlist it "
                    f"in tools/check_stats_registry.py"
                )
    if problems:
        for problem in problems:
            print(f"stats registry: {problem}", file=sys.stderr)
        return 1
    print(
        f"stats registry: {len(ALLOWED)} registered stats globals, "
        f"no strays"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
