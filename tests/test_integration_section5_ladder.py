"""Section 5 machinery on a *second* regal rule set (the merge ladder),
guarding against the witness/valley pipeline being tuned to one example."""

import pytest

from repro.chase.oblivious import oblivious_chase
from repro.core.timestamps import (
    datalog_factorization_equivalent,
    existential_chase,
    existential_chase_is_dag,
)
from repro.core.valley import is_valley_query
from repro.core.witnesses import valley_witnesses, witness_set
from repro.corpus.families import merge_ladder
from repro.logic.instances import Instance
from repro.queries.specialization import injective_closure
from repro.rewriting.rewriter import rewrite
from repro.rules.parser import parse_query
from repro.surgery.regal import regal_pipeline, regality_report


@pytest.fixture(scope="module")
def ladder_setup():
    rules = merge_ladder(2).rules
    regal = regal_pipeline(rules, rewriting_depth=8, strict=False).regal
    rewriting = rewrite(
        parse_query("E(x,y)", answers=("x", "y")),
        regal,
        max_depth=6,
        max_disjuncts=400,
    )
    query_set = injective_closure(rewriting.ucq)
    chase_ex = existential_chase(regal, max_levels=3)
    full = oblivious_chase(
        chase_ex.instance, regal.datalog_rules(), max_levels=8
    )
    edges = sorted(
        a
        for a in full.instance
        if a.predicate.name == "E" and a.args[0] != a.args[1]
    )
    return regal, chase_ex, query_set, edges, rewriting


class TestLadderRegality:
    def test_pipeline_regal(self, ladder_setup):
        regal, _, _, _, _ = ladder_setup
        report = regality_report(
            regal, witness_instances=[Instance()], max_levels=3
        )
        assert report.is_regal_evidence

    def test_rewriting_complete(self, ladder_setup):
        *_, rewriting = ladder_setup
        assert rewriting.complete

    def test_observation35(self, ladder_setup):
        _, chase_ex, _, _, _ = ladder_setup
        assert existential_chase_is_dag(chase_ex)

    def test_lemma33(self, ladder_setup):
        regal, *_ = ladder_setup
        assert datalog_factorization_equivalent(
            regal, max_levels=3, datalog_levels=8
        )


class TestLadderWitnesses:
    def test_observation37(self, ladder_setup):
        _, chase_ex, query_set, edges, _ = ladder_setup
        assert edges
        for atom in edges:
            assert witness_set(
                chase_ex.instance, query_set, atom.args[0], atom.args[1]
            ), f"empty W for {atom}"

    def test_lemma40(self, ladder_setup):
        _, chase_ex, query_set, edges, _ = ladder_setup
        for atom in edges:
            valleys = valley_witnesses(
                chase_ex.instance, query_set, atom.args[0], atom.args[1]
            )
            assert valleys, f"no valley witness for {atom}"
            assert all(is_valley_query(q) for q in valleys)
