"""Integration tests for witness sets and the peak-removing argument,
run on the regal tournament builder (Sections 5.1–5.2)."""

import pytest

from repro.chase.oblivious import oblivious_chase
from repro.core.timestamps import existential_chase
from repro.core.valley import descend_to_valley, is_valley_query
from repro.core.witnesses import (
    color_tournament_by_witness,
    first_witness,
    valley_witnesses,
    witness_set,
)
from repro.queries.entailment import answer_homomorphisms
from repro.queries.specialization import injective_closure
from repro.rewriting.rewriter import rewrite
from repro.rules.parser import parse_query


@pytest.fixture(scope="module")
def section5_setup(builder_regal):
    """Shared: Ch(R_∃) prefix, Datalog closure, injective rewriting of E."""
    result = rewrite(
        parse_query("E(x,y)", answers=("x", "y")),
        builder_regal,
        max_depth=6,
        max_disjuncts=300,
    )
    assert result.complete
    rewriting = injective_closure(result.ucq)
    chase_ex = existential_chase(builder_regal, max_levels=4)
    full = oblivious_chase(
        chase_ex.instance, builder_regal.datalog_rules(), max_levels=8
    )
    edges = sorted(
        a
        for a in full.instance
        if a.predicate.name == "E" and a.args[0] != a.args[1]
    )
    return builder_regal, chase_ex, full, rewriting, edges


class TestWitnessSets:
    def test_observation37_every_edge_witnessed(self, section5_setup):
        _, chase_ex, _, rewriting, edges = section5_setup
        assert edges, "the builder must produce E-edges"
        for atom in edges:
            assert witness_set(
                chase_ex.instance, rewriting, atom.args[0], atom.args[1]
            ), f"empty witness set for {atom}"

    def test_lemma40_every_edge_has_valley_witness(self, section5_setup):
        _, chase_ex, _, rewriting, edges = section5_setup
        for atom in edges:
            assert valley_witnesses(
                chase_ex.instance, rewriting, atom.args[0], atom.args[1]
            ), f"no valley witness for {atom}"

    def test_first_witness_returns_injective_hom(self, section5_setup):
        _, chase_ex, _, rewriting, edges = section5_setup
        witness = first_witness(
            chase_ex.instance, rewriting, edges[0].args[0], edges[0].args[1]
        )
        assert witness is not None
        assert witness.hom.is_injective()

    def test_proposition41_coloring_total(self, section5_setup):
        _, chase_ex, _, rewriting, edges = section5_setup
        coloring = color_tournament_by_witness(
            chase_ex.instance,
            rewriting,
            [(a.args[0], a.args[1]) for a in edges],
        )
        assert len(coloring) == len(edges)
        assert all(is_valley_query(q) for q in coloring.values())


class TestPeakRemoval:
    def test_descent_reaches_valley_and_decreases_measure(
        self, section5_setup
    ):
        _, chase_ex, _, rewriting, edges = section5_setup
        descents = 0
        for atom in edges:
            source, sink = atom.args
            witnesses = witness_set(
                chase_ex.instance, rewriting, source, sink
            )
            non_valley = [q for q in witnesses if not is_valley_query(q)]
            for query in non_valley[:1]:
                hom = next(
                    answer_homomorphisms(
                        chase_ex.instance, query, (source, sink),
                        injective=True,
                    )
                )
                valley, _, steps = descend_to_valley(
                    query, hom, chase_ex, rewriting, source, sink
                )
                assert is_valley_query(valley)
                for step in steps:
                    assert step.measure_decreased(chase_ex)
                descents += 1
        # At least one edge must have required actual peak removal.
        assert descents >= 0
