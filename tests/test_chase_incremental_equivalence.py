"""Engine equivalence: the delta-driven chase must be bit-identical to the
naive reference enumeration.

The delta engine enumerates only triggers using ≥ 1 atom of the previous
level's delta (semi-naive evaluation); the naive engine re-matches every
rule body against the whole instance and subtracts the already-seen
triggers.  Both fire in the same canonical per-rule order, so for every
workload the produced :class:`ChaseResult` — atom sets, levels,
termination flag, timestamps, null names, provenance records — must agree
exactly, across all three chase variants and all corpus families.
"""

from __future__ import annotations

import pytest

from repro.chase import (
    naive_new_triggers_of,
    new_triggers_of,
    oblivious_chase,
    restricted_chase,
    semi_oblivious_chase,
    triggers_of,
)
from repro.corpus.families import (
    branching_tree,
    datalog_grid,
    inclusion_chain,
    merge_ladder,
)
from repro.corpus.generators import (
    path_instance,
    random_digraph_instance,
    random_nonrecursive_ruleset,
    tournament_instance,
)
from repro.logic.homomorphisms import MATCHER_STATS
from repro.logic.instances import Instance
from repro.rules.parser import parse_instance, parse_rules


def assert_bit_identical(a, b):
    """Full ChaseResult equality: atoms, levels, provenance, timestamps."""
    assert a.instance == b.instance
    assert a.levels_completed == b.levels_completed
    assert a.terminated == b.terminated
    assert a.records() == b.records()
    for term in a.instance.active_domain():
        assert a.timestamp(term) == b.timestamp(term)
    for atom in a.instance:
        assert a.atom_level(atom) == b.atom_level(atom)


def _workloads():
    succ = parse_rules(
        "E(x,y) -> exists z. E(y,z)\nE(x,y), E(y,z) -> F(x,z)",
        name="succ_overlay",
    )
    transitivity = parse_rules("E(x,y), E(y,z) -> E(x,z)", name="tc")
    cases = [
        ("path_succ", path_instance(8), succ, 4),
        ("path_tc", path_instance(8), transitivity, 6),
        ("tournament_succ", tournament_instance(7, seed=0), succ, 3),
        ("tournament_tc", tournament_instance(6, seed=3), transitivity, 4),
    ]
    for entry in (
        inclusion_chain(3),
        branching_tree(2),
        merge_ladder(2),
        datalog_grid(6),
    ):
        cases.append((entry.name, entry.instance, entry.rules, 4))
    for seed in (0, 1):
        cases.append(
            (
                f"random_{seed}",
                random_digraph_instance(5, 0.4, seed=seed),
                parse_rules(
                    "E(x,y) -> exists z. F(y,z)\nF(x,y), E(y,z) -> E(x,z)",
                    name="mixed",
                ),
                4,
            )
        )
        cases.append(
            (
                f"stratified_{seed}",
                parse_instance("L0P0(a,b), L0P1(b,c)"),
                random_nonrecursive_ruleset(seed=seed),
                5,
            )
        )
    return cases


WORKLOADS = _workloads()
IDS = [w[0] for w in WORKLOADS]


@pytest.mark.parametrize("name,instance,rules,levels", WORKLOADS, ids=IDS)
class TestEngineEquivalence:
    def test_oblivious(self, name, instance, rules, levels):
        delta = oblivious_chase(
            instance.copy(), rules, max_levels=levels, max_atoms=20_000
        )
        naive = oblivious_chase(
            instance.copy(),
            rules,
            max_levels=levels,
            max_atoms=20_000,
            engine="naive",
        )
        assert_bit_identical(delta, naive)

    def test_semi_oblivious(self, name, instance, rules, levels):
        delta = semi_oblivious_chase(
            instance.copy(), rules, max_levels=levels, max_atoms=20_000
        )
        naive = semi_oblivious_chase(
            instance.copy(),
            rules,
            max_levels=levels,
            max_atoms=20_000,
            engine="naive",
        )
        assert_bit_identical(delta, naive)

    def test_restricted(self, name, instance, rules, levels):
        delta = restricted_chase(
            instance.copy(), rules, max_rounds=levels, max_atoms=20_000
        )
        naive = restricted_chase(
            instance.copy(),
            rules,
            max_rounds=levels,
            max_atoms=20_000,
            engine="naive",
        )
        assert_bit_identical(delta, naive)


class TestRestrictedMidRound:
    def test_mid_round_satisfaction_checks_match(self):
        # The first trigger's output satisfies the second before it is
        # checked; both engines must observe the same mid-round growth.
        rules = parse_rules("E(x,y) -> exists z. E(y,z)")
        inst = parse_instance("E(a,b), E(c,b)")
        delta = restricted_chase(inst.copy(), rules, max_rounds=4)
        naive = restricted_chase(
            inst.copy(), rules, max_rounds=4, engine="naive"
        )
        assert_bit_identical(delta, naive)
        # Both E(a,b) and E(c,b) share the successor-of-b obligation: one
        # trigger fires at round 1, the other is satisfied by its output
        # mid-round and never fires.
        round_one = [r for r in delta.records() if r.level == 1]
        assert len(round_one) == 1

    def test_partially_satisfied_instance(self):
        rules = parse_rules("E(x,y) -> exists z. E(y,z)")
        inst = parse_instance("E(a,b), E(b,c)")
        delta = restricted_chase(inst.copy(), rules, max_rounds=5)
        naive = restricted_chase(
            inst.copy(), rules, max_rounds=5, engine="naive"
        )
        assert_bit_identical(delta, naive)


class TestNewTriggersOf:
    def test_full_delta_equals_full_enumeration(self):
        rules = parse_rules("E(x,y), E(y,z) -> F(x,z)")
        inst = path_instance(5)
        full = set(triggers_of(inst, rules))
        incremental = set(new_triggers_of(inst, rules, inst))
        assert full == incremental

    def test_only_delta_touching_triggers(self):
        rules = parse_rules("E(x,y), E(y,z) -> F(x,z)")
        inst = parse_instance("E(a,b), E(b,c), E(c,d)")
        rev = inst.revision
        from repro.logic.atoms import atom
        from repro.logic.terms import Constant

        added = atom("E", "'d'", "'f'")  # parse_instance froze d as Constant
        inst.add(added)
        delta = inst.delta_since(rev)
        assert delta == [added]
        new = list(new_triggers_of(inst, rules, delta))
        # Only the (c,d),(d,f) join uses the new atom; the old joins
        # (a,b),(b,c) and (b,c),(c,d) must not be re-enumerated.
        assert len(new) == 1
        assert Constant("f") in new[0].image()

    def test_duplicate_pivots_deduplicated(self):
        # Both body atoms match delta atoms: the trigger is found via two
        # pivots but must be reported once.
        rules = parse_rules("E(x,y), E(y,z) -> F(x,z)")
        inst = parse_instance("E(a,b), E(b,c)")
        new = list(new_triggers_of(inst, rules, inst))
        assert len(new) == len(set(new)) == 1

    def test_matches_naive_reference(self):
        rules = parse_rules(
            "E(x,y) -> exists z. E(y,z)\nE(x,y), E(y,z) -> F(x,z)"
        )
        inst = tournament_instance(5, seed=2)
        fired: set = set()
        naive = naive_new_triggers_of(inst, rules, fired)
        incremental = list(new_triggers_of(inst, rules, inst))
        assert naive == incremental  # same triggers, same canonical order


class TestMatcherScalesWithDelta:
    def test_candidates_proportional_to_delta_not_instance(self):
        rules = parse_rules(
            "E(x,y) -> exists z. E(y,z)\nE(x,y), E(y,z) -> F(x,z)"
        )

        def candidates(engine, n):
            MATCHER_STATS.reset()
            oblivious_chase(
                path_instance(n),
                rules,
                max_levels=8,
                max_atoms=100_000,
                engine=engine,
            )
            return MATCHER_STATS.candidates

        delta_cand = candidates("delta", 40)
        naive_cand = candidates("naive", 40)
        # The naive engine re-matches the whole instance per level; the
        # delta engine touches work proportional to each level's delta.
        assert naive_cand >= 3 * delta_cand

    def test_instance_revision_and_delta(self):
        inst = Instance()
        base = inst.revision
        from repro.logic.atoms import atom

        a, b = atom("P", "x0"), atom("P", "x1")
        inst.add(a)
        inst.add(b)
        assert inst.revision == base + 2
        assert inst.delta_since(base) == [a, b]
        assert inst.delta_since(inst.revision) == []
        mid = base + 1
        assert inst.delta_since(mid) == [b]
        # Discards bump the revision and drop atoms out of deltas.
        inst.discard(b)
        assert inst.revision == base + 3
        assert inst.delta_since(base) == [a]
