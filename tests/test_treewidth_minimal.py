"""Unit tests for treewidth analysis and minimal rewritings."""

from repro.core.treewidth import (
    gaifman_graph,
    guarded_chase_treewidth_report,
    treewidth_upper_bound,
)
from repro.corpus.generators import path_instance, tournament_instance
from repro.logic.instances import Instance
from repro.rewriting.minimal import (
    minimal_rewriting,
    rewritings_equivalent,
)
from repro.rules.parser import parse_instance, parse_query, parse_rules


class TestGaifman:
    def test_path_gaifman_is_path(self):
        graph = gaifman_graph(path_instance(4))
        assert graph.number_of_edges() == 4

    def test_wide_atom_forms_clique(self):
        graph = gaifman_graph(parse_instance("T(a,b,c)"))
        assert graph.number_of_edges() == 3

    def test_loop_atom_no_self_edge(self):
        graph = gaifman_graph(parse_instance("E(a,a)"))
        assert graph.number_of_edges() == 0


class TestTreewidth:
    def test_path_width_one(self):
        assert treewidth_upper_bound(path_instance(6)) == 1

    def test_clique_width_n_minus_one(self):
        assert treewidth_upper_bound(tournament_instance(5, seed=0)) == 4

    def test_empty_instance(self):
        assert treewidth_upper_bound(Instance()) == 0

    def test_guarded_chase_stays_narrow(self):
        """[5]: guarded (here even linear) chases have small treewidth."""
        rules = parse_rules("E(x,y) -> exists z. E(y,z)")
        report = guarded_chase_treewidth_report(
            rules, parse_instance("E(a,b)"), max_levels=4
        )
        assert report.guarded
        assert report.width_bound <= 2
        assert report.within_guarded_bound

    def test_unguarded_merge_rule_grows_width(self):
        """The bdd merge rule densifies the chase into cliques: width
        grows with the prefix — the bounded-treewidth route does not
        apply, only the bdd route does."""
        rules = parse_rules(
            """
            E(x,y) -> exists z. E(y,z)
            E(x,xp), E(y,yp) -> E(x,yp)
            """
        )
        report = guarded_chase_treewidth_report(
            rules, parse_instance("E(a,b)"), max_levels=4,
            max_atoms=20_000,
        )
        assert not report.guarded
        assert report.width_bound >= 3


class TestMinimalRewriting:
    def test_minimal_has_cored_disjuncts(self):
        rules = parse_rules("E(x,y) -> exists z. E(y,z)")
        minimal = minimal_rewriting(
            parse_query("E(x,y), E(y,z)"), rules, max_depth=8
        )
        # The two-step query collapses: its minimal rewriting is the
        # single-edge query (everything else is subsumed).
        assert len(minimal) == 1
        assert len(next(iter(minimal)).atoms) == 1

    def test_uniqueness_up_to_renaming(self):
        """[22]: two independent computations give the same minimal
        rewriting up to bijective renaming."""
        rules = parse_rules(
            """
            P(x,y) -> E(x,y)
            Q(x,y) -> P(x,y)
            E(x,y) -> exists z. E(y,z)
            """
        )
        query = parse_query("E(x,y), E(y,z)")
        first = minimal_rewriting(query, rules, max_depth=10)
        second = minimal_rewriting(query, rules, max_depth=12)
        assert rewritings_equivalent(first, second)

    def test_equivalence_detects_differences(self):
        from repro.queries.ucq import UCQ

        left = UCQ([parse_query("E(x,y)")])
        right = UCQ([parse_query("E(x,y), E(y,z)")])
        assert not rewritings_equivalent(left, right)

    def test_equivalence_up_to_renaming_positive(self):
        from repro.queries.ucq import UCQ

        left = UCQ([parse_query("E(x,y), E(y,z)")])
        right = UCQ([parse_query("E(u,v), E(v,w)")])
        assert rewritings_equivalent(left, right)

    def test_answers_must_align(self):
        from repro.queries.ucq import UCQ

        left = UCQ([parse_query("E(x,y)", answers=("x", "y"))])
        right = UCQ([parse_query("E(u,v)", answers=("v", "u"))])
        assert not rewritings_equivalent(left, right)
