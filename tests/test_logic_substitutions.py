"""Unit tests for substitutions, compatibility and specializations (§2.1)."""

import pytest

from repro.logic.atoms import edge
from repro.logic.substitutions import (
    Substitution,
    is_specialization,
    specializations,
    tuples_compatible,
)
from repro.logic.terms import Constant, Variable


V = Variable


class TestSubstitution:
    def test_identity_on_unmapped(self):
        sigma = Substitution({V("x"): V("y")})
        assert sigma.apply_term(V("z")) == V("z")

    def test_apply_atom_and_atoms(self):
        sigma = Substitution({V("x"): Constant("a")})
        assert sigma.apply_atom(edge("x", "y")) == edge(Constant("a"), "y")
        assert sigma.apply_atoms([edge("x", "x")]) == {
            edge(Constant("a"), Constant("a"))
        }

    def test_cannot_move_constants(self):
        with pytest.raises(ValueError):
            Substitution({Constant("a"): V("x")})

    def test_trivial_mappings_dropped(self):
        sigma = Substitution({V("x"): V("x")})
        assert len(sigma) == 0

    def test_compose_applies_left_first(self):
        first = Substitution({V("x"): V("y")})
        second = Substitution({V("y"): Constant("a")})
        composed = first.compose(second)
        assert composed.apply_term(V("x")) == Constant("a")
        assert composed.apply_term(V("y")) == Constant("a")

    def test_extend_conflicts_raise(self):
        sigma = Substitution({V("x"): V("y")})
        with pytest.raises(ValueError):
            sigma.extend(V("x"), V("z"))

    def test_restrict(self):
        sigma = Substitution({V("x"): V("a"), V("y"): V("b")})
        assert V("y") not in sigma.restrict([V("x")])

    def test_injectivity_check(self):
        assert Substitution({V("x"): V("a"), V("y"): V("b")}).is_injective()
        assert not Substitution(
            {V("x"): V("a"), V("y"): V("a")}
        ).is_injective()

    def test_from_tuples_requires_compatibility(self):
        with pytest.raises(ValueError):
            Substitution.from_tuples(
                (V("x"), V("x")), (V("a"), V("b"))
            )
        sigma = Substitution.from_tuples((V("x"), V("x")), (V("a"), V("a")))
        assert sigma.apply_term(V("x")) == V("a")

    def test_callable_dispatch(self):
        sigma = Substitution({V("x"): V("y")})
        assert sigma(V("x")) == V("y")
        assert sigma(edge("x", "x")) == edge("y", "y")
        assert sigma([edge("x", "x")]) == {edge("y", "y")}


class TestCompatibility:
    def test_same_pattern_compatible(self):
        assert tuples_compatible((V("x"), V("x")), (V("a"), V("a")))

    def test_pattern_violation(self):
        assert not tuples_compatible((V("x"), V("x")), (V("a"), V("b")))

    def test_length_mismatch(self):
        assert not tuples_compatible((V("x"),), (V("a"), V("b")))

    def test_finer_target_allowed(self):
        # Distinct sources may map to equal targets.
        assert tuples_compatible((V("x"), V("y")), (V("a"), V("a")))


class TestSpecialization:
    def test_identity_is_specialization(self):
        xs = (V("x"), V("y"))
        assert is_specialization(xs, xs)

    def test_merge_onto_member(self):
        assert is_specialization((V("x"), V("y")), (V("x"), V("x")))

    def test_fresh_variable_is_not_specialization(self):
        assert not is_specialization((V("x"), V("y")), (V("x"), V("z")))

    def test_merge_onto_nonkept_variable_rejected(self):
        # y_1 = x_2 requires position 2 to keep x_2.
        assert not is_specialization(
            (V("x"), V("y")), (V("y"), V("x"))
        )

    def test_enumeration_contains_identity_first(self):
        xs = (V("x"), V("y"))
        results = list(specializations(xs))
        assert results[0] == xs

    def test_enumeration_all_are_specializations(self):
        xs = (V("x"), V("y"), V("z"))
        for ys in specializations(xs):
            assert is_specialization(xs, ys)

    def test_enumeration_count_three_distinct(self):
        # Retraction maps on 3 elements: the number of idempotent maps
        # whose image elements are fixed: 1 + 3 merges + 3 double-merges
        # + ... enumerate and compare against a brute-force filter.
        xs = (V("x"), V("y"), V("z"))
        enumerated = set(specializations(xs))
        assert len(enumerated) == len(list(specializations(xs)))
        assert (V("x"), V("x"), V("x")) in enumerated
        assert (V("x"), V("x"), V("z")) in enumerated

    def test_repeated_variables_in_input(self):
        xs = (V("x"), V("x"))
        results = set(specializations(xs))
        assert results == {(V("x"), V("x"))}
