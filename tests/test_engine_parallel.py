"""The engine subsystem: registry, sharding, parallel equivalence.

The parallel engine's contract is the strongest the library makes: for
every chase variant, every corpus workload, and *every* worker/shard
count, ``engine="parallel"`` must produce a :class:`ChaseResult` that is
bit-identical to the sequential delta engine — same atoms, levels,
termination flag, timestamps, null names and provenance records.  The
suite pins that contract, the registry's error behavior, the sharded
index, the batched firing path, the Datalog closure engines, and the
index-seeded satisfaction fast path of the restricted chase.
"""

from __future__ import annotations

import pytest

from repro.chase import (
    oblivious_chase,
    restricted_chase,
    semi_oblivious_chase,
)
from repro.chase.trigger import triggers_of
from repro.corpus.families import (
    branching_tree,
    datalog_grid,
    inclusion_chain,
    merge_ladder,
)
from repro.corpus.generators import (
    path_instance,
    random_digraph_instance,
    random_nonrecursive_ruleset,
    tournament_instance,
)
from repro.engine import (
    EngineConfig,
    RoundScheduler,
    ShardedIndex,
    available_engines,
    register_engine,
    resolve_engine,
)
from repro.errors import ChaseError
from repro.logic.atoms import atom
from repro.rewriting.datalog import semi_naive_closure
from repro.rules.parser import parse_instance, parse_rules


def assert_bit_identical(a, b):
    """Full ChaseResult equality: atoms, levels, provenance, timestamps."""
    assert a.instance == b.instance
    assert a.levels_completed == b.levels_completed
    assert a.terminated == b.terminated
    assert a.records() == b.records()
    for term in a.instance.active_domain():
        assert a.timestamp(term) == b.timestamp(term)
    for at in a.instance:
        assert a.atom_level(at) == b.atom_level(at)


def _workloads():
    succ = parse_rules(
        "E(x,y) -> exists z. E(y,z)\nE(x,y), E(y,z) -> F(x,z)",
        name="succ_overlay",
    )
    transitivity = parse_rules("E(x,y), E(y,z) -> E(x,z)", name="tc")
    cases = [
        ("path_succ", path_instance(8), succ, 4),
        ("path_tc", path_instance(8), transitivity, 6),
        ("tournament_succ", tournament_instance(7, seed=0), succ, 3),
        ("tournament_tc", tournament_instance(6, seed=3), transitivity, 4),
    ]
    for entry in (
        inclusion_chain(3),
        branching_tree(2),
        merge_ladder(2),
        datalog_grid(6),
    ):
        cases.append((entry.name, entry.instance, entry.rules, 4))
    for seed in (0, 1):
        cases.append(
            (
                f"random_{seed}",
                random_digraph_instance(5, 0.4, seed=seed),
                parse_rules(
                    "E(x,y) -> exists z. F(y,z)\nF(x,y), E(y,z) -> E(x,z)",
                    name="mixed",
                ),
                4,
            )
        )
        cases.append(
            (
                f"stratified_{seed}",
                parse_instance("L0P0(a,b), L0P1(b,c)"),
                random_nonrecursive_ruleset(seed=seed),
                5,
            )
        )
    return cases


WORKLOADS = _workloads()
IDS = [w[0] for w in WORKLOADS]

VARIANTS = [
    ("oblivious", lambda i, r, n, e: oblivious_chase(
        i.copy(), r, max_levels=n, max_atoms=20_000, engine=e)),
    ("semi_oblivious", lambda i, r, n, e: semi_oblivious_chase(
        i.copy(), r, max_levels=n, max_atoms=20_000, engine=e)),
    ("restricted", lambda i, r, n, e: restricted_chase(
        i.copy(), r, max_rounds=n, max_atoms=20_000, engine=e)),
]


# ----------------------------------------------------------------------
# Registry and configuration
# ----------------------------------------------------------------------


class TestRegistry:
    def test_available_engines(self):
        assert available_engines() == (
            "delta", "naive", "parallel", "persistent",
        )

    def test_unknown_engine_is_chase_error_listing_names(self):
        with pytest.raises(ChaseError) as excinfo:
            resolve_engine("semi-naive")
        message = str(excinfo.value)
        assert "semi-naive" in message
        for name in available_engines():
            assert name in message

    def test_every_entry_point_rejects_unknown_names(self):
        inst = path_instance(3)
        rules = parse_rules("E(x,y), E(y,z) -> E(x,z)")
        for runner in (
            lambda: oblivious_chase(inst, rules, engine="bogus"),
            lambda: semi_oblivious_chase(inst, rules, engine="bogus"),
            lambda: restricted_chase(inst, rules, engine="bogus"),
            lambda: semi_naive_closure(inst, rules, engine="bogus"),
        ):
            with pytest.raises(ChaseError, match="valid engines"):
                runner()

    def test_explicit_config_passes_through(self):
        config = EngineConfig("parallel", workers=2, shards=8)
        assert resolve_engine(config) is config
        assert config.shard_count == 8
        assert EngineConfig("parallel", workers=3).shard_count == 3

    def test_invalid_config_rejected(self):
        with pytest.raises(ChaseError):
            EngineConfig("parallel", workers=0)
        with pytest.raises(ChaseError):
            EngineConfig("parallel", shards=-1)

    def test_register_engine_roundtrip(self):
        preset = EngineConfig("parallel", workers=2, use_processes=True)
        with pytest.raises(ChaseError):
            register_engine(EngineConfig("delta"))  # name taken
        register_engine(
            EngineConfig("parallel", workers=2), replace_existing=True
        )
        try:
            assert resolve_engine("parallel").workers == 2
        finally:
            register_engine(
                EngineConfig("parallel", workers=4), replace_existing=True
            )
        assert preset.use_processes

    def test_custom_named_preset_dispatches_by_mode(self):
        # A preset under a new name must actually run its mode's engine.
        rules = parse_rules("E(x,y), E(y,z) -> F(x,z)")
        register_engine(EngineConfig("turbo", mode="parallel", workers=2))
        try:
            reference = oblivious_chase(path_instance(6), rules, max_levels=3)
            run = oblivious_chase(
                path_instance(6), rules, max_levels=3, engine="turbo"
            )
            assert_bit_identical(run, reference)
            assert resolve_engine("turbo").is_parallel
        finally:
            import repro.engine.config as config_module

            del config_module._REGISTRY["turbo"]

    def test_unknown_mode_rejected_at_construction(self):
        with pytest.raises(ChaseError, match="valid modes"):
            EngineConfig("bogus-mode")
        with pytest.raises(ChaseError, match="valid modes"):
            EngineConfig("preset", mode="bogus")


# ----------------------------------------------------------------------
# Sharded index
# ----------------------------------------------------------------------


class TestShardedIndex:
    def test_partition_is_exact(self):
        index = ShardedIndex(3)
        atoms = [atom("E", f"x{i}", f"x{i+1}") for i in range(20)]
        views = index.ingest(atoms)
        assert len(views) == 3
        routed = [a for view in views for a in view]
        assert sorted(routed) == sorted(atoms)
        assert sum(index.sizes()) == len(index) == len(atoms)
        # Each atom lands in exactly the shard its hash names.
        for i, view in enumerate(views):
            for a in view:
                assert index.shard_of(a) == i
                assert a in index.shard(i)

    def test_reingested_atoms_do_not_reappear(self):
        index = ShardedIndex(2)
        a = atom("P", "x0")
        first = index.ingest([a])
        assert sum(len(v) for v in first) == 1
        second = index.ingest([a])
        assert sum(len(v) for v in second) == 0
        assert len(index) == 1

    def test_per_shard_delta_since_views(self):
        index = ShardedIndex(2)
        batch1 = [atom("E", f"x{i}", f"x{i+1}") for i in range(4)]
        index.ingest(batch1)
        marks = index.revision_marks()
        batch2 = [atom("F", f"x{i}", f"x{i+1}") for i in range(4)]
        index.ingest(batch2)
        deltas = index.deltas_since(marks)
        assert sorted(a for d in deltas for a in d) == sorted(batch2)
        with pytest.raises(ChaseError):
            index.deltas_since((0,))  # wrong arity

    def test_shard_count_validated(self):
        with pytest.raises(ChaseError):
            ShardedIndex(0)

    def test_weight_accounting_tracks_ingests(self):
        from repro.engine.shards import atom_weight

        index = ShardedIndex(3)
        atoms = [atom("E", f"x{i}", f"x{i+1}") for i in range(12)]
        atoms.append(atom("Wide", "a", "b", "c", "d", "e"))
        index.ingest(atoms)
        # Per-shard weights sum to the total estimate, mirror the count
        # distribution, and a re-ingested atom adds nothing.
        assert sum(index.weights()) == sum(atom_weight(a) for a in atoms)
        for count, weight in zip(index.sizes(), index.weights()):
            assert (count == 0) == (weight == 0)
        index.ingest([atoms[0]])
        assert sum(index.weights()) == sum(atom_weight(a) for a in atoms)
        # Arity-aware: the wide atom weighs more than a binary one.
        assert atom_weight(atoms[-1]) > atom_weight(atoms[0])

    def test_untracked_mode_routes_views_without_cumulative_copies(self):
        # The scheduler's configuration: views and counters only.
        index = ShardedIndex(2, track_shards=False)
        atoms = [atom("E", f"x{i}", f"x{i+1}") for i in range(6)]
        views = index.ingest(atoms)
        assert sorted(a for v in views for a in v) == sorted(atoms)
        assert sum(index.sizes()) == len(index) == len(atoms)
        for accessor in (
            lambda: index.shard(0),
            index.shards,
            index.revision_marks,
            lambda: index.deltas_since((0, 0)),
        ):
            with pytest.raises(ChaseError, match="track_shards"):
                accessor()


# ----------------------------------------------------------------------
# Cross-engine equivalence: parallel == delta == naive
# ----------------------------------------------------------------------


@pytest.mark.parametrize("name,instance,rules,levels", WORKLOADS, ids=IDS)
@pytest.mark.parametrize("variant,run", VARIANTS, ids=[v[0] for v in VARIANTS])
class TestParallelEquivalence:
    def test_parallel_matches_delta_and_naive(
        self, variant, run, name, instance, rules, levels
    ):
        delta = run(instance, rules, levels, "delta")
        naive = run(instance, rules, levels, "naive")
        parallel = run(instance, rules, levels, "parallel")
        assert_bit_identical(parallel, delta)
        assert_bit_identical(parallel, naive)


class TestSchedulerDeterminism:
    def test_worker_and_shard_counts_do_not_matter(self):
        rules = parse_rules(
            "E(x,y) -> exists z. E(y,z)\nE(x,y), E(y,z) -> F(x,z)"
        )
        make = lambda: tournament_instance(6, seed=1)
        reference = oblivious_chase(make(), rules, max_levels=3)
        for workers, shards in [(1, 1), (2, 2), (3, 5), (4, 1), (4, 16)]:
            config = EngineConfig("parallel", workers=workers, shards=shards)
            run = oblivious_chase(
                make(), rules, max_levels=3, engine=config
            )
            assert_bit_identical(run, reference)

    def test_repeated_runs_are_identical(self):
        rules = parse_rules("E(x,y), E(y,z) -> E(x,z)")
        config = EngineConfig("parallel", workers=4)
        reference = restricted_chase(
            path_instance(7), rules, max_rounds=6, engine=config
        )
        for _ in range(3):
            again = restricted_chase(
                path_instance(7), rules, max_rounds=6, engine=config
            )
            assert_bit_identical(again, reference)

    def test_pickles_rehash_across_hash_seeds(self):
        # Spawned workers run under a different PYTHONHASHSEED; a cached
        # _hash copied verbatim across that boundary would break equality
        # and set membership (Atom.__eq__ short-circuits on _hash).  The
        # __reduce__ hooks on Term/Predicate/Atom/Rule rebuild through
        # __init__, recomputing the hash with the local seed.
        import os
        import pathlib
        import subprocess
        import sys
        import tempfile

        writer = (
            "import pickle, sys\n"
            "from repro.logic.atoms import atom\n"
            "from repro.rules.parser import parse_rules\n"
            "rules = parse_rules('E(x,y), E(y,z) -> E(x,z)')\n"
            "payload = (atom('E', 'a', 'b'), tuple(rules))\n"
            "pickle.dump(payload, open(sys.argv[1], 'wb'))\n"
        )
        reader = (
            "import pickle, sys\n"
            "from repro.logic.atoms import atom\n"
            "from repro.rules.parser import parse_rules\n"
            "a, rules = pickle.load(open(sys.argv[1], 'rb'))\n"
            "assert a == atom('E', 'a', 'b'), 'atom equality broke'\n"
            "assert a in {atom('E', 'a', 'b')}, 'atom membership broke'\n"
            "assert hash(a) == hash(atom('E', 'a', 'b'))\n"
            "local = tuple(parse_rules('E(x,y), E(y,z) -> E(x,z)'))\n"
            "assert rules == local and hash(rules[0]) == hash(local[0])\n"
        )
        with tempfile.TemporaryDirectory() as tmp:
            blob = pathlib.Path(tmp) / "payload.pickle"
            for seed, script, arg in (("1", writer, blob), ("2", reader, blob)):
                env = dict(
                    os.environ,
                    PYTHONHASHSEED=seed,
                    PYTHONPATH="src" + os.pathsep + os.environ.get("PYTHONPATH", ""),
                )
                subprocess.run(
                    [sys.executable, "-c", script, str(arg)],
                    check=True,
                    env=env,
                    cwd=pathlib.Path(__file__).parent.parent,
                )

    def test_process_pool_smoke(self):
        # Opt-in process pool: same contract, tiny workload (fork cost).
        rules = parse_rules("E(x,y), E(y,z) -> F(x,z)")
        config = EngineConfig("parallel", workers=2, use_processes=True)
        sequential = oblivious_chase(path_instance(5), rules, max_levels=2)
        parallel = oblivious_chase(
            path_instance(5), rules, max_levels=2, engine=config
        )
        assert_bit_identical(parallel, sequential)

    def test_scheduler_context_manager_closes_pool(self):
        config = EngineConfig("parallel", workers=2)
        with RoundScheduler(config) as scheduler:
            inst = path_instance(4)
            rules = list(parse_rules("E(x,y), E(y,z) -> F(x,z)"))
            per_rule = scheduler.enumerate_images(
                inst, rules, list(inst)
            )
            assert len(per_rule) == 1
            images = [image for image, _ in per_rule[0]]
            assert images == sorted(images)
            assert sum(scheduler.shard_sizes()) == len(inst)
        assert scheduler._executor is None


# ----------------------------------------------------------------------
# Budget behavior through the batched firing path
# ----------------------------------------------------------------------


class TestBudgetsThroughBatchedFiring:
    def test_partial_results_match_on_atom_budget(self):
        rules = parse_rules("E(x,y) -> exists z. E(y,z)")
        for engine in ("delta", "parallel"):
            result = oblivious_chase(
                tournament_instance(6, seed=0),
                rules,
                max_levels=5,
                max_atoms=40,
                engine=engine,
            )
            assert not result.terminated
            assert len(result.instance) > 40  # stopped right after the hit
        delta = oblivious_chase(
            tournament_instance(6, seed=0), rules, max_levels=5,
            max_atoms=40,
        )
        parallel = oblivious_chase(
            tournament_instance(6, seed=0), rules, max_levels=5,
            max_atoms=40, engine="parallel",
        )
        assert_bit_identical(delta, parallel)

    def test_strict_budget_raises_for_parallel(self):
        from repro.errors import ChaseBudgetExceeded

        rules = parse_rules("E(x,y) -> exists z. E(y,z)")
        with pytest.raises(ChaseBudgetExceeded):
            oblivious_chase(
                tournament_instance(6, seed=0),
                rules,
                max_levels=5,
                max_atoms=40,
                strict=True,
                engine="parallel",
            )


# ----------------------------------------------------------------------
# Datalog closure engines
# ----------------------------------------------------------------------


class TestClosureEngines:
    def test_all_engines_agree_with_the_chase(self):
        rules = parse_rules(
            """
            E(x,y), E(y,z) -> E(x,z)
            E(x,y) -> F(y,x)
            F(x,y), F(y,z) -> G(x,z)
            """
        )
        inst = parse_instance("E(a,b), E(b,c), E(c,a)")
        chased = oblivious_chase(inst, rules, max_levels=10).instance
        for engine in ("parallel", "delta", "naive"):
            assert semi_naive_closure(inst, rules, engine=engine) == chased

    def test_worker_counts_agree_on_corpus(self):
        rules = parse_rules("E(x,y), E(y,z) -> E(x,z)")
        reference = semi_naive_closure(path_instance(12), rules, engine="delta")
        for workers in (1, 2, 4):
            config = EngineConfig("parallel", workers=workers)
            assert (
                semi_naive_closure(path_instance(12), rules, engine=config)
                == reference
            )

    def test_closure_budget_still_enforced(self):
        from repro.errors import ChaseBudgetExceeded

        rules = parse_rules("E(x,y), E(y,z) -> E(x,z)")
        with pytest.raises(ChaseBudgetExceeded):
            semi_naive_closure(path_instance(30), rules, max_atoms=50)


# ----------------------------------------------------------------------
# Index-seeded satisfaction fast path (restricted chase)
# ----------------------------------------------------------------------


class TestSatisfactionFastPath:
    def _all_triggers(self, instance, rules):
        return list(triggers_of(instance, rules))

    @pytest.mark.parametrize("name,instance,rules,levels", WORKLOADS, ids=IDS)
    def test_agrees_with_generic_matcher(self, name, instance, rules, levels):
        # Grow the instance one chase level so heads are partially
        # satisfied, then compare both satisfaction tests on every trigger.
        grown = oblivious_chase(instance.copy(), rules, max_levels=1).instance
        checked = 0
        for trigger in self._all_triggers(grown, rules):
            assert trigger.is_satisfied_using_index(grown) == \
                trigger.is_satisfied_in(grown)
            checked += 1
        assert checked > 0

    def test_datalog_head_membership(self):
        rules = parse_rules("E(x,y), E(y,z) -> E(x,z)")
        inst = parse_instance("E(a,b), E(b,c), E(c,d), E(a,c)")
        satisfied, unsatisfied = 0, 0
        for trigger in self._all_triggers(inst, rules):
            if trigger.is_satisfied_using_index(inst):
                satisfied += 1
            else:
                unsatisfied += 1
        # (a,b),(b,c) -> E(a,c) is satisfied; (b,c),(c,d) -> E(b,d) and
        # (a,c),(c,d) -> E(a,d) are not.
        assert satisfied == 1 and unsatisfied == 2

    def test_existential_single_atom_head_uses_index(self):
        rules = parse_rules("E(x,y) -> exists z. E(y,z)")
        inst = parse_instance("E(a,b), E(b,c)")
        triggers = {
            t.image(): t for t in self._all_triggers(inst, rules)
        }
        results = {
            image: t.is_satisfied_using_index(inst)
            for image, t in triggers.items()
        }
        # E(a,b) has the successor E(b,c); E(b,c) has none.
        assert sorted(results.values()) == [False, True]

    def test_repeated_existential_variable(self):
        # exists z. E(z,z): only a loop satisfies the head.
        rules = parse_rules("P(x) -> exists z. E(z,z)")
        (rule,) = list(rules)
        inst_no_loop = parse_instance("P(a), E(a,b)")
        inst_loop = parse_instance("P(a), E(b,b)")
        for inst, expected in ((inst_no_loop, False), (inst_loop, True)):
            for trigger in self._all_triggers(inst, [rule]):
                assert trigger.is_satisfied_using_index(inst) == expected
                assert trigger.is_satisfied_in(inst) == expected
