"""The interned-term wire codec and per-command transport accounting.

Two halves:

* codec round-trip tests — packed atom/task/reply buffers rebuild the
  exact objects (nulls, constants, repeated terms, empty deltas, literal
  escapes), symbols intern once, and segments replay strictly in order;
* :data:`TRANSPORT_STATS` accounting — exact per-command byte/atom/
  message counters for seed, sync, enumerate, fire, probe and stop on a
  small workload at ``workers=1``, monotonicity at ``workers=3``.
"""

from __future__ import annotations

import random

import pytest

from repro.chase.trigger import triggers_of
from repro.engine import wire
from repro.engine.shards import ShardedIndex, atom_weight
from repro.engine.wire import WireDecoder, WireEncoder
from repro.engine.workers import TRANSPORT_STATS, WorkerPool
from repro.errors import ChaseError
from repro.logic.atoms import Atom, atom, build_atom
from repro.logic.instances import Instance
from repro.logic.predicates import Predicate
from repro.logic.terms import (
    TERM_KINDS,
    Constant,
    Null,
    Variable,
    term_from_wire,
)
from repro.rules.parser import parse_rules


def _synced_decoder(encoder: WireEncoder) -> WireDecoder:
    """A worker-side decoder caught up to the encoder's current tables."""
    decoder = WireDecoder()
    decoder.apply_segment(encoder.segment(0, 0))
    return decoder


# ----------------------------------------------------------------------
# Intern hooks
# ----------------------------------------------------------------------


class TestInternHooks:
    def test_term_from_wire_inverts_rank_and_name(self):
        for term in (Constant("a"), Variable("x"), Null("_n0")):
            rebuilt = term_from_wire(type(term)._rank, term.name)
            assert rebuilt == term
            assert type(rebuilt) is type(term)
            assert hash(rebuilt) == hash(term)

    def test_term_kinds_indexed_by_rank(self):
        for rank, kind in enumerate(TERM_KINDS):
            assert kind._rank == rank

    def test_build_atom_matches_checked_constructor(self):
        predicate = Predicate("R", 2)
        args = (Constant("a"), Null("_n1"))
        fast = build_atom(predicate, args)
        checked = Atom(predicate, args)
        assert fast == checked
        assert hash(fast) == hash(checked)


# ----------------------------------------------------------------------
# Codec round trips
# ----------------------------------------------------------------------


class TestAtomCodec:
    def test_round_trip_with_nulls_constants_and_repeats(self):
        atoms = [
            atom("E", "A", "B"),
            Atom(Predicate("F", 2), (Constant("A"), Null("_n0"))),
            Atom(Predicate("F", 2), (Null("_n0"), Null("_n0"))),
            atom("unary", "A"),
            Atom(Predicate("top", 0), ()),
        ]
        encoder = WireEncoder()
        buf = encoder.encode_atoms(atoms)
        decoder = _synced_decoder(encoder)
        decoded = decoder.decode_atoms(buf)
        assert decoded == atoms
        assert [hash(a) for a in decoded] == [hash(a) for a in atoms]
        # Repeated symbols interned once: A, B, _n0 and the variable-free
        # predicate set E/2, F/2, unary/1, top/0.
        assert len(encoder.terms) == 3
        assert len(encoder.predicates) == 4

    def test_empty_delta_is_empty_buffer(self):
        encoder = WireEncoder()
        assert encoder.encode_atoms([]) == b""
        assert _synced_decoder(encoder).decode_atoms(b"") == []

    def test_buffer_bytes_equal_atom_weights(self):
        # The adaptive router's cost model *is* the wire encoding: an
        # already-interned atom costs atom_weight ids to ship — one
        # varint byte each while the tables stay below 128 entries, as
        # here, so the byte length matches the weight exactly.
        atoms = [atom("E", "A", "B"), atom("wide", "A", "B", "C", "D")]
        encoder = WireEncoder()
        encoder.encode_atoms(atoms)  # intern the symbols once
        for a in atoms:
            assert len(encoder.encode_atoms([a])) == atom_weight(a)

    def test_varint_packing_round_trips(self):
        # The id stream is LEB128: dense table ids cost one byte, and
        # multi-byte boundaries (128, 16384) round-trip exactly.
        values = [0, 1, 127, 128, 129, 255, 16383, 16384, 2**31, 2**40]
        packed = wire.pack_ids(values)
        assert wire.unpack_ids(packed) == values
        assert wire.pack_ids([]) == b""
        assert len(wire.pack_ids([127])) == 1
        assert len(wire.pack_ids([128])) == 2
        with pytest.raises(ChaseError, match="truncated varint"):
            wire.unpack_ids(b"\x80")  # dangling continuation byte

    def test_symbols_cross_the_wire_once(self):
        encoder = WireEncoder()
        decoder = WireDecoder()
        first = [atom("E", "A", "B")]
        buf1 = encoder.encode_atoms(first)
        decoder.apply_segment(encoder.segment(0, 0))
        marks = encoder.marks()
        # Same symbols again: nothing new to ship.
        buf2 = encoder.encode_atoms([atom("E", "B", "A")])
        assert encoder.segment(*marks) is None
        # New symbol: the next segment carries only the new entries.
        buf3 = encoder.encode_atoms([atom("E", "A", "C")])
        segment = encoder.segment(*marks)
        term_start, term_specs, pred_start, pred_specs = segment
        assert term_specs == ((Constant._rank, "C"),)
        assert pred_specs == ()
        decoder.apply_segment(segment)
        assert decoder.decode_atoms(buf1) == first
        assert decoder.decode_atoms(buf2) == [atom("E", "B", "A")]
        assert decoder.decode_atoms(buf3) == [atom("E", "A", "C")]

    def test_out_of_sequence_segment_rejected(self):
        encoder = WireEncoder()
        encoder.encode_atoms([atom("E", "A", "B")])
        marks = encoder.marks()
        encoder.encode_atoms([atom("E", "A", "C")])
        late = encoder.segment(*marks)
        decoder = WireDecoder()  # never saw the first segment
        with pytest.raises(ChaseError, match="out of sequence"):
            decoder.apply_segment(late)

    def test_property_random_atom_streams_round_trip(self):
        rng = random.Random(20260808)
        kinds = (
            lambda name: Constant(name.upper()),
            lambda name: Variable(name),
            lambda name: Null(f"_n{name}"),
        )
        encoder = WireEncoder()
        decoder = WireDecoder()
        for _ in range(50):
            atoms = []
            for _ in range(rng.randrange(0, 8)):
                arity = rng.randrange(0, 4)
                predicate = Predicate(f"p{rng.randrange(5)}", arity)
                args = tuple(
                    rng.choice(kinds)(f"t{rng.randrange(6)}")
                    for _ in range(arity)
                )
                atoms.append(Atom(predicate, args))
            marks = encoder.marks()
            buf = encoder.encode_atoms(atoms)
            decoder.apply_segment(encoder.segment(*marks))
            assert decoder.decode_atoms(buf) == atoms


class TestTaskCodec:
    def _trigger(self, rule_text, facts):
        rules = tuple(parse_rules(rule_text))
        instance = Instance(facts)
        (trigger,) = list(triggers_of(instance, list(rules)))
        return rules, trigger

    def test_fire_tasks_round_trip_mapping_and_nulls(self):
        rules, trigger = self._trigger(
            "E(x,y) -> exists z. F(y,z)", [atom("E", "A", "B")]
        )
        existential_map = {
            v: Null(f"_n{i}")
            for i, v in enumerate(rules[0].existential_order())
        }
        tasks = [(0, 0, trigger.mapping, existential_map)]
        encoder = WireEncoder()
        buf = encoder.encode_fire_tasks(rules, tasks)
        decoded = _synced_decoder(encoder).decode_fire_tasks(buf, rules)
        assert decoded == tasks

    def test_probe_tasks_round_trip(self):
        # Two symmetric triggers; take both mappings via enumeration.
        rules = tuple(parse_rules("E(x,y), E(y,x) -> F(x,y)"))
        instance = Instance([atom("E", "A", "B"), atom("E", "B", "A")])
        tasks = [
            (i, 0, t.mapping)
            for i, t in enumerate(triggers_of(instance, list(rules)))
        ]
        assert len(tasks) == 2
        encoder = WireEncoder()
        buf = encoder.encode_probe_tasks(rules, tasks)
        decoded = _synced_decoder(encoder).decode_probe_tasks(buf, rules)
        assert decoded == tasks

    def test_identity_mappings_survive(self):
        # A mapping sending a body variable to itself packs as the
        # variable's own id and reconstructs to an *absent* binding —
        # exactly how Substitution normalizes identity pairs.
        rules = tuple(parse_rules("E(x,y) -> F(x,y)"))
        from repro.logic.substitutions import Substitution

        x, y = rules[0].body_variable_order()
        mapping = Substitution({x: x, y: Constant("B")})
        tasks = [(0, 0, mapping, {})]
        encoder = WireEncoder()
        buf = encoder.encode_fire_tasks(rules, tasks)
        decoded = _synced_decoder(encoder).decode_fire_tasks(buf, rules)
        assert decoded == tasks
        assert x not in decoded[0][2]


class TestReplyCodec:
    def test_fire_reply_round_trip(self):
        encoder = WireEncoder()
        encoder.encode_atoms([atom("F", "A", "B"), atom("F", "B", "C")])
        decoder = _synced_decoder(encoder)
        pairs = [
            (0, {atom("F", "A", "B")}),
            (3, {atom("F", "B", "C"), atom("F", "A", "B")}),
            (5, set()),
        ]
        reply = wire.encode_fire_reply(decoder, pairs)
        assert wire.decode_fire_reply(encoder, reply) == pairs

    def test_probe_reply_round_trip(self):
        encoder = WireEncoder()
        encoder.encode_atoms([atom("F", "A", "B"), atom("G", "A")])
        decoder = _synced_decoder(encoder)
        results = [
            (2, (atom("F", "A", "B"),), (atom("G", "A"),)),
            (4, (), (atom("F", "A", "B"), atom("G", "A"))),
        ]
        reply = wire.encode_probe_reply(decoder, results)
        assert wire.decode_probe_reply(encoder, reply) == results

    def test_derive_reply_round_trip(self):
        encoder = WireEncoder()
        atoms = {atom("F", "A", "B"), atom("F", "B", "C")}
        encoder.encode_atoms(sorted(atoms))
        decoder = _synced_decoder(encoder)
        reply = wire.encode_derive_reply(decoder, atoms)
        assert wire.decode_derive_reply(encoder, reply) == atoms

    def test_enumerate_reply_rebuilds_homs_from_images(self):
        from repro.engine.core import rule_delta_images

        rules = tuple(parse_rules("E(x,y), E(y,z) -> E(x,z)"))
        instance = Instance(
            [atom("E", "A", "B"), atom("E", "B", "C"), atom("E", "C", "A")]
        )
        per_rule = [rule_delta_images(rules[0], instance, instance)]
        assert per_rule[0]  # non-trivial
        encoder = WireEncoder()
        encoder.encode_atoms(instance.sorted_atoms())
        decoder = _synced_decoder(encoder)
        reply = wire.encode_enumerate_reply(decoder, rules, per_rule)
        decoded = wire.decode_enumerate_reply(encoder, rules, reply)
        assert decoded == per_rule

    def test_literal_escape_for_unknown_symbols(self):
        # A reply can mention a symbol the parent never shipped: it rides
        # as a message-local literal instead of a table ref.
        encoder = WireEncoder()
        decoder = _synced_decoder(encoder)  # both tables empty
        stranger = Atom(Predicate("S", 2), (Constant("Q"), Null("_n9")))
        reply = wire.encode_fire_reply(decoder, [(0, {stranger})])
        literal_terms, literal_predicates, _ = reply
        assert literal_terms and literal_predicates
        assert wire.decode_fire_reply(encoder, reply) == [(0, {stranger})]


# ----------------------------------------------------------------------
# Packed per-shard deltas (weights and sync share one encoding)
# ----------------------------------------------------------------------


class TestPackedShardDeltas:
    def test_packed_deltas_match_plain_deltas(self):
        index = ShardedIndex(3, track_shards=True)
        index.ingest([atom("E", f"A{i}", f"A{i + 1}") for i in range(6)])
        marks = index.revision_marks()
        fresh = [atom("F", f"A{i}", f"A{i + 1}") for i in range(4)]
        index.ingest(fresh)
        encoder = WireEncoder()
        packed = index.packed_deltas_since(marks, encoder)
        decoder = _synced_decoder(encoder)
        plain = index.deltas_since(marks)
        assert [decoder.decode_atoms(buf) for buf in packed] == plain
        # Once the symbols are interned (and while ids fit one varint
        # byte, as in this small table), a shard's packed size is exactly
        # its atom_weight sum — the quantity the adaptive router balances.
        repacked = index.packed_deltas_since(marks, encoder)
        for buf, delta in zip(repacked, plain):
            assert len(buf) == sum(atom_weight(a) for a in delta)


# ----------------------------------------------------------------------
# Per-command transport accounting
# ----------------------------------------------------------------------


RULES = tuple(parse_rules("E(x,y) -> F(x,y)"))


def _mapping(facts):
    (trigger,) = list(triggers_of(Instance(facts), list(RULES)))
    return trigger.mapping


def _run_sequence(workers: int) -> dict:
    """One seed + two enumerate rounds + fire + probe + stop; all pivots
    and tasks go to worker 0, so extra workers only add sync/seed
    traffic.  Returns the TRANSPORT_STATS snapshot."""
    facts = [atom("E", "A", "B")]
    instance = Instance(facts)
    mapping = _mapping(facts)
    TRANSPORT_STATS.reset()
    with WorkerPool(workers) as pool:
        pool.run_round("enumerate", RULES, instance, [facts])
        instance.add(atom("E", "B", "C"))
        instance.add(atom("E", "C", "D"))
        pool.run_round(
            "enumerate", RULES, instance, [instance.delta_since(0)[-2:]]
        )
        pool.fire(RULES, [[(0, 0, mapping, {})]])
        pool.probe_round(RULES, instance, [[(0, 0, mapping)]])
    return TRANSPORT_STATS.snapshot()


class TestTransportAccounting:
    def test_exact_counts_single_worker(self):
        snap = _run_sequence(1)
        commands = snap["commands"]
        seeded_atoms = 2  # E(A,B) + the top atom
        assert snap["seeds"] == 1
        assert snap["probes"] == 1
        assert commands["seed"]["messages"] == 1
        assert commands["seed"]["atoms_sent"] == seeded_atoms
        # Both enumerate rounds carried pivots; the second also carried
        # the 2-atom sync delta (counted under "sync" even though no
        # standalone sync message was sent at workers=1).
        assert commands["enumerate"]["messages"] == 2
        assert commands["enumerate"]["atoms_sent"] == 1 + 2
        assert commands["sync"]["atoms_sent"] == 2
        assert commands["sync"]["messages"] == 0
        assert commands["fire"]["messages"] == 1
        assert commands["fire"]["atoms_received"] == 1  # F(A,B)
        assert commands["probe"]["messages"] == 1
        assert commands["probe"]["atoms_received"] == 1  # missing F(A,B)
        assert commands["stop"]["messages"] == 1
        assert commands["stop"]["bytes_received"] > 0
        # Per-command counters tile the totals exactly.
        assert snap["bytes_sent"] == sum(
            c["bytes_sent"] for c in commands.values()
        )
        assert snap["bytes_received"] == sum(
            c["bytes_received"] for c in commands.values()
        )
        assert snap["messages"] == sum(
            c["messages"] for c in commands.values()
        )
        for entry in commands.values():
            if entry["messages"]:
                assert entry["bytes_sent"] > 0

    def test_monotonic_counts_three_workers(self):
        base = _run_sequence(1)
        snap = _run_sequence(3)
        commands = snap["commands"]
        # Pivotless workers 1..2 received standalone sync messages on the
        # second enumerate round and on the probe round's catch-up is not
        # needed (no new delta), so exactly one sync round × 2 workers.
        assert commands["sync"]["messages"] == 2
        assert commands["seed"]["messages"] == 3
        assert commands["seed"]["atoms_sent"] == 3 * 2
        assert commands["stop"]["messages"] == 3
        # Every counter grows (or stays equal) with the worker count.
        for name, entry in base["commands"].items():
            for key, value in entry.items():
                assert commands[name][key] >= value, (name, key)
        for total in ("bytes_sent", "bytes_received", "messages"):
            assert snap[total] >= base[total]

    def test_snapshot_is_json_serializable(self):
        import json

        snap = _run_sequence(1)
        json.dumps(snap)
