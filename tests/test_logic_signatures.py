"""Unit tests for signatures and the error hierarchy; public API smoke."""

import pytest

from repro.errors import (
    ArityError,
    ChaseBudgetExceeded,
    ParseError,
    ReproError,
    RewritingBudgetExceeded,
    SignatureError,
)
from repro.logic.predicates import Predicate
from repro.logic.signatures import Signature


class TestSignature:
    def _mixed(self):
        return Signature(
            [Predicate("E", 2), Predicate("P", 1), Predicate("T", 3)]
        )

    def test_membership_and_len(self):
        sig = self._mixed()
        assert Predicate("E", 2) in sig
        assert Predicate("E", 3) not in sig
        assert len(sig) == 3

    def test_iteration_sorted(self):
        names = [p.name for p in self._mixed()]
        assert names == sorted(names)

    def test_arity_splits(self):
        sig = self._mixed()
        assert len(sig.at_most_binary()) == 2
        assert len(sig.higher_arity()) == 1
        assert sig.max_arity() == 3

    def test_binary_check(self):
        assert not self._mixed().is_binary()
        assert self._mixed().at_most_binary().is_binary()

    def test_require_binary_raises(self):
        with pytest.raises(SignatureError):
            self._mixed().require_binary()
        self._mixed().at_most_binary().require_binary()

    def test_set_algebra(self):
        left = Signature([Predicate("E", 2)])
        right = Signature([Predicate("P", 1)])
        assert len(left | right) == 2
        assert len(left & right) == 0
        assert (left | right) - right == left

    def test_fresh_name_avoids_collisions(self):
        sig = Signature([Predicate("E", 2)])
        assert sig.fresh_name("E") != "E"
        assert sig.fresh_name("F") == "F"


class TestErrorHierarchy:
    def test_all_derive_from_repro_error(self):
        for exc_type in (
            ArityError,
            ParseError,
            SignatureError,
            ChaseBudgetExceeded,
            RewritingBudgetExceeded,
        ):
            assert issubclass(exc_type, ReproError)

    def test_parse_error_carries_position(self):
        error = ParseError("bad", text="E(x", position=2)
        assert error.position == 2
        assert "position 2" in str(error)

    def test_budget_errors_carry_partial_results(self):
        error = ChaseBudgetExceeded("overflow", partial_result="partial")
        assert error.partial_result == "partial"
        rewriting_error = RewritingBudgetExceeded("deep", depth=7)
        assert rewriting_error.depth == 7


class TestPublicAPI:
    def test_headline_symbols_importable(self):
        import repro

        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_version(self):
        import repro

        assert repro.__version__ == "1.0.0"

    def test_quickstart_docstring_snippet(self):
        """The snippet in repro.__doc__ must keep working."""
        from repro import check_property_p, parse_instance, parse_rules

        rules = parse_rules(
            """
            E(x,y) -> exists z. E(y,z)
            E(x,xp), E(y,yp) -> E(x,yp)
            """
        )
        report = check_property_p(
            rules, parse_instance("E(a,b)"), max_levels=4
        )
        assert report.loop_entailed
