"""Unit tests for union-find, multisets (§2.4) and reachability orders."""

import networkx as nx
import pytest

from repro.datastructures.multiset import (
    EMPTY,
    Multiset,
    lex_minimum,
    multiset_of,
)
from repro.datastructures.orders import (
    ReachabilityOrder,
    is_strictly_descending,
)
from repro.datastructures.unionfind import UnionFind
from repro.logic.atoms import edge
from repro.logic.terms import Variable


class TestUnionFind:
    def test_singletons_disconnected(self):
        uf = UnionFind([1, 2])
        assert not uf.connected(1, 2)

    def test_union_connects(self):
        uf = UnionFind()
        uf.union(1, 2)
        uf.union(2, 3)
        assert uf.connected(1, 3)

    def test_lazy_addition(self):
        uf = UnionFind()
        assert uf.find("new") == "new"
        assert "new" in uf

    def test_groups_partition(self):
        uf = UnionFind(range(5))
        uf.union(0, 1)
        uf.union(2, 3)
        groups = sorted(sorted(g) for g in uf.groups())
        assert groups == [[0, 1], [2, 3], [4]]

    def test_group_of(self):
        uf = UnionFind()
        uf.union("a", "b")
        assert uf.group_of("a") == {"a", "b"}


class TestMultisetAlgebra:
    def test_size_counts_multiplicity(self):
        assert len(multiset_of(1, 1, 2)) == 3

    def test_union(self):
        assert multiset_of(1).union(multiset_of(1, 2)) == multiset_of(1, 1, 2)

    def test_intersection(self):
        assert multiset_of(1, 1, 2).intersection(
            multiset_of(1, 3)
        ) == multiset_of(1)

    def test_difference_clamps_at_zero(self):
        assert multiset_of(1).difference(multiset_of(1, 1)) == EMPTY

    def test_maximum(self):
        assert multiset_of(3, 1, 3).maximum() == 3

    def test_empty_maximum_raises(self):
        with pytest.raises(ValueError):
            EMPTY.maximum()

    def test_mapping_constructor_rejects_negative(self):
        with pytest.raises(ValueError):
            Multiset({1: -1})

    def test_iteration_sorted_with_multiplicity(self):
        assert list(multiset_of(2, 1, 2)) == [1, 2, 2]


class TestLexOrder:
    def test_empty_below_everything(self):
        assert EMPTY < multiset_of(0)
        assert not EMPTY < EMPTY

    def test_maximum_dominates(self):
        assert multiset_of(1, 1, 1, 1) < multiset_of(2)

    def test_tie_breaks_recursively(self):
        assert multiset_of(2, 1) < multiset_of(2, 2)
        assert multiset_of(2) < multiset_of(2, 1)

    def test_total_on_samples(self):
        samples = [
            EMPTY,
            multiset_of(1),
            multiset_of(1, 1),
            multiset_of(2),
            multiset_of(2, 1),
        ]
        for left in samples:
            for right in samples:
                trichotomy = (left < right) + (right < left) + (left == right)
                assert trichotomy == 1

    def test_le_ge_consistency(self):
        a, b = multiset_of(1), multiset_of(2)
        assert a <= b and b >= a and not b <= a

    def test_lex_minimum(self):
        assert lex_minimum(
            [multiset_of(3), multiset_of(1, 1), multiset_of(2)]
        ) == multiset_of(1, 1)

    def test_lex_minimum_empty_raises(self):
        with pytest.raises(ValueError):
            lex_minimum([])


class TestReachabilityOrder:
    def _chain(self):
        return ReachabilityOrder.from_binary_atoms(
            [edge("x", "y"), edge("y", "z")]
        )

    def test_path_induces_order(self):
        order = self._chain()
        x, z = Variable("x"), Variable("z")
        assert order.less(x, z)
        assert not order.less(z, x)

    def test_le_is_reflexive(self):
        order = self._chain()
        assert order.less_equal(Variable("x"), Variable("x"))

    def test_maximal_elements(self):
        order = self._chain()
        assert order.maximal_elements() == {Variable("z")}

    def test_cyclic_graph_rejected(self):
        graph = nx.DiGraph([(1, 2), (2, 1)])
        with pytest.raises(ValueError):
            ReachabilityOrder(graph)

    def test_strictly_below_and_intersection(self):
        order = ReachabilityOrder.from_binary_atoms(
            [edge("x", "z"), edge("y", "z")]
        )
        z = Variable("z")
        below = order.below_all_of([Variable("x"), Variable("y")])
        assert below == set()
        assert order.strictly_below(z) == {Variable("x"), Variable("y")}

    def test_topological_deterministic(self):
        order = self._chain()
        assert order.topological() == order.topological()

    def test_descending_check(self):
        assert is_strictly_descending([3, 2, 1], lambda a, b: a < b)
        assert not is_strictly_descending([3, 3], lambda a, b: a < b)
