"""Unit tests for the text DSL parser."""

import pytest

from repro.errors import ParseError
from repro.logic.atoms import TOP_ATOM, edge
from repro.logic.predicates import Predicate
from repro.logic.terms import Constant, Variable
from repro.rules.parser import (
    parse_atom,
    parse_instance,
    parse_query,
    parse_rule,
    parse_rules,
)

V, C = Variable, Constant


class TestParseAtom:
    def test_binary(self):
        assert parse_atom("E(x, y)") == edge("x", "y")

    def test_nullary(self):
        assert parse_atom("top") == TOP_ATOM

    def test_instance_mode_makes_constants(self):
        a = parse_atom("E(a, b)", instance_mode=True)
        assert a.args == (C("a"), C("b"))

    def test_trailing_garbage_rejected(self):
        with pytest.raises(ParseError):
            parse_atom("E(x, y) extra")

    def test_unbalanced_parens_rejected(self):
        with pytest.raises(ParseError):
            parse_atom("E(x, y")


class TestParseRule:
    def test_simple_existential(self):
        rule = parse_rule("E(x,y) -> exists z. E(y,z)")
        assert rule.frontier() == {V("y")}
        assert rule.existential_variables() == {V("z")}

    def test_datalog(self):
        rule = parse_rule("E(x,y), E(y,z) -> E(x,z)")
        assert rule.is_datalog

    def test_multiple_existentials(self):
        rule = parse_rule("top -> exists x, y. E(x, y)")
        assert rule.existential_variables() == {V("x"), V("y")}

    def test_ampersand_separator(self):
        rule = parse_rule("E(x,y) & E(y,z) -> E(x,z)")
        assert len(rule.body) == 2

    def test_wrong_exists_declaration_rejected(self):
        with pytest.raises(ParseError):
            parse_rule("E(x,y) -> exists y. E(y,z)")

    def test_missing_arrow_rejected(self):
        with pytest.raises(ParseError):
            parse_rule("E(x,y) E(y,z)")

    def test_roundtrip_through_str(self):
        rule = parse_rule("E(x,y) -> exists z. E(y,z)")
        assert parse_rule(str(rule)) == rule


class TestParseRules:
    def test_multiline_with_comments(self):
        rules = parse_rules(
            """
            # successor
            E(x,y) -> exists z. E(y,z)

            E(x,y), E(y,z) -> E(x,z)
            """
        )
        assert len(rules) == 2

    def test_named(self):
        rules = parse_rules("E(x,y) -> E(y,x)", name="sym")
        assert rules.name == "sym"


class TestParseInstance:
    def test_atoms_are_constant_based(self):
        inst = parse_instance("E(a,b), E(b,c)")
        assert edge(C("a"), C("b")) in inst
        assert len(inst.with_predicate(Predicate("E", 2))) == 2

    def test_top_included(self):
        assert TOP_ATOM in parse_instance("E(a,b)")

    def test_empty_string_gives_top_only(self):
        inst = parse_instance("")
        assert len(inst) == 1


class TestParseQuery:
    def test_boolean(self):
        q = parse_query("E(x,x)")
        assert q.is_boolean

    def test_with_answers(self):
        q = parse_query("E(x,y), E(y,z)", answers=("x", "z"))
        assert q.answers == (V("x"), V("z"))

    def test_answer_must_occur(self):
        with pytest.raises(ValueError):
            parse_query("E(x,y)", answers=("w",))
